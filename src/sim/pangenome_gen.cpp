#include "sim/pangenome_gen.h"

#include <algorithm>

#include "util/common.h"
#include "util/rng.h"

namespace mg::sim {

namespace {

/** Variant-site kinds of the population model. */
enum class SiteKind
{
    Snp = 0,
    Insertion = 1,
    Deletion = 2,
    StructuralVariant = 3,
};

} // namespace

GeneratedPangenome
generatePangenome(const PangenomeParams& params)
{
    MG_CHECK(params.backboneLength >= params.meanAnchorLength * 2,
             "backbone too short for the anchor length");
    MG_CHECK(params.haplotypes >= 1, "need at least one haplotype");
    MG_CHECK(params.minIndelLength >= 1 &&
             params.minIndelLength <= params.maxIndelLength,
             "bad indel length range");
    MG_CHECK(params.minSvLength >= 1 &&
             params.minSvLength <= params.maxSvLength,
             "bad SV length range");

    util::Rng rng(params.seed);
    GeneratedPangenome out;
    graph::VariationGraph& graph = out.graph;

    const size_t num_haps = params.haplotypes;
    std::vector<std::vector<graph::Handle>> walks(num_haps);

    auto connect = [&](graph::NodeId from, graph::NodeId to) {
        graph.addEdge(graph::Handle(from, false), graph::Handle(to, false));
    };

    const std::vector<double> kind_weights = {
        params.snpWeight, params.insertionWeight, params.deletionWeight,
        params.svWeight,
    };

    // Repeat-motif library: planted copies make minimizers multi-map.
    std::vector<std::string> repeat_library;
    for (size_t i = 0; i < params.repeatLibrarySize; ++i) {
        repeat_library.push_back(
            rng.randomDna(params.meanAnchorLength));
    }
    auto repeat_copy = [&]() {
        std::string motif =
            repeat_library[rng.uniform(repeat_library.size())];
        for (char& c : motif) {
            if (rng.chance(params.repeatDivergence)) {
                c = rng.differentBase(c);
            }
        }
        return motif;
    };

    // Node ids whose outgoing edges connect to the next anchor; an empty
    // list means we are at the very start of the chain.
    std::vector<graph::NodeId> pending_ends;
    size_t emitted = 0;

    while (emitted < params.backboneLength) {
        // --- Anchor segment shared by every haplotype. ---
        std::string anchor_seq;
        if (!repeat_library.empty() && rng.chance(params.repeatFraction)) {
            anchor_seq = repeat_copy();
        } else {
            size_t anchor_len = std::max<size_t>(
                4, params.meanAnchorLength / 2 +
                       rng.uniform(params.meanAnchorLength));
            anchor_seq = rng.randomDna(anchor_len);
        }
        if (anchor_seq.size() > params.backboneLength - emitted) {
            anchor_seq.resize(params.backboneLength - emitted);
            if (anchor_seq.size() < 4) {
                anchor_seq = rng.randomDna(4);
            }
        }
        size_t anchor_len = anchor_seq.size();
        graph::NodeId anchor = graph.addNode(std::move(anchor_seq));
        for (graph::NodeId end : pending_ends) {
            connect(end, anchor);
        }
        pending_ends.clear();
        for (auto& walk : walks) {
            walk.push_back(graph::Handle(anchor, false));
        }
        emitted += anchor_len;
        if (emitted >= params.backboneLength) {
            break;
        }

        // --- One variant site: a bubble between this and the next anchor.
        SiteKind kind =
            static_cast<SiteKind>(rng.weightedIndex(kind_weights));
        // Allele frequency of the alternative branch at this site.
        double alt_frequency = 0.05 + 0.45 * rng.uniformReal();

        switch (kind) {
          case SiteKind::Snp: {
            char ref_base = rng.randomBase();
            graph::NodeId ref = graph.addNode(std::string(1, ref_base));
            graph::NodeId alt =
                graph.addNode(std::string(1, rng.differentBase(ref_base)));
            connect(anchor, ref);
            connect(anchor, alt);
            for (auto& walk : walks) {
                walk.push_back(graph::Handle(
                    rng.chance(alt_frequency) ? alt : ref, false));
            }
            pending_ends = { ref, alt };
            emitted += 1;
            break;
          }
          case SiteKind::Insertion: {
            // Carriers walk through an extra inserted node; others jump
            // straight from this anchor to the next one.
            size_t len = static_cast<size_t>(rng.uniformInt(
                static_cast<int64_t>(params.minIndelLength),
                static_cast<int64_t>(params.maxIndelLength)));
            graph::NodeId ins = graph.addNode(rng.randomDna(len));
            connect(anchor, ins);
            for (auto& walk : walks) {
                if (rng.chance(alt_frequency)) {
                    walk.push_back(graph::Handle(ins, false));
                }
            }
            pending_ends = { anchor, ins };
            break;
          }
          case SiteKind::Deletion: {
            // Carriers skip a reference segment the others walk through.
            size_t len = static_cast<size_t>(rng.uniformInt(
                static_cast<int64_t>(params.minIndelLength),
                static_cast<int64_t>(params.maxIndelLength)));
            graph::NodeId ref = graph.addNode(rng.randomDna(len));
            connect(anchor, ref);
            for (auto& walk : walks) {
                if (!rng.chance(alt_frequency)) {
                    walk.push_back(graph::Handle(ref, false));
                }
            }
            pending_ends = { anchor, ref };
            emitted += len;
            break;
          }
          case SiteKind::StructuralVariant: {
            // Two diverged alternative segments of different lengths.
            size_t ref_len = static_cast<size_t>(rng.uniformInt(
                static_cast<int64_t>(params.minSvLength),
                static_cast<int64_t>(params.maxSvLength)));
            size_t alt_len = static_cast<size_t>(rng.uniformInt(
                static_cast<int64_t>(params.minSvLength),
                static_cast<int64_t>(params.maxSvLength)));
            graph::NodeId ref = graph.addNode(rng.randomDna(ref_len));
            graph::NodeId alt = graph.addNode(rng.randomDna(alt_len));
            connect(anchor, ref);
            connect(anchor, alt);
            for (auto& walk : walks) {
                walk.push_back(graph::Handle(
                    rng.chance(alt_frequency) ? alt : ref, false));
            }
            pending_ends = { ref, alt };
            emitted += ref_len;
            break;
          }
        }
    }

    // Register the haplotype walks as graph paths and spell them out.
    out.sequences.reserve(num_haps);
    for (size_t h = 0; h < num_haps; ++h) {
        graph.addPath("hap" + std::to_string(h), walks[h]);
        out.sequences.push_back(graph.pathSequence(walks[h]));
    }
    out.walks = std::move(walks);

    // Index the haplotypes.
    gbwt::GbwtBuilder builder;
    for (const auto& walk : out.walks) {
        builder.addPath(walk);
    }
    out.gbwt = std::move(builder).build();
    return out;
}

} // namespace mg::sim
