/**
 * @file
 * The four input-set analogs of the paper's Table III, scaled to laptop
 * size (see DESIGN.md for the substitution rationale).  Relative shapes
 * follow the paper:
 *
 *   A-human: big reference, few reads, single-end  (pre/post dominated);
 *   B-yeast: small reference, many reads, single-end;
 *   C-HPRC:  big reference, moderate reads, paired-end;
 *   D-HPRC:  big reference, the most reads, paired-end (the largest run).
 *
 * Every harness takes a --scale multiplier on the read counts so the same
 * code runs as a smoke test or a long experiment.
 */
#pragma once

#include <string>
#include <vector>

#include "map/read.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::sim {

/** Declarative description of one input set. */
struct InputSetSpec
{
    std::string name;
    PangenomeParams pangenome;
    ReadSimParams reads;
};

/** A fully materialized input set. */
struct InputSet
{
    std::string name;
    GeneratedPangenome pangenome;
    map::ReadSet reads;
};

/** The catalog: A-human, B-yeast, C-HPRC, D-HPRC analogs, in order. */
std::vector<InputSetSpec> standardInputSets();

/** Find a spec by name; throws mg::util::Error if unknown. */
InputSetSpec inputSetSpec(const std::string& name);

/**
 * Materialize a spec with the read count (and only the read count) scaled
 * by `scale`; the reference stays fixed so scaling sweeps keep the same
 * graph.
 */
InputSet buildInputSet(const InputSetSpec& spec, double scale = 1.0);

} // namespace mg::sim
