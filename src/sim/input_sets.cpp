#include "sim/input_sets.h"

#include <algorithm>

#include "util/common.h"

namespace mg::sim {

std::vector<InputSetSpec>
standardInputSets()
{
    std::vector<InputSetSpec> specs;

    // A-human analog: largest reference relative to its read count; the
    // paper's A spends much of its time outside the critical functions.
    {
        InputSetSpec spec;
        spec.name = "A-human";
        spec.pangenome.seed = 1001;
        spec.pangenome.backboneLength = 400000;
        spec.pangenome.haplotypes = 16;
        spec.reads.seed = 2001;
        spec.reads.count = 1500;
        spec.reads.readLength = 150;
        spec.reads.errorRate = 0.002;
        spec.reads.paired = false;
        specs.push_back(spec);
    }

    // B-yeast analog: small reference, many single-end reads.
    {
        InputSetSpec spec;
        spec.name = "B-yeast";
        spec.pangenome.seed = 1002;
        spec.pangenome.backboneLength = 50000;
        spec.pangenome.haplotypes = 8;
        spec.reads.seed = 2002;
        spec.reads.count = 20000;
        spec.reads.readLength = 100;
        spec.reads.errorRate = 0.003;
        spec.reads.paired = false;
        specs.push_back(spec);
    }

    // C-HPRC analog: paired-end workflow, medium read count.
    {
        InputSetSpec spec;
        spec.name = "C-HPRC";
        spec.pangenome.seed = 1003;
        spec.pangenome.backboneLength = 250000;
        spec.pangenome.haplotypes = 12;
        spec.reads.seed = 2003;
        spec.reads.count = 7000;
        spec.reads.readLength = 150;
        spec.reads.errorRate = 0.002;
        spec.reads.paired = true;
        spec.reads.fragmentLength = 420;
        specs.push_back(spec);
    }

    // D-HPRC analog: the heavyweight - paired-end with the most reads.
    {
        InputSetSpec spec;
        spec.name = "D-HPRC";
        spec.pangenome.seed = 1004;
        spec.pangenome.backboneLength = 300000;
        spec.pangenome.haplotypes = 16;
        spec.reads.seed = 2004;
        spec.reads.count = 24000;
        spec.reads.readLength = 150;
        spec.reads.errorRate = 0.002;
        spec.reads.paired = true;
        spec.reads.fragmentLength = 450;
        specs.push_back(spec);
    }
    return specs;
}

InputSetSpec
inputSetSpec(const std::string& name)
{
    for (const InputSetSpec& spec : standardInputSets()) {
        if (spec.name == name) {
            return spec;
        }
    }
    throw util::Error("unknown input set: " + name +
                      " (expected A-human, B-yeast, C-HPRC, or D-HPRC)");
}

InputSet
buildInputSet(const InputSetSpec& spec, double scale)
{
    MG_CHECK(scale > 0.0, "scale must be positive");
    InputSet set;
    set.name = spec.name;
    set.pangenome = generatePangenome(spec.pangenome);
    ReadSimParams reads = spec.reads;
    reads.count = std::max<size_t>(
        2, static_cast<size_t>(static_cast<double>(reads.count) * scale));
    set.reads = simulateReads(set.pangenome, reads);
    return set;
}

} // namespace mg::sim
