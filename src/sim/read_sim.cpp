#include "sim/read_sim.h"

#include <algorithm>

#include "util/common.h"
#include "util/dna.h"
#include "util/rng.h"

namespace mg::sim {

namespace {

/** Apply substitution errors in place. */
void
applyErrors(std::string& seq, double error_rate, util::Rng& rng)
{
    for (char& c : seq) {
        if (rng.chance(error_rate)) {
            c = rng.differentBase(c);
        }
    }
}

} // namespace

map::ReadSet
simulateReads(const GeneratedPangenome& pangenome,
              const ReadSimParams& params)
{
    MG_CHECK(!pangenome.sequences.empty(),
             "pangenome has no haplotype sequences to sample from");
    MG_CHECK(params.readLength >= 20, "reads must be at least 20 bases");
    for (const std::string& hap : pangenome.sequences) {
        MG_CHECK(hap.size() >= params.readLength,
                 "haplotypes shorter than the read length");
    }

    util::Rng rng(params.seed);
    map::ReadSet set;
    set.pairedEnd = params.paired;

    if (!params.paired) {
        set.reads.reserve(params.count);
        for (size_t i = 0; i < params.count; ++i) {
            const std::string& hap =
                pangenome.sequences[rng.uniform(pangenome.sequences.size())];
            size_t start =
                rng.uniform(hap.size() - params.readLength + 1);
            std::string seq = hap.substr(start, params.readLength);
            if (rng.chance(0.5)) {
                seq = util::reverseComplement(seq);
            }
            applyErrors(seq, params.errorRate, rng);
            map::Read read;
            read.name = "read" + std::to_string(i);
            read.sequence = std::move(seq);
            set.reads.push_back(std::move(read));
        }
        return set;
    }

    // Paired-end: sample outer fragments; mate 1 reads the fragment start
    // forward, mate 2 reads the fragment end reverse-complemented.
    size_t num_pairs = params.count / 2;
    set.reads.reserve(num_pairs * 2);
    for (size_t p = 0; p < num_pairs; ++p) {
        const std::string& hap =
            pangenome.sequences[rng.uniform(pangenome.sequences.size())];
        // Fragment length jitters +-25% around the mean, floored to hold
        // both mates.
        size_t jitter = params.fragmentLength / 4;
        size_t fragment = params.fragmentLength - jitter +
                          rng.uniform(2 * jitter + 1);
        fragment = std::max(fragment, params.readLength);
        fragment = std::min(fragment, hap.size());
        size_t start = rng.uniform(hap.size() - fragment + 1);

        std::string left = hap.substr(start, params.readLength);
        std::string right = util::reverseComplement(hap.substr(
            start + fragment - params.readLength, params.readLength));
        applyErrors(left, params.errorRate, rng);
        applyErrors(right, params.errorRate, rng);

        map::Read mate1;
        mate1.name = "pair" + std::to_string(p) + "/1";
        mate1.sequence = std::move(left);
        mate1.mate = set.reads.size() + 1;
        map::Read mate2;
        mate2.name = "pair" + std::to_string(p) + "/2";
        mate2.sequence = std::move(right);
        mate2.mate = set.reads.size();
        set.reads.push_back(std::move(mate1));
        set.reads.push_back(std::move(mate2));
    }
    return set;
}

} // namespace mg::sim
