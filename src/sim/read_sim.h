/**
 * @file
 * Short-read simulation — the stand-in for the paper's real sequencing
 * data (NovaSeq/Illumina runs of NA19239 and NA24385's son; see DESIGN.md).
 * Reads are sampled from the generated haplotype sequences on a random
 * strand with a per-base substitution error rate, single-ended or as
 * paired-end fragments, matching the two Giraffe workflows the paper
 * characterizes.
 */
#pragma once

#include <cstdint>

#include "map/read.h"
#include "sim/pangenome_gen.h"

namespace mg::sim {

/** Read-simulation parameters. */
struct ReadSimParams
{
    uint64_t seed = 7;
    /** Number of reads (paired-end counts both mates). */
    size_t count = 1000;
    /** Read length in bases (short-read regime: 50-300). */
    size_t readLength = 150;
    /** Per-base substitution error probability. */
    double errorRate = 0.002;
    /** Paired-end workflow? */
    bool paired = false;
    /** Mean outer fragment length for paired-end data. */
    size_t fragmentLength = 400;
};

/**
 * Sample reads from a pangenome's haplotypes.  Deterministic in the seed.
 * For paired-end data, count is rounded down to an even number and mates
 * are adjacent with read.mate linking them.
 */
map::ReadSet simulateReads(const GeneratedPangenome& pangenome,
                           const ReadSimParams& params);

} // namespace mg::sim
