/**
 * @file
 * Synthetic pangenome generation — the stand-in for the paper's real
 * pangenomes (1000GPlons, yeast, HPRC; see DESIGN.md).  A population model
 * produces a bubble-chain variation graph: shared anchor segments
 * alternate with variant sites (SNPs, indels, structural variants), and
 * each haplotype walks the chain choosing one branch per site according to
 * a per-site allele frequency.  The walks become the GBWT's haplotype
 * paths, so seed density, extension branch factors, and CachedGBWT reuse
 * mirror the real workload's drivers.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gbwt/gbwt.h"
#include "graph/variation_graph.h"

namespace mg::sim {

/** Population-model parameters. */
struct PangenomeParams
{
    uint64_t seed = 42;
    /** Total backbone (reference) length in bases. */
    size_t backboneLength = 100000;
    /** Number of haplotypes in the population. */
    size_t haplotypes = 8;
    /** Mean anchor segment length between variant sites. */
    size_t meanAnchorLength = 48;
    /** Relative frequencies of variant-site kinds at each site. */
    double snpWeight = 0.75;
    double insertionWeight = 0.10;
    double deletionWeight = 0.10;
    double svWeight = 0.05;
    /** Small indel length range (bases). */
    size_t minIndelLength = 1;
    size_t maxIndelLength = 8;
    /** Structural-variant alternative length range (bases). */
    size_t minSvLength = 30;
    size_t maxSvLength = 120;
    /**
     * Fraction of anchor segments drawn from a small repeat-motif library
     * instead of fresh random sequence.  Real genomes are repeat-rich;
     * repeats make minimizers multi-map, scattering seeds across the
     * graph — the load that makes Giraffe's clustering and CachedGBWT
     * behaviour interesting.
     */
    double repeatFraction = 0.30;
    /** Number of distinct repeat motifs in the library. */
    size_t repeatLibrarySize = 48;
    /** Per-base mutation rate applied to each planted repeat copy. */
    double repeatDivergence = 0.01;
};

/** A generated pangenome: graph, haplotype index, and the raw walks. */
struct GeneratedPangenome
{
    graph::VariationGraph graph;
    gbwt::Gbwt gbwt;
    /** Haplotype walks (forward handles), one per haplotype. */
    std::vector<std::vector<graph::Handle>> walks;
    /** Spelled-out haplotype sequences (read-simulation substrate). */
    std::vector<std::string> sequences;
};

/** Generate a pangenome from the population model (deterministic in seed). */
GeneratedPangenome generatePangenome(const PangenomeParams& params);

} // namespace mg::sim
