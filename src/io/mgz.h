/**
 * @file
 * MGZ: this repository's compressed pangenome container, standing in for
 * the GBZ format the paper's pipeline consumes (substitution documented in
 * DESIGN.md).  One file holds the variation graph (2-bit packed node
 * sequences, delta-coded edges, haplotype paths) and the compressed GBWT.
 * Like GBZ, the graph is compressed at rest and node records are
 * decompressed on access at query time through the GBWT arena.
 *
 * Container layout (version 2, magic "MGZ2"):
 *
 *     "MGZ2"
 *     4 x section:            nodes, edges, paths, gbwt — in this order
 *       varint payload size
 *       payload bytes
 *       uint32 LE CRC32 of the payload
 *
 * Version 1 ("MGZ1") is the same four payloads concatenated with no sizes
 * or checksums; decodeMgz still reads it (write support is kept so the
 * compatibility path stays tested).  Graph+GBWT containers are written as
 * V2: the per-section CRC turns a bit flip anywhere in a multi-gigabyte
 * index into a structured checksum-mismatch error naming the damaged
 * section instead of an arbitrary downstream decode failure.
 *
 * Version 3 ("MGZ3", usually *.mgz3) is the zero-copy substrate: a
 * page-aligned container holding every big immutable arena — packed
 * sequence words, GBWT record/document arenas + offsets, the minimizer
 * key/position/bucket tables, the distance arrays — in its exact
 * little-endian in-memory layout, so loading is mmap + pointer fixup
 * instead of deserialization (see mgz3.cpp for the layout, DESIGN.md §3j
 * for the rules).  loadPangenome() dispatches on the magic: v1/v2 parse
 * into heap structures and build the indexes; v3 maps near-instantly and
 * N processes share one page-cache copy.
 */
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "gbwt/gbwt.h"
#include "graph/variation_graph.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "mem/arena.h"
#include "util/status.h"

namespace mg::io {

/** A loaded pangenome: graph plus haplotype index. */
struct Pangenome
{
    graph::VariationGraph graph;
    gbwt::Gbwt gbwt;
};

/** Container format revisions. */
enum class MgzVersion : uint8_t
{
    /** Unversioned seed format: bare concatenated payloads. */
    V1 = 1,
    /** Sized sections with per-section CRC32 (current graph+GBWT). */
    V2 = 2,
    /** Page-aligned zero-copy arenas incl. prebuilt indexes (mmap). */
    V3 = 3,
};

/** One section as seen by inspectMgz. */
struct MgzSectionInfo
{
    const char* name;
    /** Offset of the payload within the file. */
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crcStored = 0;
    uint32_t crcComputed = 0;
    bool crcOk = false;
};

/** Container-level structure report (see inspectMgz). */
struct MgzInfo
{
    MgzVersion version = MgzVersion::V2;
    uint64_t fileBytes = 0;
    /** Empty for V1 files (no section table to walk). */
    std::vector<MgzSectionInfo> sections;

    /** All present sections passed their checksum (vacuous for V1). */
    bool allChecksumsOk() const;
};

/** Serialize a pangenome into MGZ bytes. */
std::vector<uint8_t> encodeMgz(const graph::VariationGraph& graph,
                               const gbwt::Gbwt& gbwt,
                               MgzVersion version = MgzVersion::V2);

/**
 * Parse MGZ bytes; throws mg::util::StatusError on malformed input with
 * the failing section and offset (and `file`, when given, as provenance).
 */
Pangenome decodeMgz(const std::vector<uint8_t>& bytes,
                    std::string_view file = {});

/**
 * Verify container structure and section checksums without decoding the
 * payloads.  Structural damage (bad magic, truncated section table)
 * throws StatusError; checksum mismatches are *reported* per section so
 * a verifier can list every damaged section in one pass.
 */
MgzInfo inspectMgz(const std::vector<uint8_t>& bytes,
                   std::string_view file = {});

/** Convenience: write an .mgz file. */
void saveMgz(const std::string& path, const graph::VariationGraph& graph,
             const gbwt::Gbwt& gbwt);

/** Convenience: read an .mgz file. */
Pangenome loadMgz(const std::string& path);

// --- MGZ v3: zero-copy mapped containers -------------------------------

/** How a pangenome got into memory. */
enum class LoadMode : uint8_t
{
    /** Heap structures parsed from a v1/v2 container + indexes built. */
    Parsed,
    /** Arenas bound directly onto a mapped v3 container. */
    Mapped,
};

/** "parsed" | "mmap" — the strings run summaries report. */
const char* loadModeName(LoadMode mode);

/** Startup accounting surfaced by inspect_pangenome and run summaries. */
struct IndexLoadInfo
{
    LoadMode mode = LoadMode::Parsed;
    /** Wall seconds from open to query-ready (includes index builds when
     *  parsed). */
    double loadSeconds = 0.0;
    /** Container size on disk. */
    uint64_t fileBytes = 0;
    /** Bytes memory-mapped (0 when parsed). */
    uint64_t mappedBytes = 0;
    /** Mapped bytes resident in the page cache at sample time. */
    uint64_t residentBytes = 0;
    /** Heap bytes owned by the arenas/indexes (0 when fully mapped). */
    uint64_t heapBytes = 0;
    /** Logical arena sizes (name, bytes), identical across load modes. */
    std::vector<std::pair<std::string, uint64_t>> sections;
};

/**
 * A query-ready pangenome: graph + GBWT + both indexes, plus the mapping
 * keeping v3 arenas alive (null when parsed) and the load accounting.
 */
struct IndexedPangenome
{
    graph::VariationGraph graph;
    gbwt::Gbwt gbwt;
    index::MinimizerIndex minimizers;
    index::DistanceIndex distance;
    std::shared_ptr<mem::MappedFile> mapping;
    IndexLoadInfo info;

    /** Re-sample resident bytes (mapped mode; cheap mincore scan). */
    void refreshResidency();
};

/** Knobs for loadPangenome(). */
struct LoadOptions
{
    /** Minimizer parameters used when indexes must be *built* (v1/v2).
     *  v3 containers carry their build parameters and ignore these. */
    index::MinimizerParams minimizer;
    /** Worker threads for v1/v2 index construction (0 = hardware). */
    unsigned buildThreads = 0;
    /**
     * Re-verify every v3 section CRC against the mapped bytes before
     * binding (mg_verify / fuzz harness mode).  Off by default: the fast
     * path trusts the container and relies on the structural scans only.
     */
    bool verifySectionCrcs = false;
    /** madvise hint applied to the mapping after binding (v3 only). */
    mem::Advice advice = mem::Advice::Normal;
    /**
     * Arm a one-shot madvise(MADV_WILLNEED) of the minimizer lookup
     * tables, issued by the first query against the loaded index (v3
     * only; see index::MinimizerIndex::armPrefetch).  The bucket table is
     * probed randomly, so without the hint the first request pays one
     * major fault per probe.
     */
    bool prefetchFirstQuery = true;
};

/**
 * Serialize graph + GBWT + prebuilt indexes into MGZ v3 bytes.  The
 * output is a pure function of the inputs (padding zeroed, positions
 * written field-wise), so containers built with different thread counts
 * are byte-identical.
 */
std::vector<uint8_t> encodeMgz3(const graph::VariationGraph& graph,
                                const gbwt::Gbwt& gbwt,
                                const index::MinimizerIndex& minimizers,
                                const index::DistanceIndex& distance);

/** Convenience: write an .mgz3 file. */
void saveMgz3(const std::string& path, const graph::VariationGraph& graph,
              const gbwt::Gbwt& gbwt,
              const index::MinimizerIndex& minimizers,
              const index::DistanceIndex& distance);

/**
 * Structure/CRC report of v3 bytes without binding them (mg_verify).
 * Structural damage (bad magic/table, misaligned or overlapping
 * sections) throws StatusError; CRC mismatches are reported per section.
 */
MgzInfo inspectMgz3(const uint8_t* data, size_t size,
                    std::string_view file = {});

/**
 * Load any container by magic: v1/v2 parse + index build (honouring
 * options.minimizer / buildThreads), v3 mmap + pointer fixup.  Throws
 * StatusError (malformed container) or util::Error (I/O, inconsistent
 * v3 tables).
 */
IndexedPangenome loadPangenome(const std::string& path,
                               const LoadOptions& options = {});

/**
 * Validate a container file without binding it: structure (header,
 * section table, canonical placement) plus section CRCs — every section
 * when `deep`, else only the always-decoded metadata sections (v3) or
 * the v1/v2 stream structure.  Never throws: any damage comes back as a
 * non-Ok Status naming the file/section/offset.  This is the open half
 * of the open/validate split the hot-swap path uses to reject a corrupt
 * replacement image before touching the serving index.
 */
util::Status validatePangenomeFile(const std::string& path,
                                   bool deep = true);

} // namespace mg::io
