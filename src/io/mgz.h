/**
 * @file
 * MGZ: this repository's compressed pangenome container, standing in for
 * the GBZ format the paper's pipeline consumes (substitution documented in
 * DESIGN.md).  One file holds the variation graph (2-bit packed node
 * sequences, delta-coded edges, haplotype paths) and the compressed GBWT.
 * Like GBZ, the graph is compressed at rest and node records are
 * decompressed on access at query time through the GBWT arena.
 *
 * Container layout (version 2, magic "MGZ2"):
 *
 *     "MGZ2"
 *     4 x section:            nodes, edges, paths, gbwt — in this order
 *       varint payload size
 *       payload bytes
 *       uint32 LE CRC32 of the payload
 *
 * Version 1 ("MGZ1") is the same four payloads concatenated with no sizes
 * or checksums; decodeMgz still reads it (write support is kept so the
 * compatibility path stays tested).  New files are always written as V2:
 * the per-section CRC turns a bit flip anywhere in a multi-gigabyte index
 * into a structured checksum-mismatch error naming the damaged section
 * instead of an arbitrary downstream decode failure.
 */
#pragma once

#include <string>
#include <string_view>

#include "gbwt/gbwt.h"
#include "graph/variation_graph.h"

namespace mg::io {

/** A loaded pangenome: graph plus haplotype index. */
struct Pangenome
{
    graph::VariationGraph graph;
    gbwt::Gbwt gbwt;
};

/** Container format revisions. */
enum class MgzVersion : uint8_t
{
    /** Unversioned seed format: bare concatenated payloads. */
    V1 = 1,
    /** Sized sections with per-section CRC32 (current). */
    V2 = 2,
};

/** One section as seen by inspectMgz. */
struct MgzSectionInfo
{
    const char* name;
    /** Offset of the payload within the file. */
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crcStored = 0;
    uint32_t crcComputed = 0;
    bool crcOk = false;
};

/** Container-level structure report (see inspectMgz). */
struct MgzInfo
{
    MgzVersion version = MgzVersion::V2;
    uint64_t fileBytes = 0;
    /** Empty for V1 files (no section table to walk). */
    std::vector<MgzSectionInfo> sections;

    /** All present sections passed their checksum (vacuous for V1). */
    bool allChecksumsOk() const;
};

/** Serialize a pangenome into MGZ bytes. */
std::vector<uint8_t> encodeMgz(const graph::VariationGraph& graph,
                               const gbwt::Gbwt& gbwt,
                               MgzVersion version = MgzVersion::V2);

/**
 * Parse MGZ bytes; throws mg::util::StatusError on malformed input with
 * the failing section and offset (and `file`, when given, as provenance).
 */
Pangenome decodeMgz(const std::vector<uint8_t>& bytes,
                    std::string_view file = {});

/**
 * Verify container structure and section checksums without decoding the
 * payloads.  Structural damage (bad magic, truncated section table)
 * throws StatusError; checksum mismatches are *reported* per section so
 * a verifier can list every damaged section in one pass.
 */
MgzInfo inspectMgz(const std::vector<uint8_t>& bytes,
                   std::string_view file = {});

/** Convenience: write an .mgz file. */
void saveMgz(const std::string& path, const graph::VariationGraph& graph,
             const gbwt::Gbwt& gbwt);

/** Convenience: read an .mgz file. */
Pangenome loadMgz(const std::string& path);

} // namespace mg::io
