/**
 * @file
 * MGZ: this repository's compressed pangenome container, standing in for
 * the GBZ format the paper's pipeline consumes (substitution documented in
 * DESIGN.md).  One file holds the variation graph (2-bit packed node
 * sequences, delta-coded edges, haplotype paths) and the compressed GBWT.
 * Like GBZ, the graph is compressed at rest and node records are
 * decompressed on access at query time through the GBWT arena.
 */
#pragma once

#include <string>

#include "gbwt/gbwt.h"
#include "graph/variation_graph.h"

namespace mg::io {

/** A loaded pangenome: graph plus haplotype index. */
struct Pangenome
{
    graph::VariationGraph graph;
    gbwt::Gbwt gbwt;
};

/** Serialize a pangenome into MGZ bytes. */
std::vector<uint8_t> encodeMgz(const graph::VariationGraph& graph,
                               const gbwt::Gbwt& gbwt);

/** Parse MGZ bytes; throws mg::util::Error on malformed input. */
Pangenome decodeMgz(const std::vector<uint8_t>& bytes);

/** Convenience: write an .mgz file. */
void saveMgz(const std::string& path, const graph::VariationGraph& graph,
             const gbwt::Gbwt& gbwt);

/** Convenience: read an .mgz file. */
Pangenome loadMgz(const std::string& path);

} // namespace mg::io
