#include "io/checkpoint.h"

#include <sys/stat.h>

#include <cstring>

#include "fault/fault.h"
#include "io/file.h"
#include "util/common.h"
#include "util/crc32.h"
#include "util/cursor.h"
#include "util/timer.h"
#include "util/varint.h"

namespace mg::io {

namespace {

constexpr char kShardMagic[4] = { 'M', 'G', 'S', '1' };
constexpr char kManifestMagic[4] = { 'M', 'G', 'C', '1' };

/** magic + payload + trailing little-endian CRC32 of the payload. */
std::vector<uint8_t>
frame(const char magic[4], std::vector<uint8_t> payload)
{
    std::vector<uint8_t> out;
    out.reserve(4 + payload.size() + 4);
    out.insert(out.end(), magic, magic + 4);
    out.insert(out.end(), payload.begin(), payload.end());
    uint32_t crc = util::crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    }
    return out;
}

/** Non-throwing frame check: magic + CRC.  Returns the payload span via
 *  out-params; any violation produces a Status instead of an exception,
 *  because the fuzz harness feeds this arbitrary bytes. */
util::Status
unframe(const std::vector<uint8_t>& bytes, const char magic[4],
        const std::string& file, const char* section, const uint8_t*& payload,
        size_t& payload_size)
{
    util::Status status;
    status.file = file;
    status.section = section;
    if (bytes.size() < 8) {
        status.code = util::StatusCode::Truncated;
        status.message = "file shorter than magic + checksum";
        status.offset = bytes.size();
        return status;
    }
    if (std::memcmp(bytes.data(), magic, 4) != 0) {
        status.code = util::StatusCode::Corrupt;
        status.message = "bad magic";
        return status;
    }
    payload = bytes.data() + 4;
    payload_size = bytes.size() - 8;
    uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
        stored |= static_cast<uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
    }
    uint32_t actual = util::crc32(payload, payload_size);
    if (stored != actual) {
        status.code = util::StatusCode::ChecksumMismatch;
        status.message =
            util::cat("payload checksum mismatch: stored ", stored,
                      ", computed ", actual);
        status.offset = bytes.size() - 4;
        return status;
    }
    return status; // Ok
}

/** Run a ByteCursor decode, converting any StatusError to a Status. */
template <typename Fn>
util::Status
guardedDecode(Fn&& fn)
{
    try {
        fn();
    } catch (const util::StatusError& err) {
        return err.status();
    }
    return util::Status{};
}

void
putStats(util::ByteWriter& writer, const ShardStatsDelta& stats)
{
    writer.putVarint(stats.deadlineHits);
    writer.putVarint(stats.stepCapHits);
    writer.putVarint(stats.lookupCapHits);
    writer.putVarint(stats.watchdogCancels);
    writer.putVarint(stats.cacheLookups);
    writer.putVarint(stats.cacheHits);
    writer.putVarint(stats.cacheDecodes);
    writer.putVarint(stats.cacheRehashes);
    writer.putVarint(stats.cacheProbes);
}

void
getStats(util::ByteCursor& cursor, ShardStatsDelta& stats)
{
    stats.deadlineHits = cursor.getVarint();
    stats.stepCapHits = cursor.getVarint();
    stats.lookupCapHits = cursor.getVarint();
    stats.watchdogCancels = cursor.getVarint();
    stats.cacheLookups = cursor.getVarint();
    stats.cacheHits = cursor.getVarint();
    stats.cacheDecodes = cursor.getVarint();
    stats.cacheRehashes = cursor.getVarint();
    stats.cacheProbes = cursor.getVarint();
}

} // namespace

std::string
shardFileName(uint64_t begin, uint64_t end)
{
    return util::cat("shard-", begin, "-", end, ".mgs");
}

std::vector<uint8_t>
encodeShard(const Shard& shard)
{
    MG_CHECK(shard.begin < shard.end, "shard range must be non-empty");
    util::ByteWriter writer;
    writer.putVarint(shard.begin);
    writer.putVarint(shard.end);
    writer.putString(shard.gaf);
    putStats(writer, shard.stats);
    return frame(kShardMagic, writer.takeBytes());
}

util::Status
decodeShard(const std::vector<uint8_t>& bytes, const std::string& file,
            Shard& out)
{
    const uint8_t* payload = nullptr;
    size_t payload_size = 0;
    util::Status status =
        unframe(bytes, kShardMagic, file, "shard", payload, payload_size);
    if (!status.ok()) {
        return status;
    }
    return guardedDecode([&] {
        util::ByteCursor cursor(payload, payload_size, file);
        cursor.enterSection("shard");
        out.begin = cursor.getVarint();
        out.end = cursor.getVarint();
        cursor.check(out.begin < out.end, util::StatusCode::Corrupt,
                     "shard range [", out.begin, ", ", out.end,
                     ") is empty or inverted");
        out.gaf = cursor.getString();
        getStats(cursor, out.stats);
        cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                     "trailing bytes after shard payload");
    });
}

std::vector<uint8_t>
encodeManifest(const Manifest& manifest)
{
    util::ByteWriter writer;
    writer.putVarint(manifest.totalReads);
    writer.putVarint(manifest.shards.size());
    for (const ManifestEntry& entry : manifest.shards) {
        writer.putVarint(entry.begin);
        writer.putVarint(entry.end);
        writer.putVarint(entry.payloadCrc);
        writer.putString(entry.file);
    }
    return frame(kManifestMagic, writer.takeBytes());
}

util::Status
decodeManifest(const std::vector<uint8_t>& bytes, const std::string& file,
               Manifest& out)
{
    const uint8_t* payload = nullptr;
    size_t payload_size = 0;
    util::Status status = unframe(bytes, kManifestMagic, file, "manifest",
                                  payload, payload_size);
    if (!status.ok()) {
        return status;
    }
    return guardedDecode([&] {
        util::ByteCursor cursor(payload, payload_size, file);
        cursor.enterSection("manifest");
        out.totalReads = cursor.getVarint();
        uint64_t count = cursor.getVarint();
        // Each entry needs at least 4 bytes; a huge count in a tiny
        // payload is corruption, not a reason to attempt the allocation.
        cursor.check(count <= cursor.remaining(), util::StatusCode::Corrupt,
                     "shard count ", count, " exceeds remaining payload");
        out.shards.clear();
        out.shards.reserve(count);
        uint64_t prev_end = 0;
        for (uint64_t i = 0; i < count; ++i) {
            ManifestEntry entry;
            entry.begin = cursor.getVarint();
            entry.end = cursor.getVarint();
            uint64_t crc = cursor.getVarint();
            cursor.check(crc <= UINT32_MAX, util::StatusCode::Corrupt,
                         "shard CRC field exceeds 32 bits");
            entry.payloadCrc = static_cast<uint32_t>(crc);
            entry.file = cursor.getString();
            cursor.check(entry.begin < entry.end,
                         util::StatusCode::Corrupt, "shard ", i,
                         " range [", entry.begin, ", ", entry.end,
                         ") is empty or inverted");
            cursor.check(entry.end <= out.totalReads,
                         util::StatusCode::Corrupt, "shard ", i,
                         " ends at ", entry.end, " past total reads ",
                         out.totalReads);
            cursor.check(entry.begin >= prev_end,
                         util::StatusCode::Corrupt, "shard ", i,
                         " at ", entry.begin,
                         " overlaps or is out of order (previous end ",
                         prev_end, ")");
            cursor.check(!entry.file.empty(), util::StatusCode::Corrupt,
                         "shard ", i, " has an empty file name");
            prev_end = entry.end;
            out.shards.push_back(std::move(entry));
        }
        cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                     "trailing bytes after manifest payload");
    });
}

CheckpointWriter::CheckpointWriter(std::string dir, uint64_t total_reads)
    : dir_(std::move(dir))
{
    MG_CHECK(!dir_.empty(), "checkpoint directory must not be empty");
    manifest_.totalReads = total_reads;
    // Best-effort create; an existing directory is the resume case.
    ::mkdir(dir_.c_str(), 0755);
    struct stat st;
    MG_CHECK(::stat(dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
             "cannot create checkpoint directory ", dir_);
}

void
CheckpointWriter::adopt(Manifest manifest)
{
    MG_CHECK(manifest.totalReads == manifest_.totalReads,
             "adopted manifest is for ", manifest.totalReads,
             " reads, writer expects ", manifest_.totalReads);
    manifest_ = std::move(manifest);
}

void
CheckpointWriter::append(Shard shard)
{
    MG_CHECK(shard.end <= manifest_.totalReads,
             "shard ends past the run's total reads");
    util::WallTimer flush_timer;
    // Fault point: the driver crashing while preparing a flush (before
    // anything durable changes — the checkpoint stays at the old state).
    fault::inject("checkpoint.flush");

    ManifestEntry entry;
    entry.begin = shard.begin;
    entry.end = shard.end;
    entry.file = shardFileName(shard.begin, shard.end);

    std::vector<uint8_t> bytes = encodeShard(shard);
    // payload CRC == the frame's trailing CRC; recompute from the frame
    // so the manifest cross-check matches exactly what landed on disk.
    entry.payloadCrc =
        util::crc32(bytes.data() + 4, bytes.size() - 8);

    // Order is the crash-consistency invariant: shard durable first, then
    // the manifest that references it.  Killed between the two, the new
    // shard is an unreferenced orphan and the old manifest still
    // describes a fully verifiable checkpoint.
    writeFileBytesDurable(dir_ + "/" + entry.file, bytes);

    // Keep entries sorted by begin (ranges never overlap by construction:
    // the driver only flushes reads it owns exclusively).
    auto pos = manifest_.shards.begin();
    while (pos != manifest_.shards.end() && pos->begin < entry.begin) {
        ++pos;
    }
    manifest_.shards.insert(pos, std::move(entry));
    std::vector<uint8_t> manifest_bytes = encodeManifest(manifest_);
    writeFileBytesDurable(dir_ + "/" + kManifestFileName, manifest_bytes);

    ++flushStats_.flushes;
    flushStats_.bytes += bytes.size() + manifest_bytes.size();
    flushStats_.nanos += flush_timer.nanos();
}

util::Status
loadCheckpoint(const std::string& dir, CheckpointState& out)
{
    out = CheckpointState{};
    const std::string manifest_path = dir + "/" + kManifestFileName;
    if (!fileExists(manifest_path)) {
        return util::Status{}; // fresh run
    }
    std::vector<uint8_t> bytes;
    try {
        bytes = readFileBytes(manifest_path);
    } catch (const util::StatusError& err) {
        return err.status();
    }
    util::Status status = decodeManifest(bytes, manifest_path, out.manifest);
    if (!status.ok()) {
        return status; // the source of truth is damaged: fatal
    }
    std::vector<ManifestEntry> kept;
    kept.reserve(out.manifest.shards.size());
    for (const ManifestEntry& entry : out.manifest.shards) {
        const std::string shard_path = dir + "/" + entry.file;
        Shard shard;
        bool keep = false;
        try {
            std::vector<uint8_t> shard_bytes = readFileBytes(shard_path);
            // Cross-check against the manifest's CRC first: a shard file
            // that is internally consistent but not the one the manifest
            // promised (overwritten, swapped) is just as dropped.
            if (shard_bytes.size() >= 8 &&
                util::crc32(shard_bytes.data() + 4,
                            shard_bytes.size() - 8) == entry.payloadCrc) {
                util::Status shard_status =
                    decodeShard(shard_bytes, shard_path, shard);
                keep = shard_status.ok() && shard.begin == entry.begin &&
                       shard.end == entry.end;
            }
        } catch (const util::StatusError&) {
            keep = false; // unreadable shard: drop, re-map its reads
        }
        if (keep) {
            out.shards.push_back(std::move(shard));
            kept.push_back(entry);
        } else {
            ++out.droppedShards;
        }
    }
    // The returned manifest references only the shards that verified, so
    // a resume that re-maps a dropped range and flushes a replacement
    // shard never produces overlapping manifest entries.
    out.manifest.shards = std::move(kept);
    return util::Status{};
}

} // namespace mg::io
