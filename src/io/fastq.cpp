#include "io/fastq.h"

#include "io/file.h"
#include "util/common.h"
#include "util/dna.h"
#include "util/str.h"

namespace mg::io {

map::ReadSet
parseFastq(const std::string& text)
{
    map::ReadSet set;
    std::vector<std::string> lines = util::split(text, '\n');
    // Drop a trailing empty line from the final newline.
    while (!lines.empty() && util::trim(lines.back()).empty()) {
        lines.pop_back();
    }
    util::require(lines.size() % 4 == 0,
                  "FASTQ record count not a multiple of 4 lines");
    for (size_t i = 0; i < lines.size(); i += 4) {
        util::require(!lines[i].empty() && lines[i][0] == '@',
                      "FASTQ header must start with '@' at line ", i + 1);
        util::require(!lines[i + 2].empty() && lines[i + 2][0] == '+',
                      "FASTQ separator must start with '+' at line ", i + 3);
        map::Read read;
        read.name = std::string(util::trim(lines[i].substr(1)));
        read.sequence = std::string(util::trim(lines[i + 1]));
        util::require(util::isDna(read.sequence),
                      "FASTQ sequence with non-ACGT characters at line ",
                      i + 2);
        util::require(lines[i + 3].size() >= read.sequence.size(),
                      "FASTQ quality shorter than sequence at line ", i + 4);
        set.reads.push_back(std::move(read));
    }
    return set;
}

std::string
formatFastq(const map::ReadSet& reads)
{
    std::string out;
    for (const map::Read& read : reads.reads) {
        out += '@';
        out += read.name;
        out += '\n';
        out += read.sequence;
        out += "\n+\n";
        out += std::string(read.sequence.size(), 'I');
        out += '\n';
    }
    return out;
}

map::ReadSet
loadFastq(const std::string& path)
{
    return parseFastq(readFileText(path));
}

void
saveFastq(const std::string& path, const map::ReadSet& reads)
{
    writeFileText(path, formatFastq(reads));
}

} // namespace mg::io
