#include "io/fastq.h"

#include "fault/fault.h"
#include "io/file.h"
#include "util/common.h"
#include "util/dna.h"
#include "util/status.h"
#include "util/str.h"

namespace mg::io {

namespace {

/** Throw a Corrupt status pointing at a 1-based FASTQ line. */
[[noreturn]] void
fastqFail(std::string_view file, uint64_t line, std::string message)
{
    util::Status status;
    status.code = util::StatusCode::Corrupt;
    status.message = std::move(message);
    status.file = std::string(file);
    status.section = "fastq";
    status.offset = line;
    util::throwStatus(std::move(status));
}

} // namespace

map::ReadSet
parseFastq(const std::string& text, std::string_view file)
{
    // Fault point: malformed read file reaching the parser.
    fault::inject("io.fastq.parse");

    map::ReadSet set;
    std::vector<std::string> lines = util::split(text, '\n');
    // Drop a trailing empty line from the final newline.
    while (!lines.empty() && util::trim(lines.back()).empty()) {
        lines.pop_back();
    }
    if (lines.size() % 4 != 0) {
        fastqFail(file, lines.size(),
                  "FASTQ record count not a multiple of 4 lines");
    }
    for (size_t i = 0; i < lines.size(); i += 4) {
        if (lines[i].empty() || lines[i][0] != '@') {
            fastqFail(file, i + 1, "FASTQ header must start with '@'");
        }
        if (lines[i + 2].empty() || lines[i + 2][0] != '+') {
            fastqFail(file, i + 3, "FASTQ separator must start with '+'");
        }
        map::Read read;
        read.name = std::string(util::trim(lines[i].substr(1)));
        read.sequence = std::string(util::trim(lines[i + 1]));
        // Canonicalization policy (util/dna.h): ambiguity letters become
        // 'A' and are counted; non-letter garbage stays a hard error.
        util::SanitizeCounts counts = util::sanitizeDna(read.sequence);
        if (counts.invalid > 0) {
            fastqFail(file, i + 2,
                      "FASTQ sequence with non-IUPAC characters");
        }
        set.sanitizedBases += counts.ambiguous;
        if (lines[i + 3].size() < read.sequence.size()) {
            fastqFail(file, i + 4, "FASTQ quality shorter than sequence");
        }
        set.reads.push_back(std::move(read));
    }
    return set;
}

std::string
formatFastq(const map::ReadSet& reads)
{
    std::string out;
    for (const map::Read& read : reads.reads) {
        out += '@';
        out += read.name;
        out += '\n';
        out += read.sequence;
        out += "\n+\n";
        out += std::string(read.sequence.size(), 'I');
        out += '\n';
    }
    return out;
}

map::ReadSet
loadFastq(const std::string& path)
{
    return parseFastq(readFileText(path), path);
}

void
saveFastq(const std::string& path, const map::ReadSet& reads)
{
    writeFileText(path, formatFastq(reads));
}

} // namespace mg::io
