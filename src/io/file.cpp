#include "io/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "fault/fault.h"
#include "io/fd.h"
#include "util/common.h"
#include "util/status.h"

namespace mg::io {

namespace {

/** Throw an IoError status naming the offending file. */
[[noreturn]] void
ioFail(const std::string& path, std::string message)
{
    util::Status status;
    status.code = util::StatusCode::IoError;
    status.message = std::move(message);
    status.file = path;
    util::throwStatus(std::move(status));
}

} // namespace

bool
fileExists(const std::string& path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

std::vector<uint8_t>
readFileBytes(const std::string& path)
{
    // Fault point: the operating system failing a read.
    fault::inject("io.file.read");

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) {
        ioFail(path, "cannot open file for reading");
    }
    std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in.good() && size != 0) {
        ioFail(path, "short read from file");
    }
    return bytes;
}

void
writeFileBytes(const std::string& path, const std::vector<uint8_t>& bytes)
{
    // Fault point: the operating system failing a write.
    fault::inject("io.file.write");

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
        ioFail(path, "cannot open file for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
        ioFail(path, "short write to file");
    }
}

void
writeFileBytesDurable(const std::string& path,
                      const std::vector<uint8_t>& bytes)
{
    // Fault point: crash, throw, or torn write at the moment of
    // persistence.  A torn write models a storage stack without working
    // atomicity — the mangled prefix lands at the *final* path directly,
    // exactly what the CRC on every durable format exists to catch.
    if (auto torn = fault::corrupted("io.file.durable", bytes)) {
        writeFileBytes(path, *torn);
        return;
    }

    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        ioFail(tmp, "cannot open temp file for durable write");
    }
    // EINTR/partial-write-safe: a drain signal landing mid-flush must not
    // tear the checkpoint image (io::writeFull retries both).
    if (writeFull(fd, bytes.data(), bytes.size()) < 0) {
        ::close(fd);
        ioFail(tmp, "write failed during durable write");
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ioFail(tmp, "fsync failed during durable write");
    }
    ::close(fd);

    // Fault point: crash between the durable tmp file and the rename —
    // the final path keeps its previous content (or stays absent) and the
    // orphan tmp file is ignored by loaders.
    fault::inject("io.file.durable.rename");

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ioFail(path, "rename failed during durable write");
    }
    // Make the rename itself durable by syncing the directory entry.
    std::string dir = path;
    size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? std::string(".")
                                     : dir.substr(0, slash);
    int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd); // best effort: some filesystems refuse dir fsync
        ::close(dirfd);
    }
}

std::string
readFileText(const std::string& path)
{
    std::vector<uint8_t> bytes = readFileBytes(path);
    return std::string(bytes.begin(), bytes.end());
}

void
writeFileText(const std::string& path, const std::string& text)
{
    // Fault point shared with the binary writer.
    fault::inject("io.file.write");

    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
        ioFail(path, "cannot open file for writing");
    }
    out << text;
    out.flush();
    if (!out.good()) {
        ioFail(path, "short write to file");
    }
}

} // namespace mg::io
