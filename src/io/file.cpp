#include "io/file.h"

#include <fstream>

#include "util/common.h"

namespace mg::io {

std::vector<uint8_t>
readFileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    util::require(in.good(), "cannot open file for reading: ", path);
    std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    util::require(in.good() || size == 0, "short read from file: ", path);
    return bytes;
}

void
writeFileBytes(const std::string& path, const std::vector<uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    util::require(out.good(), "cannot open file for writing: ", path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    util::require(out.good(), "short write to file: ", path);
}

std::string
readFileText(const std::string& path)
{
    std::vector<uint8_t> bytes = readFileBytes(path);
    return std::string(bytes.begin(), bytes.end());
}

void
writeFileText(const std::string& path, const std::string& text)
{
    std::ofstream out(path, std::ios::trunc);
    util::require(out.good(), "cannot open file for writing: ", path);
    out << text;
    util::require(out.good(), "short write to file: ", path);
}

} // namespace mg::io
