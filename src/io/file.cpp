#include "io/file.h"

#include <fstream>

#include "fault/fault.h"
#include "util/common.h"
#include "util/status.h"

namespace mg::io {

namespace {

/** Throw an IoError status naming the offending file. */
[[noreturn]] void
ioFail(const std::string& path, std::string message)
{
    util::Status status;
    status.code = util::StatusCode::IoError;
    status.message = std::move(message);
    status.file = path;
    util::throwStatus(std::move(status));
}

} // namespace

std::vector<uint8_t>
readFileBytes(const std::string& path)
{
    // Fault point: the operating system failing a read.
    fault::inject("io.file.read");

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) {
        ioFail(path, "cannot open file for reading");
    }
    std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in.good() && size != 0) {
        ioFail(path, "short read from file");
    }
    return bytes;
}

void
writeFileBytes(const std::string& path, const std::vector<uint8_t>& bytes)
{
    // Fault point: the operating system failing a write.
    fault::inject("io.file.write");

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
        ioFail(path, "cannot open file for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
        ioFail(path, "short write to file");
    }
}

std::string
readFileText(const std::string& path)
{
    std::vector<uint8_t> bytes = readFileBytes(path);
    return std::string(bytes.begin(), bytes.end());
}

void
writeFileText(const std::string& path, const std::string& text)
{
    // Fault point shared with the binary writer.
    fault::inject("io.file.write");

    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
        ioFail(path, "cannot open file for writing");
    }
    out << text;
    out.flush();
    if (!out.good()) {
        ioFail(path, "short write to file");
    }
}

} // namespace mg::io
