#include "io/reads_bin.h"

#include <algorithm>
#include <cstring>

#include "fault/fault.h"
#include "io/file.h"
#include "util/common.h"
#include "util/cursor.h"
#include "util/varint.h"

namespace mg::io {

namespace {

constexpr char kMagic[4] = { 'M', 'G', 'S', '1' };

} // namespace

std::vector<uint8_t>
encodeSeedCapture(const SeedCapture& capture)
{
    util::ByteWriter writer;
    writer.putBytes(kMagic, sizeof(kMagic));
    writer.putByte(capture.pairedEnd ? 1 : 0);
    writer.putVarint(capture.entries.size());
    for (const ReadWithSeeds& entry : capture.entries) {
        writer.putString(entry.read.name);
        writer.putString(entry.read.sequence);
        writer.putVarint(entry.read.mate == SIZE_MAX
                             ? 0
                             : entry.read.mate + 1);
        writer.putVarint(entry.seeds.size());
        uint64_t prev_packed = 0;
        for (const map::Seed& seed : entry.seeds) {
            writer.putSignedVarint(
                static_cast<int64_t>(seed.position.handle.packed()) -
                static_cast<int64_t>(prev_packed));
            prev_packed = seed.position.handle.packed();
            writer.putVarint(seed.position.offset);
            writer.putVarint(seed.readOffset);
            writer.putByte(seed.onReverseRead ? 1 : 0);
            // Exact float bits: the functional validation requires seeds
            // loaded from a capture to behave identically to inline ones.
            uint32_t score_bits;
            std::memcpy(&score_bits, &seed.score, sizeof(score_bits));
            writer.putVarint(score_bits);
        }
    }
    return writer.takeBytes();
}

SeedCapture
decodeSeedCapture(const std::vector<uint8_t>& bytes, std::string_view file)
{
    // Fault point: damaged capture reaching the decoder.
    std::optional<std::vector<uint8_t>> injected =
        fault::corrupted("io.reads_bin.decode", bytes);
    const std::vector<uint8_t>& input = injected ? *injected : bytes;

    util::ByteCursor cursor(input, file);
    cursor.enterSection("magic");
    char magic[4];
    cursor.getBytes(magic, sizeof(magic));
    cursor.check(std::equal(magic, magic + 4, kMagic),
                 util::StatusCode::Corrupt,
                 "not a reads+seeds capture (bad magic)");
    cursor.enterSection("entries");
    SeedCapture capture;
    capture.pairedEnd = cursor.getByte() != 0;
    uint64_t num_entries = cursor.getVarint();
    cursor.check(num_entries <= cursor.remaining(),
                 util::StatusCode::Corrupt,
                 "capture entry count exceeds remaining payload");
    capture.entries.reserve(num_entries);
    for (uint64_t i = 0; i < num_entries; ++i) {
        ReadWithSeeds entry;
        entry.read.name = cursor.getString();
        entry.read.sequence = cursor.getString();
        uint64_t mate = cursor.getVarint();
        entry.read.mate = mate == 0 ? SIZE_MAX : mate - 1;
        uint64_t num_seeds = cursor.getVarint();
        cursor.check(num_seeds <= cursor.remaining(),
                     util::StatusCode::Corrupt,
                     "seed count exceeds remaining payload");
        entry.seeds.reserve(num_seeds);
        int64_t packed = 0;
        for (uint64_t s = 0; s < num_seeds; ++s) {
            packed += cursor.getSignedVarint();
            map::Seed seed;
            seed.position.handle =
                graph::Handle::fromPacked(static_cast<uint64_t>(packed));
            seed.position.offset =
                static_cast<uint32_t>(cursor.getVarint());
            seed.readOffset = static_cast<uint32_t>(cursor.getVarint());
            seed.onReverseRead = cursor.getByte() != 0;
            uint32_t score_bits =
                static_cast<uint32_t>(cursor.getVarint());
            std::memcpy(&seed.score, &score_bits, sizeof(seed.score));
            entry.seeds.push_back(seed);
        }
        capture.entries.push_back(std::move(entry));
    }
    cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                 "trailing bytes after seed capture");
    return capture;
}

void
saveSeedCapture(const std::string& path, const SeedCapture& capture)
{
    writeFileBytes(path, encodeSeedCapture(capture));
}

SeedCapture
loadSeedCapture(const std::string& path)
{
    return decodeSeedCapture(readFileBytes(path), path);
}

} // namespace mg::io
