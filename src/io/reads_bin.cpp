#include "io/reads_bin.h"

#include <algorithm>
#include <cstring>

#include "io/file.h"
#include "util/common.h"
#include "util/varint.h"

namespace mg::io {

namespace {

constexpr char kMagic[4] = { 'M', 'G', 'S', '1' };

} // namespace

std::vector<uint8_t>
encodeSeedCapture(const SeedCapture& capture)
{
    util::ByteWriter writer;
    writer.putBytes(kMagic, sizeof(kMagic));
    writer.putByte(capture.pairedEnd ? 1 : 0);
    writer.putVarint(capture.entries.size());
    for (const ReadWithSeeds& entry : capture.entries) {
        writer.putString(entry.read.name);
        writer.putString(entry.read.sequence);
        writer.putVarint(entry.read.mate == SIZE_MAX
                             ? 0
                             : entry.read.mate + 1);
        writer.putVarint(entry.seeds.size());
        uint64_t prev_packed = 0;
        for (const map::Seed& seed : entry.seeds) {
            writer.putSignedVarint(
                static_cast<int64_t>(seed.position.handle.packed()) -
                static_cast<int64_t>(prev_packed));
            prev_packed = seed.position.handle.packed();
            writer.putVarint(seed.position.offset);
            writer.putVarint(seed.readOffset);
            writer.putByte(seed.onReverseRead ? 1 : 0);
            // Exact float bits: the functional validation requires seeds
            // loaded from a capture to behave identically to inline ones.
            uint32_t score_bits;
            std::memcpy(&score_bits, &seed.score, sizeof(score_bits));
            writer.putVarint(score_bits);
        }
    }
    return writer.takeBytes();
}

SeedCapture
decodeSeedCapture(const std::vector<uint8_t>& bytes)
{
    util::ByteReader reader(bytes);
    char magic[4];
    reader.getBytes(magic, sizeof(magic));
    util::require(std::equal(magic, magic + 4, kMagic),
                  "not a reads+seeds capture (bad magic)");
    SeedCapture capture;
    capture.pairedEnd = reader.getByte() != 0;
    uint64_t num_entries = reader.getVarint();
    util::require(num_entries <= reader.remaining(),
                  "capture entry count exceeds remaining payload");
    capture.entries.reserve(num_entries);
    for (uint64_t i = 0; i < num_entries; ++i) {
        ReadWithSeeds entry;
        entry.read.name = reader.getString();
        entry.read.sequence = reader.getString();
        uint64_t mate = reader.getVarint();
        entry.read.mate = mate == 0 ? SIZE_MAX : mate - 1;
        uint64_t num_seeds = reader.getVarint();
        util::require(num_seeds <= reader.remaining(),
                      "seed count exceeds remaining payload");
        entry.seeds.reserve(num_seeds);
        int64_t packed = 0;
        for (uint64_t s = 0; s < num_seeds; ++s) {
            packed += reader.getSignedVarint();
            map::Seed seed;
            seed.position.handle =
                graph::Handle::fromPacked(static_cast<uint64_t>(packed));
            seed.position.offset =
                static_cast<uint32_t>(reader.getVarint());
            seed.readOffset = static_cast<uint32_t>(reader.getVarint());
            seed.onReverseRead = reader.getByte() != 0;
            uint32_t score_bits =
                static_cast<uint32_t>(reader.getVarint());
            std::memcpy(&seed.score, &score_bits, sizeof(seed.score));
            entry.seeds.push_back(seed);
        }
        capture.entries.push_back(std::move(entry));
    }
    util::require(reader.atEnd(), "trailing bytes after seed capture");
    return capture;
}

void
saveSeedCapture(const std::string& path, const SeedCapture& capture)
{
    writeFileBytes(path, encodeSeedCapture(capture));
}

SeedCapture
loadSeedCapture(const std::string& path)
{
    return decodeSeedCapture(readFileBytes(path));
}

} // namespace mg::io
