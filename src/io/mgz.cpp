#include "io/mgz.h"

#include <algorithm>

#include "io/file.h"
#include "util/common.h"
#include "util/dna.h"
#include "util/varint.h"

namespace mg::io {

namespace {

constexpr char kMagic[4] = { 'M', 'G', 'Z', '1' };

void
encodeSequence(util::ByteWriter& writer, std::string_view seq)
{
    writer.putVarint(seq.size());
    uint8_t byte = 0;
    int filled = 0;
    for (char c : seq) {
        byte |= static_cast<uint8_t>(util::baseCode(c) << (2 * filled));
        if (++filled == 4) {
            writer.putByte(byte);
            byte = 0;
            filled = 0;
        }
    }
    if (filled > 0) {
        writer.putByte(byte);
    }
}

std::string
decodeSequence(util::ByteReader& reader)
{
    uint64_t length = reader.getVarint();
    util::require(length <= reader.remaining() * 4,
                  "sequence length exceeds remaining payload");
    std::string seq(length, 'A');
    uint8_t byte = 0;
    for (uint64_t i = 0; i < length; ++i) {
        if (i % 4 == 0) {
            byte = reader.getByte();
        }
        seq[i] = util::codeBase((byte >> (2 * (i % 4))) & 3);
    }
    return seq;
}

} // namespace

std::vector<uint8_t>
encodeMgz(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt)
{
    util::ByteWriter writer;
    writer.putBytes(kMagic, sizeof(kMagic));

    // --- Nodes ---
    writer.putVarint(graph.numNodes());
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        encodeSequence(writer, graph.sequenceView(id));
    }

    // --- Edges (forward handles only; twins are implicit) ---
    // Collected as (from.packed, to.packed), delta coded on `from`.
    std::vector<std::pair<uint64_t, uint64_t>> edges;
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            graph::Handle from(id, reverse);
            for (graph::Handle to : graph.successors(from)) {
                // Each bidirected edge is stored once via the
                // lexicographically smaller of (edge, twin).
                auto key = std::make_pair(from.packed(), to.packed());
                auto twin = std::make_pair(to.flip().packed(),
                                           from.flip().packed());
                if (key <= twin) {
                    edges.emplace_back(key);
                }
            }
        }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    writer.putVarint(edges.size());
    uint64_t prev_from = 0;
    for (const auto& [from, to] : edges) {
        writer.putVarint(from - prev_from);
        writer.putVarint(to);
        prev_from = from;
    }

    // --- Paths ---
    writer.putVarint(graph.numPaths());
    for (const graph::PathEntry& path : graph.paths()) {
        writer.putString(path.name);
        writer.putVarint(path.steps.size());
        int64_t prev = 0;
        for (graph::Handle step : path.steps) {
            // Consecutive path nodes have nearby ids; zigzag the delta.
            writer.putSignedVarint(static_cast<int64_t>(step.packed()) -
                                   prev);
            prev = static_cast<int64_t>(step.packed());
        }
    }

    // --- GBWT ---
    gbwt.save(writer);
    return writer.takeBytes();
}

Pangenome
decodeMgz(const std::vector<uint8_t>& bytes)
{
    util::ByteReader reader(bytes);
    char magic[4];
    reader.getBytes(magic, sizeof(magic));
    util::require(std::equal(magic, magic + 4, kMagic),
                  "not an MGZ file (bad magic)");

    Pangenome out;
    uint64_t num_nodes = reader.getVarint();
    for (uint64_t i = 0; i < num_nodes; ++i) {
        out.graph.addNode(decodeSequence(reader));
    }
    uint64_t num_edges = reader.getVarint();
    uint64_t prev_from = 0;
    for (uint64_t i = 0; i < num_edges; ++i) {
        prev_from += reader.getVarint();
        uint64_t to = reader.getVarint();
        out.graph.addEdge(graph::Handle::fromPacked(prev_from),
                          graph::Handle::fromPacked(to));
    }
    uint64_t num_paths = reader.getVarint();
    for (uint64_t i = 0; i < num_paths; ++i) {
        std::string name = reader.getString();
        uint64_t num_steps = reader.getVarint();
        util::require(num_steps <= reader.remaining(),
                      "path step count exceeds remaining payload");
        std::vector<graph::Handle> steps;
        steps.reserve(num_steps);
        int64_t packed = 0;
        for (uint64_t s = 0; s < num_steps; ++s) {
            packed += reader.getSignedVarint();
            steps.push_back(
                graph::Handle::fromPacked(static_cast<uint64_t>(packed)));
        }
        out.graph.addPath(std::move(name), std::move(steps));
    }
    out.gbwt = gbwt::Gbwt::load(reader);
    util::require(reader.atEnd(), "trailing bytes after MGZ payload");
    return out;
}

void
saveMgz(const std::string& path, const graph::VariationGraph& graph,
        const gbwt::Gbwt& gbwt)
{
    writeFileBytes(path, encodeMgz(graph, gbwt));
}

Pangenome
loadMgz(const std::string& path)
{
    return decodeMgz(readFileBytes(path));
}

} // namespace mg::io
