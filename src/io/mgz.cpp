#include "io/mgz.h"

#include <algorithm>
#include <array>

#include "fault/fault.h"
#include "io/file.h"
#include "io/mgz_sections.h"
#include "util/common.h"
#include "util/crc32.h"
#include "util/cursor.h"
#include "util/dna.h"
#include "util/varint.h"

namespace mg::io {

namespace {

constexpr char kMagicV1[4] = { 'M', 'G', 'Z', '1' };
constexpr char kMagicV2[4] = { 'M', 'G', 'Z', '2' };
constexpr char kMagicV3[4] = { 'M', 'G', 'Z', '3' };

constexpr std::array<const char*, 4> kSectionNames = {
    "nodes", "edges", "paths", "gbwt"
};

void
encodeSequence(util::ByteWriter& writer, std::string_view seq)
{
    writer.putVarint(seq.size());
    uint8_t byte = 0;
    int filled = 0;
    for (char c : seq) {
        byte |= static_cast<uint8_t>(util::baseCode(c) << (2 * filled));
        if (++filled == 4) {
            writer.putByte(byte);
            byte = 0;
            filled = 0;
        }
    }
    if (filled > 0) {
        writer.putByte(byte);
    }
}

std::string
decodeSequence(util::ByteCursor& cursor)
{
    uint64_t length = cursor.getVarint();
    cursor.check(length <= cursor.remaining() * 4, util::StatusCode::Corrupt,
                 "sequence length exceeds remaining payload");
    std::string seq(length, 'A');
    uint8_t byte = 0;
    for (uint64_t i = 0; i < length; ++i) {
        if (i % 4 == 0) {
            byte = cursor.getByte();
        }
        seq[i] = util::codeBase((byte >> (2 * (i % 4))) & 3);
    }
    return seq;
}

// --- Section payload writers -------------------------------------------

void
encodeNodesSection(util::ByteWriter& writer,
                   const graph::VariationGraph& graph)
{
    writer.putVarint(graph.numNodes());
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        encodeSequence(writer, graph.forwardSequence(id));
    }
}

} // namespace

namespace detail {

void
encodeEdgesSection(util::ByteWriter& writer,
                   const graph::VariationGraph& graph)
{
    // Forward handles only; twins are implicit.  Collected as
    // (from.packed, to.packed), delta coded on `from`.
    std::vector<std::pair<uint64_t, uint64_t>> edges;
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            graph::Handle from(id, reverse);
            for (graph::Handle to : graph.successors(from)) {
                // Each bidirected edge is stored once via the
                // lexicographically smaller of (edge, twin).
                auto key = std::make_pair(from.packed(), to.packed());
                auto twin = std::make_pair(to.flip().packed(),
                                           from.flip().packed());
                if (key <= twin) {
                    edges.emplace_back(key);
                }
            }
        }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    writer.putVarint(edges.size());
    uint64_t prev_from = 0;
    for (const auto& [from, to] : edges) {
        writer.putVarint(from - prev_from);
        writer.putVarint(to);
        prev_from = from;
    }
}

void
encodePathsSection(util::ByteWriter& writer,
                   const graph::VariationGraph& graph)
{
    writer.putVarint(graph.numPaths());
    for (const graph::PathEntry& path : graph.paths()) {
        writer.putString(path.name);
        writer.putVarint(path.steps.size());
        int64_t prev = 0;
        for (graph::Handle step : path.steps) {
            // Consecutive path nodes have nearby ids; zigzag the delta.
            writer.putSignedVarint(static_cast<int64_t>(step.packed()) -
                                   prev);
            prev = static_cast<int64_t>(step.packed());
        }
    }
}

void
decodeEdgesSection(util::ByteCursor& cursor, graph::VariationGraph& graph)
{
    uint64_t num_edges = cursor.getVarint();
    cursor.check(num_edges <= cursor.remaining(), util::StatusCode::Corrupt,
                 "edge count exceeds remaining payload");
    uint64_t prev_from = 0;
    for (uint64_t i = 0; i < num_edges; ++i) {
        prev_from += cursor.getVarint();
        uint64_t to = cursor.getVarint();
        graph.addEdge(graph::Handle::fromPacked(prev_from),
                      graph::Handle::fromPacked(to));
    }
}

void
decodePathsSection(util::ByteCursor& cursor, graph::VariationGraph& graph,
                   bool checked)
{
    uint64_t num_paths = cursor.getVarint();
    cursor.check(num_paths <= cursor.remaining(), util::StatusCode::Corrupt,
                 "path count exceeds remaining payload");
    for (uint64_t i = 0; i < num_paths; ++i) {
        std::string name = cursor.getString();
        uint64_t num_steps = cursor.getVarint();
        cursor.check(num_steps <= cursor.remaining(),
                     util::StatusCode::Corrupt,
                     "path step count exceeds remaining payload");
        std::vector<graph::Handle> steps;
        steps.reserve(num_steps);
        int64_t packed = 0;
        for (uint64_t s = 0; s < num_steps; ++s) {
            packed += cursor.getSignedVarint();
            steps.push_back(
                graph::Handle::fromPacked(static_cast<uint64_t>(packed)));
        }
        if (checked) {
            graph.addPath(std::move(name), std::move(steps));
        } else {
            graph.addPathUnchecked(std::move(name), std::move(steps));
        }
    }
}

} // namespace detail

namespace {

// --- Section payload readers -------------------------------------------

void
decodeNodesSection(util::ByteCursor& cursor, Pangenome& out)
{
    uint64_t num_nodes = cursor.getVarint();
    cursor.check(num_nodes <= cursor.remaining(), util::StatusCode::Corrupt,
                 "node count exceeds remaining payload");
    for (uint64_t i = 0; i < num_nodes; ++i) {
        out.graph.addNode(decodeSequence(cursor));
    }
}

uint32_t
getCrc32Le(util::ByteCursor& cursor)
{
    uint8_t raw[4];
    cursor.getBytes(raw, sizeof(raw));
    return static_cast<uint32_t>(raw[0]) |
           static_cast<uint32_t>(raw[1]) << 8 |
           static_cast<uint32_t>(raw[2]) << 16 |
           static_cast<uint32_t>(raw[3]) << 24;
}

/**
 * Walk one V2 section header: enters the section on `cursor`, verifies
 * the size fits, and returns the payload span with its stored CRC.  The
 * cursor is left positioned after the section.
 */
MgzSectionInfo
walkSection(util::ByteCursor& cursor, const char* name)
{
    cursor.enterSection(name);
    MgzSectionInfo info;
    info.name = name;
    info.size = cursor.getVarint();
    cursor.check(info.size <= cursor.remaining() &&
                 cursor.remaining() - info.size >= 4,
                 util::StatusCode::Truncated,
                 "section of ", info.size, " bytes exceeds remaining file");
    info.offset = cursor.pos();
    cursor.seek(cursor.pos() + info.size);
    info.crcStored = getCrc32Le(cursor);
    info.crcComputed =
        util::crc32(cursor.data() + info.offset, info.size);
    info.crcOk = info.crcStored == info.crcComputed;
    return info;
}

} // namespace

bool
MgzInfo::allChecksumsOk() const
{
    return std::all_of(sections.begin(), sections.end(),
                       [](const MgzSectionInfo& s) { return s.crcOk; });
}

std::vector<uint8_t>
encodeMgz(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
          MgzVersion version)
{
    std::array<util::ByteWriter, 4> payloads;
    encodeNodesSection(payloads[0], graph);
    detail::encodeEdgesSection(payloads[1], graph);
    detail::encodePathsSection(payloads[2], graph);
    gbwt.save(payloads[3]);

    util::ByteWriter out;
    if (version == MgzVersion::V1) {
        out.putBytes(kMagicV1, sizeof(kMagicV1));
        for (const util::ByteWriter& payload : payloads) {
            out.putBytes(payload.bytes().data(), payload.size());
        }
        return out.takeBytes();
    }
    out.putBytes(kMagicV2, sizeof(kMagicV2));
    for (const util::ByteWriter& payload : payloads) {
        out.putVarint(payload.size());
        out.putBytes(payload.bytes().data(), payload.size());
        uint32_t crc = util::crc32(payload.bytes().data(), payload.size());
        out.putByte(static_cast<uint8_t>(crc));
        out.putByte(static_cast<uint8_t>(crc >> 8));
        out.putByte(static_cast<uint8_t>(crc >> 16));
        out.putByte(static_cast<uint8_t>(crc >> 24));
    }
    return out.takeBytes();
}

Pangenome
decodeMgz(const std::vector<uint8_t>& bytes, std::string_view file)
{
    // Fault point: simulates a damaged container reaching the decoder
    // (the hardened paths below must turn it into a structured error).
    std::optional<std::vector<uint8_t>> injected =
        fault::corrupted("io.mgz.decode", bytes);
    const std::vector<uint8_t>& input = injected ? *injected : bytes;

    util::ByteCursor cursor(input, file);
    cursor.enterSection("magic");
    char magic[4];
    cursor.getBytes(magic, sizeof(magic));

    Pangenome out;
    if (std::equal(magic, magic + 4, kMagicV1)) {
        // Legacy unversioned container: bare concatenated payloads, no
        // checksums.  Sections are annotated as the walk advances so
        // errors still name the damaged region.
        cursor.enterSection("nodes");
        decodeNodesSection(cursor, out);
        cursor.enterSection("edges");
        detail::decodeEdgesSection(cursor, out.graph);
        cursor.enterSection("paths");
        detail::decodePathsSection(cursor, out.graph, true);
        cursor.enterSection("gbwt");
        out.gbwt = gbwt::Gbwt::load(cursor);
        cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                     "trailing bytes after MGZ payload");
        return out;
    }
    cursor.check(!std::equal(magic, magic + 4, kMagicV3),
                 util::StatusCode::InvalidArgument,
                 "MGZ v3 containers are memory-mapped; load this file "
                 "through loadPangenome()");
    cursor.check(std::equal(magic, magic + 4, kMagicV2),
                 util::StatusCode::Corrupt, "not an MGZ file (bad magic)");

    for (const char* name : kSectionNames) {
        MgzSectionInfo info = walkSection(cursor, name);
        if (!info.crcOk) {
            util::Status status;
            status.code = util::StatusCode::ChecksumMismatch;
            status.message = util::cat(
                "section checksum mismatch (stored ", info.crcStored,
                ", computed ", info.crcComputed, ")");
            status.file = std::string(file);
            status.section = name;
            status.offset = info.offset;
            util::throwStatus(std::move(status));
        }
        util::ByteCursor section(input.data() + info.offset, info.size,
                                 file);
        section.enterSection(name);
        if (name == kSectionNames[0]) {
            decodeNodesSection(section, out);
        } else if (name == kSectionNames[1]) {
            detail::decodeEdgesSection(section, out.graph);
        } else if (name == kSectionNames[2]) {
            detail::decodePathsSection(section, out.graph, true);
        } else {
            out.gbwt = gbwt::Gbwt::load(section);
        }
        section.check(section.atEnd(), util::StatusCode::Corrupt,
                      "trailing bytes in section");
    }
    cursor.enterSection("trailer");
    cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                 "trailing bytes after MGZ payload");
    return out;
}

MgzInfo
inspectMgz(const std::vector<uint8_t>& bytes, std::string_view file)
{
    util::ByteCursor cursor(bytes, file);
    cursor.enterSection("magic");
    char magic[4];
    cursor.getBytes(magic, sizeof(magic));

    MgzInfo info;
    info.fileBytes = bytes.size();
    if (std::equal(magic, magic + 4, kMagicV1)) {
        info.version = MgzVersion::V1;
        return info;
    }
    if (std::equal(magic, magic + 4, kMagicV3)) {
        return inspectMgz3(bytes.data(), bytes.size(), file);
    }
    cursor.check(std::equal(magic, magic + 4, kMagicV2),
                 util::StatusCode::Corrupt, "not an MGZ file (bad magic)");
    info.version = MgzVersion::V2;
    for (const char* name : kSectionNames) {
        info.sections.push_back(walkSection(cursor, name));
    }
    cursor.enterSection("trailer");
    cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                 "trailing bytes after MGZ payload");
    return info;
}

void
saveMgz(const std::string& path, const graph::VariationGraph& graph,
        const gbwt::Gbwt& gbwt)
{
    writeFileBytes(path, encodeMgz(graph, gbwt));
}

Pangenome
loadMgz(const std::string& path)
{
    return decodeMgz(readFileBytes(path), path);
}

} // namespace mg::io
