/**
 * @file
 * EINTR- and partial-transfer-safe file-descriptor primitives, plus the
 * Unix-domain socket plumbing the serving layer is built on.  Raw
 * ::read/::write on a pipe or socket may transfer fewer bytes than asked
 * (or nothing at all, with errno == EINTR, when a signal lands) — every
 * fd consumer in this repository goes through readFull/writeFull so that
 * a drain signal arriving mid-transfer can never tear a frame or a
 * checkpoint image.
 *
 * The two *Full primitives are noexcept and allocation-free: they are
 * safe to call from signal handlers (the flight recorder's crash dump)
 * and from destructor-driven cleanup paths.  The socket helpers throw
 * mg::util::StatusError with IoError provenance like the rest of io.
 */
#pragma once

#include <cstddef>
#include <string>
#include <sys/types.h>

namespace mg::io {

/**
 * Read exactly `n` bytes into `buf` unless the stream ends first.
 * Retries EINTR and short reads.  Returns the byte count actually read
 * (== n unless EOF arrived earlier; 0 means EOF before the first byte),
 * or -1 with errno set on a real error.
 */
ssize_t readFull(int fd, void* buf, size_t n) noexcept;

/**
 * Write exactly `n` bytes from `buf`.  Retries EINTR and short writes.
 * Returns n on success or -1 with errno set (EPIPE on a peer that went
 * away — callers decide whether that is an error or a logged shed).
 */
ssize_t writeFull(int fd, const void* buf, size_t n) noexcept;

/**
 * Create, bind, and listen on a Unix-domain stream socket at `path`
 * (an existing socket file is removed first — the daemon owns its
 * endpoint).  Returns the listening fd; throws StatusError on failure.
 */
int listenUnix(const std::string& path, int backlog = 16);

/** Connect to a Unix-domain stream socket; throws StatusError. */
int connectUnix(const std::string& path);

/**
 * Ignore SIGPIPE process-wide (idempotent).  A serving process must see
 * a peer that disappeared as EPIPE from writeFull, not as a process-
 * killing signal.
 */
void ignoreSigpipe() noexcept;

} // namespace mg::io
