/**
 * @file
 * Crash-consistent mapping checkpoints.  A long mapping run periodically
 * flushes completed *shards* — the GAF lines of a contiguous read range
 * plus the stats deltas that range contributed — so a killed run (power
 * loss, OOM kill, SIGKILL at any instant) resumes from its last durable
 * shard and still produces a byte-identical final GAF.
 *
 * On-disk layout (one checkpoint directory per run):
 *
 *     shard-<begin>-<end>.mgs   "MGS1" magic + varint payload + CRC32
 *     manifest.mgc              "MGC1" magic + varint payload + CRC32
 *
 * Durability protocol: a shard file is written via writeFileBytesDurable
 * (temp + fsync + atomic rename) *before* the manifest referencing it is
 * rewritten the same way.  The manifest is therefore the single source of
 * truth: a crash at any point leaves either the old manifest (the new
 * shard is an ignored orphan) or the new one (the shard it references is
 * already durable).  No ordering is trusted blindly — the manifest stores
 * each shard's payload CRC, and the loader re-verifies every shard file
 * against both its own trailing CRC and the manifest's copy, dropping
 * (re-mapping) any shard that fails.  Decoding never crashes on corrupt
 * input: every structural violation surfaces as util::Status provenance
 * (the fuzz harness drives this decoder with truncations and bit flips).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mg::io {

/** Stats a shard's read range contributed (restored on resume so run
 *  totals match an uninterrupted run; the latency histogram is not
 *  persisted — resumed summaries cover newly mapped reads only). */
struct ShardStatsDelta
{
    /** Degradation counters (resilience::ResilienceStats counters). */
    uint64_t deadlineHits = 0;
    uint64_t stepCapHits = 0;
    uint64_t lookupCapHits = 0;
    uint64_t watchdogCancels = 0;
    /** CachedGBWT counters. */
    uint64_t cacheLookups = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheDecodes = 0;
    uint64_t cacheRehashes = 0;
    uint64_t cacheProbes = 0;
};

/** One durable unit: the GAF lines of reads [begin, end). */
struct Shard
{
    uint64_t begin = 0;
    uint64_t end = 0;
    /** Concatenated GAF lines, one per read in range, each '\n'-ended. */
    std::string gaf;
    ShardStatsDelta stats;
};

/** Manifest entry referencing one durable shard file. */
struct ManifestEntry
{
    uint64_t begin = 0;
    uint64_t end = 0;
    /** CRC32 of the shard file's payload (cross-check on load). */
    uint32_t payloadCrc = 0;
    /** File name within the checkpoint directory. */
    std::string file;
};

/** The checkpoint's source of truth. */
struct Manifest
{
    /** Total reads of the run the checkpoint belongs to. */
    uint64_t totalReads = 0;
    /** Durable shards, sorted by begin, non-overlapping. */
    std::vector<ManifestEntry> shards;
};

/** Conventional file names. */
std::string shardFileName(uint64_t begin, uint64_t end);
constexpr const char* kManifestFileName = "manifest.mgc";

// --- Encoding (infallible) ---------------------------------------------

std::vector<uint8_t> encodeShard(const Shard& shard);
std::vector<uint8_t> encodeManifest(const Manifest& manifest);

// --- Decoding (total: corrupt input -> Status, never a crash) ----------

/** Decode + CRC-verify one shard file's bytes. */
util::Status decodeShard(const std::vector<uint8_t>& bytes,
                         const std::string& file, Shard& out);

/**
 * Decode + CRC-verify a manifest and validate its structure: every shard
 * range must satisfy begin < end <= totalReads, entries must be sorted by
 * begin and non-overlapping, and file names must be non-empty.
 */
util::Status decodeManifest(const std::vector<uint8_t>& bytes,
                            const std::string& file, Manifest& out);

// --- The writer --------------------------------------------------------

/**
 * Appends durable shards to a checkpoint directory.  Single-threaded by
 * design: the mapping scheduler completes shards in any order, but the
 * driver flushes them from one thread (flushing is I/O-bound and rare).
 */
class CheckpointWriter
{
  public:
    /** Durability-cost telemetry: what flushing has spent so far. */
    struct FlushStats
    {
        uint64_t flushes = 0; // append() calls completed
        uint64_t bytes = 0;   // shard + manifest bytes written durably
        uint64_t nanos = 0;   // wall time inside append()
    };

    /** Creates the directory if needed.  `total_reads` pins the run. */
    CheckpointWriter(std::string dir, uint64_t total_reads);

    /**
     * Adopt the surviving manifest of a previous run (resume): new shards
     * are appended alongside the adopted ones.
     */
    void adopt(Manifest manifest);

    /** Durably persist one completed shard, then the updated manifest. */
    void append(Shard shard);

    const Manifest& manifest() const { return manifest_; }
    const std::string& dir() const { return dir_; }
    const FlushStats& flushStats() const { return flushStats_; }

  private:
    std::string dir_;
    Manifest manifest_;
    FlushStats flushStats_;
};

// --- The loader --------------------------------------------------------

/** Everything a previous run left behind that verifies. */
struct CheckpointState
{
    /** The manifest pruned to the entries whose shard files verified, so
     *  adopting it and flushing replacement shards for the dropped ranges
     *  can never produce overlapping entries. */
    Manifest manifest;
    /** Shards that decoded and CRC-verified, in manifest order. */
    std::vector<Shard> shards;
    /** Manifest entries whose shard file failed (dropped; re-mapped). */
    uint64_t droppedShards = 0;
};

/**
 * Load a checkpoint directory.  No manifest file -> empty state, Ok (a
 * fresh run).  A corrupt manifest is fatal (non-Ok Status): it is the
 * source of truth and was written atomically, so damage means real
 * corruption the caller must see.  A corrupt *shard* is not fatal: the
 * entry is dropped and its reads are simply mapped again.
 */
util::Status loadCheckpoint(const std::string& dir, CheckpointState& out);

} // namespace mg::io
