/**
 * @file
 * MGZ v3: the zero-copy container.  Where v2 is a stream you *parse*, v3
 * is a memory image you *map*: every big immutable arena is stored in its
 * exact little-endian in-memory layout at a page-aligned offset, so
 * loading is mmap + pointer fixup and N processes share one page-cache
 * copy of the index.
 *
 * File layout (all integers little-endian):
 *
 *     offset 0   "MGZ3"
 *     offset 4   u32 format version (3)
 *     offset 8   u32 page size the file was laid out for (4096)
 *     offset 12  u32 section count (15)
 *     offset 16  u64 total file bytes
 *     offset 24  u32 CRC32 of the section table
 *     offset 28  u32 reserved (0)
 *     offset 32  section table: 15 x 40-byte entries
 *                  char tag[16]   zero-padded section name
 *                  u64  offset    payload start (page-aligned)
 *                  u64  size      payload bytes (excludes padding)
 *                  u32  crc32     CRC32 of the payload bytes
 *                  u32  elemSize  element stride (alignment contract)
 *
 * Sections follow in the fixed order of kSections, each starting on a
 * page boundary and zero-padded up to the next one.  The canonical
 * placement (section i starts exactly where padding after section i-1
 * ends) is *enforced* on load, which makes truncated, overlapping, or
 * reordered tables structurally invalid rather than silently accepted.
 *
 * Byte determinism: the encoder writes graph::Position field-wise with
 * its 4 struct-padding bytes zeroed, and every arena is produced by
 * builders whose output is independent of thread count, so the same
 * inputs yield bit-identical containers regardless of build parallelism.
 *
 * Trust model on load: the header, table, and the three small metadata
 * sections (meta/edges/paths) are always CRC-verified; the big arenas are
 * verified only under LoadOptions::verifySectionCrcs (mg_verify, fuzz
 * harness).  The fast path instead relies on the cheap structural scans
 * inside the bindMapped() entry points — offset monotonicity, spans in
 * bounds, bucket load factor — which are what keep "never crash on a
 * corrupt container" true without re-reading gigabytes at startup.
 */
#include "io/mgz.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "io/file.h"
#include "io/mgz_sections.h"
#include "util/crc32.h"
#include "util/cursor.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/varint.h"

namespace mg::io {
namespace {

// The v3 format stores arenas verbatim, so the file layout *is* the
// in-memory layout.  Pin down every assumption that makes that legal.
static_assert(std::endian::native == std::endian::little,
              "MGZ v3 stores little-endian arenas verbatim");
static_assert(std::is_trivially_copyable_v<graph::Position> &&
                  sizeof(graph::Position) == 16 &&
                  offsetof(graph::Position, handle) == 0 &&
                  offsetof(graph::Position, offset) == 8,
              "min.pos maps Position records verbatim");
static_assert(std::is_trivially_copyable_v<index::MinimizerBucket> &&
                  sizeof(index::MinimizerBucket) == 16 &&
                  offsetof(index::MinimizerBucket, key) == 0 &&
                  offsetof(index::MinimizerBucket, offset) == 8 &&
                  offsetof(index::MinimizerBucket, count) == 12,
              "min.table maps bucket records verbatim");

constexpr char kMagicV3[4] = {'M', 'G', 'Z', '3'};
constexpr uint32_t kFormatVersionV3 = 3;
constexpr uint32_t kPageBytes = 4096;
constexpr size_t kTagBytes = 16;
constexpr size_t kEntryBytes = 40;
constexpr size_t kTableOffset = 32;

/** Fixed section order; the loader rejects any deviation. */
struct SectionSpec
{
    const char* tag;
    uint32_t elemSize;
};

enum Section : size_t
{
    kMeta = 0,
    kEdges,
    kPaths,
    kSeqWords,
    kSeqOffsets,
    kGbwtArena,
    kGbwtOffsets,
    kGbwtDocArena,
    kGbwtDocOffs,
    kMinKeys,
    kMinKeyOffs,
    kMinPos,
    kMinTable,
    kDistMin,
    kDistMax,
    kNumSections,
};

constexpr SectionSpec kSections[kNumSections] = {
    {"meta", 1},          {"edges", 1},        {"paths", 1},
    {"seq.words", 8},     {"seq.offsets", 8},  {"gbwt.arena", 1},
    {"gbwt.offsets", 8},  {"gbwt.docarena", 1}, {"gbwt.docoffs", 8},
    {"min.keys", 8},      {"min.keyoffs", 4},  {"min.pos", 16},
    {"min.table", 16},    {"dist.min", 8},     {"dist.max", 8},
};

static_assert(kTableOffset + kNumSections * kEntryBytes <= kPageBytes,
              "header + section table must fit in the first page");

uint64_t
alignPage(uint64_t offset)
{
    return (offset + kPageBytes - 1) & ~uint64_t{kPageBytes - 1};
}

void
writeU32(uint8_t* dst, uint32_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

void
writeU64(uint8_t* dst, uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

uint32_t
readU32(const uint8_t* src)
{
    uint32_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

uint64_t
readU64(const uint8_t* src)
{
    uint64_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

/** CRC of a possibly-empty span without handing crc32 a null pointer. */
uint32_t
spanCrc(const void* data, size_t size)
{
    static const uint8_t kNone = 0;
    return util::crc32(size != 0 ? data : &kNone, size);
}

/** One parsed section-table entry. */
struct SectionView
{
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
};

using SectionTable = std::array<SectionView, kNumSections>;

/**
 * Validate the v3 header + section table and return the parsed table.
 * Enforces the canonical layout: magic/version/page size, table CRC,
 * exact section order and element sizes, page-aligned offsets placed
 * exactly where the previous section's padding ends, and a file-size
 * total that matches.  Throws StatusError with file/section provenance.
 */
SectionTable
parseHeaderV3(const uint8_t* data, size_t size, std::string_view file)
{
    util::ByteCursor cursor(data, size, file);
    cursor.enterSection("header");
    cursor.check(size >= kPageBytes, util::StatusCode::Truncated,
                 "v3 container smaller than one page (", size, " bytes)");
    cursor.check(std::memcmp(data, kMagicV3, sizeof(kMagicV3)) == 0,
                 util::StatusCode::Corrupt, "not an MGZ3 container");
    const uint32_t version = readU32(data + 4);
    cursor.check(version == kFormatVersionV3, util::StatusCode::Corrupt,
                 "unsupported v3 format revision ", version);
    const uint32_t page = readU32(data + 8);
    cursor.check(page == kPageBytes, util::StatusCode::Corrupt,
                 "container laid out for page size ", page, ", expected ",
                 kPageBytes);
    const uint32_t count = readU32(data + 12);
    cursor.check(count == kNumSections, util::StatusCode::Corrupt,
                 "expected ", size_t{kNumSections},
                 " sections, header claims ", count);
    const uint64_t file_bytes = readU64(data + 16);
    cursor.check(file_bytes == size, util::StatusCode::Truncated,
                 "header claims ", file_bytes, " bytes, file holds ", size);
    const uint32_t table_crc = readU32(data + 24);
    cursor.check(util::crc32(data + kTableOffset,
                             kNumSections * kEntryBytes) == table_crc,
                 util::StatusCode::ChecksumMismatch,
                 "section table checksum mismatch");

    SectionTable table;
    uint64_t expected_offset = kPageBytes;
    for (size_t i = 0; i < kNumSections; ++i) {
        cursor.enterSection(kSections[i].tag);
        const uint8_t* entry = data + kTableOffset + i * kEntryBytes;
        char tag[kTagBytes] = {};
        std::strncpy(tag, kSections[i].tag, kTagBytes - 1);
        cursor.check(std::memcmp(entry, tag, kTagBytes) == 0,
                     util::StatusCode::Corrupt, "section ", i,
                     " is not the expected '", kSections[i].tag, "' entry");
        SectionView& view = table[i];
        view.offset = readU64(entry + kTagBytes);
        view.size = readU64(entry + kTagBytes + 8);
        view.crc = readU32(entry + kTagBytes + 16);
        const uint32_t elem = readU32(entry + kTagBytes + 20);
        cursor.check(elem == kSections[i].elemSize, util::StatusCode::Corrupt,
                     "element size ", elem, ", expected ",
                     kSections[i].elemSize);
        // Canonical placement: rejects overlapping, reordered, or
        // misaligned sections in one comparison.
        cursor.check(view.offset == expected_offset,
                     util::StatusCode::Corrupt, "payload at offset ",
                     view.offset, ", canonical layout puts it at ",
                     expected_offset);
        cursor.check(view.size <= size - view.offset,
                     util::StatusCode::Truncated, "payload of ", view.size,
                     " bytes runs past end of file");
        cursor.check(view.size % kSections[i].elemSize == 0,
                     util::StatusCode::Corrupt, "payload of ", view.size,
                     " bytes is not a multiple of the element size");
        expected_offset = alignPage(view.offset + view.size);
    }
    cursor.enterSection("header");
    cursor.check(expected_offset == size, util::StatusCode::Truncated,
                 "sections cover ", expected_offset, " bytes, file holds ",
                 size);
    return table;
}

[[noreturn]] void
failSection(std::string_view file, size_t section, uint64_t offset,
            util::StatusCode code, std::string message)
{
    util::Status status;
    status.code = code;
    status.message = std::move(message);
    status.file = std::string(file);
    status.section = kSections[section].tag;
    status.offset = offset;
    util::throwStatus(std::move(status));
}

void
checkSectionCrc(const uint8_t* data, std::string_view file,
                const SectionTable& table, size_t section)
{
    const SectionView& view = table[section];
    if (spanCrc(data + view.offset, view.size) != view.crc) {
        failSection(file, section, view.offset,
                    util::StatusCode::ChecksumMismatch,
                    "section checksum mismatch");
    }
}

/** Typed pointer + element count of one mapped section. */
template <typename T>
std::pair<const T*, size_t>
sectionSpan(const uint8_t* data, const SectionTable& table, size_t section)
{
    // Page alignment (>= alignof(T) for every stored type) was enforced
    // by parseHeaderV3, so the reinterpret_cast is well-formed.
    return {reinterpret_cast<const T*>(data + table[section].offset),
            table[section].size / sizeof(T)};
}

// --- v3 paths section --------------------------------------------------
//
// Unlike the v2 stream (delta varints per step), the v3 paths section
// keeps the step lists flat so binding costs a memcpy, not millions of
// varint decodes — the section is the dominant non-mapped payload and a
// varint walk alone was ~80% of the map time on the A-human analog:
//
//     varint num_paths
//     per path: varint name length, name bytes, varint num_steps
//     zero padding to an 8-byte boundary (relative to section start)
//     uint64 packed handles, all paths back to back, path order
//
// The section starts page-aligned, so the padded step array is 8-aligned
// inside the mapping and can be read as uint64s in place.

static_assert(sizeof(graph::Handle) == sizeof(uint64_t)
                  && std::is_trivially_copyable_v<graph::Handle>,
              "v3 path steps are raw packed-handle words");

std::vector<uint8_t>
encodePathsV3(const graph::VariationGraph& graph)
{
    util::ByteWriter header;
    header.putVarint(graph.numPaths());
    uint64_t total_steps = 0;
    for (const graph::PathEntry& path : graph.paths()) {
        header.putString(path.name);
        header.putVarint(path.steps.size());
        total_steps += path.steps.size();
    }
    std::vector<uint8_t> out = header.takeBytes();
    out.resize((out.size() + 7) & ~static_cast<size_t>(7), 0);
    const size_t steps_off = out.size();
    out.resize(steps_off + total_steps * sizeof(uint64_t), 0);
    uint8_t* p = out.data() + steps_off;
    for (const graph::PathEntry& path : graph.paths()) {
        for (graph::Handle step : path.steps) {
            writeU64(p, step.packed());
            p += sizeof(uint64_t);
        }
    }
    return out;
}

void
decodePathsV3(const uint8_t* data, const SectionTable& table,
              std::string_view fname, graph::VariationGraph& graph)
{
    const SectionView& view = table[kPaths];
    util::ByteCursor cursor(data + view.offset, view.size, fname);
    cursor.enterSection("paths");
    const uint64_t num_paths = cursor.getVarint();
    cursor.check(num_paths <= view.size, util::StatusCode::Corrupt,
                 "path count exceeds section size");
    std::vector<std::string> names;
    std::vector<uint64_t> counts;
    names.reserve(num_paths);
    counts.reserve(num_paths);
    const uint64_t max_steps = view.size / sizeof(uint64_t);
    uint64_t total_steps = 0;
    for (uint64_t i = 0; i < num_paths; ++i) {
        names.push_back(cursor.getString());
        counts.push_back(cursor.getVarint());
        total_steps += counts.back();
        cursor.check(counts.back() <= max_steps && total_steps <= max_steps,
                     util::StatusCode::Corrupt,
                     "path step count exceeds section size");
    }
    const uint64_t header_bytes = view.size - cursor.remaining();
    const uint64_t steps_off =
        (header_bytes + 7) & ~static_cast<uint64_t>(7);
    cursor.check(steps_off + total_steps * sizeof(uint64_t) == view.size,
                 util::StatusCode::Corrupt,
                 "path step array does not fill the section");
    const auto* steps = reinterpret_cast<const graph::Handle*>(
        data + view.offset + steps_off);
    size_t at = 0;
    for (uint64_t i = 0; i < num_paths; ++i) {
        std::vector<graph::Handle> walk(steps + at,
                                        steps + at + counts[i]);
        at += counts[i];
        graph.addPathUnchecked(std::move(names[i]), std::move(walk));
    }
}

/**
 * Report the logical arena sizes from the *bound* structures rather than
 * the container table, so parsed and mapped loads of the same pangenome
 * produce identical section listings.
 */
void
fillArenaSections(IndexedPangenome& out)
{
    const graph::SequenceStore& store = out.graph.sequenceStore();
    const gbwt::Gbwt::ArenaRefs refs = out.gbwt.arenaRefs();
    out.info.sections = {
        {"seq.words", store.words().bytes()},
        {"seq.offsets", store.offsets().bytes()},
        {"gbwt.arena", refs.arenaSize},
        {"gbwt.offsets", refs.numRecordOffsets * sizeof(uint64_t)},
        {"gbwt.docarena", refs.docArenaSize},
        {"gbwt.docoffs", refs.numDocOffsets * sizeof(uint64_t)},
        {"min.keys", out.minimizers.keys().bytes()},
        {"min.keyoffs", out.minimizers.keyOffsets().bytes()},
        {"min.pos", out.minimizers.positions().bytes()},
        {"min.table", out.minimizers.buckets().bytes()},
        {"dist.min", out.distance.minFromSource().bytes()},
        {"dist.max", out.distance.maxFromSource().bytes()},
    };
}

/** Bind a fully validated v3 mapping into a query-ready pangenome. */
IndexedPangenome
mapPangenome(std::shared_ptr<mem::MappedFile> file,
             const LoadOptions& options)
{
    const uint8_t* data = file->data();
    const size_t size = file->size();
    const std::string_view fname = file->path();
    const SectionTable table = parseHeaderV3(data, size, fname);

    // The small metadata sections are always verified (they are decoded,
    // not mapped, so a flipped bit would otherwise surface as an obscure
    // varint error); arena verification is opt-in.
    checkSectionCrc(data, fname, table, kMeta);
    checkSectionCrc(data, fname, table, kEdges);
    checkSectionCrc(data, fname, table, kPaths);
    if (options.verifySectionCrcs) {
        for (size_t i = 0; i < kNumSections; ++i) {
            checkSectionCrc(data, fname, table, i);
        }
    }

    util::ByteCursor meta(data + table[kMeta].offset, table[kMeta].size,
                          fname);
    meta.enterSection("meta");
    const uint64_t num_nodes = meta.getVarint();
    const uint64_t sanitized_bases = meta.getVarint();
    const uint64_t num_paths = meta.getVarint();
    const uint64_t total_visits = meta.getVarint();
    index::MinimizerParams params;
    params.k = static_cast<int>(meta.getVarint());
    params.w = static_cast<int>(meta.getVarint());
    params.maxOccurrences = meta.getVarint();
    meta.check(meta.atEnd(), util::StatusCode::Corrupt,
               "trailing bytes after v3 meta");

    IndexedPangenome out;

    // Sequence arenas bind first; edges and paths decode against the
    // bound node set (addPathUnchecked still bounds-checks node ids).
    auto [words, num_words] = sectionSpan<uint64_t>(data, table, kSeqWords);
    auto [offsets, num_offsets] =
        sectionSpan<uint64_t>(data, table, kSeqOffsets);
    out.graph.bindMappedSequences(file, words, num_words, offsets,
                                  num_offsets, num_nodes, sanitized_bases);

    util::ByteCursor edges(data + table[kEdges].offset, table[kEdges].size,
                           fname);
    edges.enterSection("edges");
    detail::decodeEdgesSection(edges, out.graph);
    edges.check(edges.atEnd(), util::StatusCode::Corrupt,
                "trailing bytes after v3 edges");

    decodePathsV3(data, table, fname, out.graph);

    gbwt::Gbwt::ArenaRefs refs;
    std::tie(refs.arena, refs.arenaSize) =
        sectionSpan<uint8_t>(data, table, kGbwtArena);
    std::tie(refs.recordOffsets, refs.numRecordOffsets) =
        sectionSpan<uint64_t>(data, table, kGbwtOffsets);
    std::tie(refs.docArena, refs.docArenaSize) =
        sectionSpan<uint8_t>(data, table, kGbwtDocArena);
    std::tie(refs.docOffsets, refs.numDocOffsets) =
        sectionSpan<uint64_t>(data, table, kGbwtDocOffs);
    out.gbwt.bindMapped(file, refs, num_paths, total_visits);

    auto [keys, num_keys] = sectionSpan<uint64_t>(data, table, kMinKeys);
    auto [key_offsets, num_key_offsets] =
        sectionSpan<uint32_t>(data, table, kMinKeyOffs);
    auto [positions, num_positions] =
        sectionSpan<graph::Position>(data, table, kMinPos);
    auto [buckets, num_buckets] =
        sectionSpan<index::MinimizerBucket>(data, table, kMinTable);
    out.minimizers.bindMapped(file, params, keys, num_keys, key_offsets,
                              num_key_offsets, positions, num_positions,
                              buckets, num_buckets);
    // bindMapped validated the tables against each other; the positions
    // must additionally land inside *this graph*, or a corrupt container
    // would crash the first lookup that dereferences one.
    for (size_t i = 0; i < num_positions; ++i) {
        const graph::Position& pos = positions[i];
        const graph::NodeId id = pos.handle.id();
        if (id < 1 || id > num_nodes || pos.offset >= out.graph.length(id)) {
            failSection(fname, kMinPos,
                        table[kMinPos].offset +
                            i * sizeof(graph::Position),
                        util::StatusCode::Corrupt,
                        "minimizer position outside the graph");
        }
    }

    auto [dist_min, num_min] = sectionSpan<int64_t>(data, table, kDistMin);
    auto [dist_max, num_max] = sectionSpan<int64_t>(data, table, kDistMax);
    if (num_min != num_nodes || num_max != num_nodes) {
        failSection(fname, kDistMin, table[kDistMin].offset,
                    util::StatusCode::Corrupt,
                    util::cat("distance arrays hold ", num_min, "/", num_max,
                              " entries for ", num_nodes, " nodes"));
    }
    out.distance.bindMapped(file, dist_min, dist_max, num_nodes);

    if (options.advice != mem::Advice::Normal) {
        file->advise(options.advice);
    }
    if (options.prefetchFirstQuery) {
        out.minimizers.armPrefetch();
    }

    out.info.mode = LoadMode::Mapped;
    out.info.fileBytes = size;
    out.info.mappedBytes = size;
    out.info.heapBytes = 0;
    fillArenaSections(out);
    out.mapping = std::move(file);
    out.refreshResidency();
    return out;
}

} // namespace

const char*
loadModeName(LoadMode mode)
{
    return mode == LoadMode::Mapped ? "mmap" : "parsed";
}

void
IndexedPangenome::refreshResidency()
{
    if (mapping) {
        info.residentBytes = mapping->residentBytes();
    }
}

std::vector<uint8_t>
encodeMgz3(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
           const index::MinimizerIndex& minimizers,
           const index::DistanceIndex& distance)
{
    const graph::SequenceStore& store = graph.sequenceStore();
    const gbwt::Gbwt::ArenaRefs refs = gbwt.arenaRefs();
    const index::MinimizerParams& params = minimizers.params();
    MG_CHECK(distance.numNodes() == graph.numNodes(),
             "distance index was built for a different graph");

    util::ByteWriter meta_writer;
    meta_writer.putVarint(graph.numNodes());
    meta_writer.putVarint(graph.sanitizedBases());
    meta_writer.putVarint(gbwt.numPaths());
    meta_writer.putVarint(gbwt.totalVisits());
    meta_writer.putVarint(static_cast<uint64_t>(params.k));
    meta_writer.putVarint(static_cast<uint64_t>(params.w));
    meta_writer.putVarint(params.maxOccurrences);
    const std::vector<uint8_t> meta = meta_writer.takeBytes();

    util::ByteWriter edges_writer;
    detail::encodeEdgesSection(edges_writer, graph);
    const std::vector<uint8_t> edges = edges_writer.takeBytes();

    const std::vector<uint8_t> paths = encodePathsV3(graph);

    // graph::Position carries 4 bytes of struct padding; serialize the
    // records field-wise with the padding zeroed so the container is a
    // pure function of its logical content (byte-determinism guarantee).
    std::vector<uint8_t> pos_bytes(minimizers.positions().size() *
                                   sizeof(graph::Position));
    uint8_t* pos_out = pos_bytes.data();
    for (const graph::Position& pos : minimizers.positions()) {
        writeU64(pos_out, pos.handle.packed());
        writeU32(pos_out + 8, pos.offset);
        writeU32(pos_out + 12, 0);
        pos_out += sizeof(graph::Position);
    }

    struct Span
    {
        const void* data;
        size_t size;
    };
    const Span spans[kNumSections] = {
        {meta.data(), meta.size()},
        {edges.data(), edges.size()},
        {paths.data(), paths.size()},
        {store.words().data(), store.words().bytes()},
        {store.offsets().data(), store.offsets().bytes()},
        {refs.arena, refs.arenaSize},
        {refs.recordOffsets, refs.numRecordOffsets * sizeof(uint64_t)},
        {refs.docArena, refs.docArenaSize},
        {refs.docOffsets, refs.numDocOffsets * sizeof(uint64_t)},
        {minimizers.keys().data(), minimizers.keys().bytes()},
        {minimizers.keyOffsets().data(), minimizers.keyOffsets().bytes()},
        {pos_bytes.data(), pos_bytes.size()},
        {minimizers.buckets().data(), minimizers.buckets().bytes()},
        {distance.minFromSource().data(), distance.minFromSource().bytes()},
        {distance.maxFromSource().data(), distance.maxFromSource().bytes()},
    };

    uint64_t offsets[kNumSections];
    uint64_t cursor = kPageBytes;
    for (size_t i = 0; i < kNumSections; ++i) {
        offsets[i] = cursor;
        cursor = alignPage(cursor + spans[i].size);
    }
    const uint64_t file_bytes = cursor;

    std::vector<uint8_t> out(file_bytes, 0);
    std::memcpy(out.data(), kMagicV3, sizeof(kMagicV3));
    writeU32(out.data() + 4, kFormatVersionV3);
    writeU32(out.data() + 8, kPageBytes);
    writeU32(out.data() + 12, kNumSections);
    writeU64(out.data() + 16, file_bytes);
    for (size_t i = 0; i < kNumSections; ++i) {
        uint8_t* entry = out.data() + kTableOffset + i * kEntryBytes;
        std::strncpy(reinterpret_cast<char*>(entry), kSections[i].tag,
                     kTagBytes - 1);
        writeU64(entry + kTagBytes, offsets[i]);
        writeU64(entry + kTagBytes + 8, spans[i].size);
        writeU32(entry + kTagBytes + 16, spanCrc(spans[i].data,
                                                 spans[i].size));
        writeU32(entry + kTagBytes + 20, kSections[i].elemSize);
        if (spans[i].size != 0) {
            std::memcpy(out.data() + offsets[i], spans[i].data,
                        spans[i].size);
        }
    }
    writeU32(out.data() + 24,
             util::crc32(out.data() + kTableOffset,
                         kNumSections * kEntryBytes));
    return out;
}

void
saveMgz3(const std::string& path, const graph::VariationGraph& graph,
         const gbwt::Gbwt& gbwt, const index::MinimizerIndex& minimizers,
         const index::DistanceIndex& distance)
{
    writeFileBytes(path, encodeMgz3(graph, gbwt, minimizers, distance));
}

MgzInfo
inspectMgz3(const uint8_t* data, size_t size, std::string_view file)
{
    const SectionTable table = parseHeaderV3(data, size, file);
    MgzInfo info;
    info.version = MgzVersion::V3;
    info.fileBytes = size;
    info.sections.reserve(kNumSections);
    for (size_t i = 0; i < kNumSections; ++i) {
        MgzSectionInfo section;
        section.name = kSections[i].tag;
        section.offset = table[i].offset;
        section.size = table[i].size;
        section.crcStored = table[i].crc;
        section.crcComputed = spanCrc(data + table[i].offset, table[i].size);
        section.crcOk = section.crcComputed == section.crcStored;
        info.sections.push_back(section);
    }
    return info;
}

util::Status
validatePangenomeFile(const std::string& path, bool deep)
{
    try {
        std::shared_ptr<mem::MappedFile> file = mem::MappedFile::open(path);
        const uint8_t* data = file->data();
        const size_t size = file->size();
        if (size >= sizeof(kMagicV3) &&
            std::memcmp(data, kMagicV3, sizeof(kMagicV3)) == 0) {
            // Structure first (throws with provenance), then CRCs: the
            // always-decoded metadata sections unconditionally, the big
            // arenas only in deep mode.
            const SectionTable table = parseHeaderV3(data, size, path);
            if (deep) {
                for (size_t i = 0; i < kNumSections; ++i) {
                    checkSectionCrc(data, path, table, i);
                }
            } else {
                checkSectionCrc(data, path, table, kMeta);
                checkSectionCrc(data, path, table, kEdges);
                checkSectionCrc(data, path, table, kPaths);
            }
            return {};
        }
        // v1/v2 stream: structural walk + per-section CRCs (v1 has no
        // checksums; inspectMgz reports its structure only).
        std::vector<uint8_t> bytes(data, data + size);
        file.reset();
        const MgzInfo info = inspectMgz(bytes, path);
        for (const MgzSectionInfo& section : info.sections) {
            if (!section.crcOk) {
                util::Status status;
                status.code = util::StatusCode::ChecksumMismatch;
                status.message = "section checksum mismatch";
                status.file = path;
                status.section = section.name;
                status.offset = section.offset;
                return status;
            }
        }
        return {};
    } catch (const util::StatusError& err) {
        return err.status();
    } catch (const util::Error& err) {
        util::Status status;
        status.code = util::StatusCode::IoError;
        status.message = err.what();
        status.file = path;
        return status;
    }
}

IndexedPangenome
loadPangenome(const std::string& path, const LoadOptions& options)
{
    util::WallTimer timer;
    std::shared_ptr<mem::MappedFile> file = mem::MappedFile::open(path);
    if (file->size() >= sizeof(kMagicV3) &&
        std::memcmp(file->data(), kMagicV3, sizeof(kMagicV3)) == 0) {
        IndexedPangenome out = mapPangenome(std::move(file), options);
        out.info.loadSeconds = timer.seconds();
        return out;
    }

    // v1/v2: copy the bytes out of the (temporary) mapping, drop it, and
    // take the classic parse-then-build path.
    std::vector<uint8_t> bytes(file->data(), file->data() + file->size());
    const uint64_t disk_bytes = file->size();
    file.reset();
    Pangenome parsed = decodeMgz(bytes, path);
    bytes.clear();
    bytes.shrink_to_fit();

    IndexedPangenome out;
    out.graph = std::move(parsed.graph);
    out.gbwt = std::move(parsed.gbwt);
    index::MinimizerParams params = options.minimizer;
    params.buildThreads = options.buildThreads;
    out.minimizers = index::MinimizerIndex(out.graph, params);
    out.distance = index::DistanceIndex(out.graph);

    out.info.mode = LoadMode::Parsed;
    out.info.fileBytes = disk_bytes;
    const graph::SequenceStore& store = out.graph.sequenceStore();
    out.info.heapBytes = store.words().bytes() + store.offsets().bytes() +
                         out.gbwt.footprintBytes() +
                         out.minimizers.footprintBytes() +
                         out.distance.footprintBytes();
    fillArenaSections(out);
    out.info.loadSeconds = timer.seconds();
    return out;
}

} // namespace mg::io
