/**
 * @file
 * The reads+seeds binary format — miniGiraffe's primary input.  The paper's
 * proxy consumes a "sequence-seeds.bin" file holding the short reads and
 * the seeds Giraffe's preprocessing found for them, captured right before
 * the seed-and-extend region.  Our parent emulator produces the same
 * capture; the proxy loads it and runs only the critical functions.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "map/read.h"
#include "map/seed.h"

namespace mg::io {

/** One read plus its precomputed seeds. */
struct ReadWithSeeds
{
    map::Read read;
    map::SeedVector seeds;
};

/** The proxy's input: the captured preprocessing output. */
struct SeedCapture
{
    std::vector<ReadWithSeeds> entries;
    bool pairedEnd = false;
};

/** Serialize a capture to bytes. */
std::vector<uint8_t> encodeSeedCapture(const SeedCapture& capture);

/** Parse capture bytes; throws mg::util::StatusError on malformed input
 *  (with `file`, when given, as provenance). */
SeedCapture decodeSeedCapture(const std::vector<uint8_t>& bytes,
                              std::string_view file = {});

/** Convenience file wrappers. */
void saveSeedCapture(const std::string& path, const SeedCapture& capture);
SeedCapture loadSeedCapture(const std::string& path);

} // namespace mg::io
