/**
 * @file
 * GAF (Graph Alignment Format) output — the alignment interchange format
 * of the vg ecosystem (rGFA/GAF spec), produced by `vg giraffe -o gaf`.
 * One line per alignment with the standard 12 mandatory columns:
 *
 *   name  qlen  qstart  qend  strand  path  plen  pstart  pend
 *   matches  alignlen  mapq
 *
 * The path column uses the >id/<id orientation syntax.  Typed tags carry
 * the alignment score (AS:i) and proper-pair flag (pp:A) when present.
 */
#pragma once

#include <string>
#include <vector>

#include "giraffe/alignment.h"
#include "graph/variation_graph.h"
#include "map/read.h"

namespace mg::io {

/** Render one alignment as a GAF line (no trailing newline). */
std::string formatGafLine(const giraffe::Alignment& alignment,
                          const map::Read& read,
                          const graph::VariationGraph& graph);

/** Render a whole run: one line per mapped read (unmapped reads get a
 *  placeholder line with '*' path, per convention). */
std::string formatGaf(const std::vector<giraffe::Alignment>& alignments,
                      const map::ReadSet& reads,
                      const graph::VariationGraph& graph);

/** Convenience file wrapper. */
void saveGaf(const std::string& path,
             const std::vector<giraffe::Alignment>& alignments,
             const map::ReadSet& reads,
             const graph::VariationGraph& graph);

} // namespace mg::io
