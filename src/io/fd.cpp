#include "io/fd.h"

#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/status.h"

namespace mg::io {

namespace {

[[noreturn]] void
netFail(const std::string& path, std::string message)
{
    util::Status status;
    status.code = util::StatusCode::IoError;
    status.message = std::move(message);
    status.message += ": ";
    status.message += std::strerror(errno);
    status.file = path;
    util::throwStatus(std::move(status));
}

/** Fill a sockaddr_un; Unix socket paths have a hard kernel limit. */
sockaddr_un
unixAddress(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        util::Status status;
        status.code = util::StatusCode::InvalidArgument;
        status.message = "unix socket path longer than sun_path";
        status.file = path;
        util::throwStatus(std::move(status));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

ssize_t
readFull(int fd, void* buf, size_t n) noexcept
{
    uint8_t* dst = static_cast<uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
        ssize_t got = ::read(fd, dst + done, n - done);
        if (got < 0) {
            if (errno == EINTR) {
                continue;
            }
            return -1;
        }
        if (got == 0) {
            break; // EOF
        }
        done += static_cast<size_t>(got);
    }
    return static_cast<ssize_t>(done);
}

ssize_t
writeFull(int fd, const void* buf, size_t n) noexcept
{
    const uint8_t* src = static_cast<const uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
        ssize_t put = ::write(fd, src + done, n - done);
        if (put < 0) {
            if (errno == EINTR) {
                continue;
            }
            return -1;
        }
        done += static_cast<size_t>(put);
    }
    return static_cast<ssize_t>(n);
}

int
listenUnix(const std::string& path, int backlog)
{
    sockaddr_un addr = unixAddress(path);
    // The daemon owns its endpoint: a stale socket file from a previous
    // (crashed) instance must not block startup.
    ::unlink(path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        netFail(path, "cannot create unix socket");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        netFail(path, "cannot bind unix socket");
    }
    if (::listen(fd, backlog) != 0) {
        ::close(fd);
        netFail(path, "cannot listen on unix socket");
    }
    return fd;
}

int
connectUnix(const std::string& path)
{
    sockaddr_un addr = unixAddress(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        netFail(path, "cannot create unix socket");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        netFail(path, "cannot connect to unix socket");
    }
    return fd;
}

void
ignoreSigpipe() noexcept
{
    ::signal(SIGPIPE, SIG_IGN);
}

} // namespace mg::io
