/**
 * @file
 * Extension output files.  miniGiraffe's output is "the raw mapping
 * results, i.e., the offsets and scores of each match"; the paper's
 * functional validation (Section VI-a) exports the extensions from both
 * proxy and parent and checks (1) every expected extension is present and
 * (2) no extra extensions appear.  This module provides the dump format
 * and that exact two-way comparison.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "map/extension.h"

namespace mg::io {

/** All extensions of one read, keyed by the read's name. */
struct ReadExtensions
{
    std::string readName;
    std::vector<map::GaplessExtension> extensions;
};

/** Serialize per-read extensions. */
std::vector<uint8_t> encodeExtensions(
    const std::vector<ReadExtensions>& all);

/** Parse extension bytes; throws mg::util::StatusError on malformed
 *  input (with `file`, when given, as provenance). */
std::vector<ReadExtensions> decodeExtensions(
    const std::vector<uint8_t>& bytes, std::string_view file = {});

/** Convenience file wrappers. */
void saveExtensions(const std::string& path,
                    const std::vector<ReadExtensions>& all);
std::vector<ReadExtensions> loadExtensions(const std::string& path);

/** Result of the two-way functional validation. */
struct ValidationReport
{
    size_t readsCompared = 0;
    size_t extensionsExpected = 0;
    size_t extensionsFound = 0;
    /** Expected extensions missing from the candidate output. */
    size_t missing = 0;
    /** Candidate extensions not present in the expected output. */
    size_t unexpected = 0;

    bool perfectMatch() const { return missing == 0 && unexpected == 0; }
};

/**
 * Compare candidate output against expected output, both keyed by read
 * name (order-insensitive within a read).
 */
ValidationReport validateExtensions(
    const std::vector<ReadExtensions>& expected,
    const std::vector<ReadExtensions>& candidate);

} // namespace mg::io
