/**
 * @file
 * Internal MGZ section codecs shared between the v1/v2 parser (mgz.cpp)
 * and the v3 container (mgz3.cpp).  The edge and path payloads stay
 * varint-coded in v3 — they are small, and the adjacency lists / path
 * vectors are rebuilt on the heap at load time anyway (a documented v3
 * non-goal; see DESIGN.md §3j).
 */
#pragma once

#include "graph/variation_graph.h"
#include "util/cursor.h"
#include "util/varint.h"

namespace mg::io::detail {

/** Delta-coded forward edge list (one entry per bidirected edge). */
void encodeEdgesSection(util::ByteWriter& writer,
                        const graph::VariationGraph& graph);

/** Inverse of encodeEdgesSection; adds edges through graph.addEdge(). */
void decodeEdgesSection(util::ByteCursor& cursor,
                        graph::VariationGraph& graph);

/** Named haplotype paths, zigzag-delta-coded steps. */
void encodePathsSection(util::ByteWriter& writer,
                        const graph::VariationGraph& graph);

/**
 * Inverse of encodePathsSection.  `checked` selects addPath (per-step
 * edge validation, the v1/v2 parse path) vs addPathUnchecked (the v3
 * load path, where section CRCs vouch for consistency and the
 * O(steps x degree) edge scan would dominate an otherwise instant map).
 */
void decodePathsSection(util::ByteCursor& cursor,
                        graph::VariationGraph& graph, bool checked);

} // namespace mg::io::detail
