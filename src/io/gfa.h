/**
 * @file
 * GFA 1.0 interchange for variation graphs.  GFA (Graphical Fragment
 * Assembly) is the lingua franca of the pangenome ecosystem — vg, odgi,
 * and Bandage all read it — so graphs built or generated here can be
 * inspected with standard tooling, and small external graphs can be
 * imported.  Supported records: H (header), S (segment), L (link, with
 * 0M/'*' overlaps), and P (path, with the trailing overlap column
 * ignored).
 */
#pragma once

#include <string>
#include <string_view>

#include "graph/variation_graph.h"

namespace mg::io {

/** Render a variation graph (and its haplotype paths) as GFA 1.0 text. */
std::string formatGfa(const graph::VariationGraph& graph);

/**
 * Parse GFA 1.0 text into a variation graph.  Segment names must be
 * positive integers (vg convention); ids are compacted to dense 1-based
 * ids preserving numeric order.  Throws mg::util::StatusError on
 * malformed input or unsupported features (with `file`, when given, as
 * provenance and the 1-based line number as the offset).
 */
graph::VariationGraph parseGfa(const std::string& text,
                               std::string_view file = {});

/** Convenience file wrappers. */
void saveGfa(const std::string& path, const graph::VariationGraph& graph);
graph::VariationGraph loadGfa(const std::string& path);

} // namespace mg::io
