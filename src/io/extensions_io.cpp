#include "io/extensions_io.h"

#include <algorithm>
#include <map>
#include <set>

#include "fault/fault.h"
#include "io/file.h"
#include "util/common.h"
#include "util/cursor.h"
#include "util/varint.h"

namespace mg::io {

namespace {

constexpr char kMagic[4] = { 'M', 'G', 'E', '1' };

void
encodeExtension(util::ByteWriter& writer, const map::GaplessExtension& ext)
{
    writer.putVarint(ext.path.size());
    int64_t prev = 0;
    for (graph::Handle step : ext.path) {
        writer.putSignedVarint(static_cast<int64_t>(step.packed()) - prev);
        prev = static_cast<int64_t>(step.packed());
    }
    writer.putVarint(ext.startOffset);
    writer.putVarint(ext.readBegin);
    writer.putVarint(ext.readEnd);
    writer.putVarint(ext.mismatchOffsets.size());
    uint32_t prev_mm = 0;
    for (uint32_t mm : ext.mismatchOffsets) {
        writer.putVarint(mm - prev_mm);
        prev_mm = mm;
    }
    writer.putSignedVarint(ext.score);
    writer.putByte(static_cast<uint8_t>((ext.onReverseRead ? 1 : 0) |
                                        (ext.fullLength ? 2 : 0)));
}

map::GaplessExtension
decodeExtension(util::ByteCursor& cursor)
{
    map::GaplessExtension ext;
    uint64_t path_len = cursor.getVarint();
    cursor.check(path_len <= cursor.remaining(), util::StatusCode::Corrupt,
                 "extension path length exceeds remaining payload");
    ext.path.reserve(path_len);
    int64_t packed = 0;
    for (uint64_t i = 0; i < path_len; ++i) {
        packed += cursor.getSignedVarint();
        ext.path.push_back(
            graph::Handle::fromPacked(static_cast<uint64_t>(packed)));
    }
    ext.startOffset = static_cast<uint32_t>(cursor.getVarint());
    ext.readBegin = static_cast<uint32_t>(cursor.getVarint());
    ext.readEnd = static_cast<uint32_t>(cursor.getVarint());
    uint64_t num_mm = cursor.getVarint();
    cursor.check(num_mm <= cursor.remaining(), util::StatusCode::Corrupt,
                 "mismatch count exceeds remaining payload");
    uint32_t mm = 0;
    for (uint64_t i = 0; i < num_mm; ++i) {
        mm += static_cast<uint32_t>(cursor.getVarint());
        ext.mismatchOffsets.push_back(mm);
    }
    ext.score = static_cast<int32_t>(cursor.getSignedVarint());
    uint8_t flags = cursor.getByte();
    ext.onReverseRead = flags & 1;
    ext.fullLength = flags & 2;
    return ext;
}

} // namespace

std::vector<uint8_t>
encodeExtensions(const std::vector<ReadExtensions>& all)
{
    util::ByteWriter writer;
    writer.putBytes(kMagic, sizeof(kMagic));
    writer.putVarint(all.size());
    for (const ReadExtensions& entry : all) {
        writer.putString(entry.readName);
        writer.putVarint(entry.extensions.size());
        for (const map::GaplessExtension& ext : entry.extensions) {
            encodeExtension(writer, ext);
        }
    }
    return writer.takeBytes();
}

std::vector<ReadExtensions>
decodeExtensions(const std::vector<uint8_t>& bytes, std::string_view file)
{
    // Fault point: damaged extension dump reaching the decoder.
    std::optional<std::vector<uint8_t>> injected =
        fault::corrupted("io.ext.decode", bytes);
    const std::vector<uint8_t>& input = injected ? *injected : bytes;

    util::ByteCursor cursor(input, file);
    cursor.enterSection("magic");
    char magic[4];
    cursor.getBytes(magic, sizeof(magic));
    cursor.check(std::equal(magic, magic + 4, kMagic),
                 util::StatusCode::Corrupt,
                 "not an extensions file (bad magic)");
    cursor.enterSection("reads");
    std::vector<ReadExtensions> all;
    uint64_t num_reads = cursor.getVarint();
    cursor.check(num_reads <= cursor.remaining(),
                 util::StatusCode::Corrupt,
                 "read count exceeds remaining payload");
    all.reserve(num_reads);
    for (uint64_t i = 0; i < num_reads; ++i) {
        ReadExtensions entry;
        entry.readName = cursor.getString();
        uint64_t count = cursor.getVarint();
        cursor.check(count <= cursor.remaining(),
                     util::StatusCode::Corrupt,
                     "extension count exceeds remaining payload");
        entry.extensions.reserve(count);
        for (uint64_t e = 0; e < count; ++e) {
            entry.extensions.push_back(decodeExtension(cursor));
        }
        all.push_back(std::move(entry));
    }
    cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                 "trailing bytes after extensions");
    return all;
}

void
saveExtensions(const std::string& path,
               const std::vector<ReadExtensions>& all)
{
    writeFileBytes(path, encodeExtensions(all));
}

std::vector<ReadExtensions>
loadExtensions(const std::string& path)
{
    return decodeExtensions(readFileBytes(path), path);
}

ValidationReport
validateExtensions(const std::vector<ReadExtensions>& expected,
                   const std::vector<ReadExtensions>& candidate)
{
    // Multiplicity maps of canonical extension strings per read name.
    using Bucket = std::map<std::string, size_t>;
    auto index = [](const std::vector<ReadExtensions>& all) {
        std::map<std::string, Bucket> by_read;
        for (const ReadExtensions& entry : all) {
            Bucket& bucket = by_read[entry.readName];
            for (const map::GaplessExtension& ext : entry.extensions) {
                ++bucket[ext.str()];
            }
        }
        return by_read;
    };
    auto exp = index(expected);
    auto cand = index(candidate);

    ValidationReport report;
    std::set<std::string> read_names;
    for (const auto& [name, bucket] : exp) {
        read_names.insert(name);
        for (const auto& [ext, count] : bucket) {
            (void)ext;
            report.extensionsExpected += count;
        }
    }
    for (const auto& [name, bucket] : cand) {
        read_names.insert(name);
        for (const auto& [ext, count] : bucket) {
            (void)ext;
            report.extensionsFound += count;
        }
    }
    report.readsCompared = read_names.size();

    for (const std::string& name : read_names) {
        const Bucket& e = exp[name];
        const Bucket& c = cand[name];
        for (const auto& [ext, e_count] : e) {
            auto it = c.find(ext);
            size_t c_count = it == c.end() ? 0 : it->second;
            report.missing += e_count > c_count ? e_count - c_count : 0;
        }
        for (const auto& [ext, c_count] : c) {
            auto it = e.find(ext);
            size_t e_count = it == e.end() ? 0 : it->second;
            report.unexpected += c_count > e_count ? c_count - e_count : 0;
        }
    }
    return report;
}

} // namespace mg::io
