/**
 * @file
 * Whole-file byte helpers shared by the binary container formats.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::io {

/** Read an entire file into memory; throws mg::util::Error on failure. */
std::vector<uint8_t> readFileBytes(const std::string& path);

/** Write bytes to a file, replacing it; throws on failure. */
void writeFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes);

/** Read an entire text file. */
std::string readFileText(const std::string& path);

/** Write a text file, replacing it. */
void writeFileText(const std::string& path, const std::string& text);

} // namespace mg::io
