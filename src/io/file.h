/**
 * @file
 * Whole-file byte helpers shared by the binary container formats.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::io {

/** True iff `path` names an existing file (access(2) check). */
bool fileExists(const std::string& path);

/** Read an entire file into memory; throws mg::util::Error on failure. */
std::vector<uint8_t> readFileBytes(const std::string& path);

/** Write bytes to a file, replacing it; throws on failure. */
void writeFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes);

/**
 * Crash-consistent write: the bytes land at `path` atomically, or `path`
 * keeps its previous content (or stays absent).  Protocol: write to
 * `path + ".tmp"`, fsync the file, rename over `path`, fsync the
 * directory.  A reader therefore never observes a partial file at `path`
 * — assuming the platform's rename-after-fsync atomicity, which the
 * checkpoint loader does NOT rely on alone: every consumer of durable
 * files also verifies a CRC, so even a torn write (fault-injectable via
 * the "io.file.durable" site with kind torn-write) is detected, not
 * trusted.  Fault points: "io.file.durable" before any write (crash /
 * torn-write / throw), "io.file.durable.rename" between the tmp fsync
 * and the rename (a crash there leaves only the tmp file).
 */
void writeFileBytesDurable(const std::string& path,
                           const std::vector<uint8_t>& bytes);

/** Read an entire text file. */
std::string readFileText(const std::string& path);

/** Write a text file, replacing it. */
void writeFileText(const std::string& path, const std::string& text);

} // namespace mg::io
