#include "io/gaf.h"

#include "io/file.h"
#include "util/common.h"

namespace mg::io {

std::string
formatGafLine(const giraffe::Alignment& alignment, const map::Read& read,
              const graph::VariationGraph& graph)
{
    MG_CHECK(alignment.readName == read.name,
             "alignment/read mismatch: ", alignment.readName, " vs ",
             read.name);
    std::string out = read.name;
    out += '\t';
    out += std::to_string(read.sequence.size());
    if (!alignment.mapped) {
        // Unmapped convention: star path, zeroed interval, MAPQ 255.
        out += "\t0\t0\t+\t*\t0\t0\t0\t0\t0\t255";
        // Unmapped-with-reason: a read that produced nothing because its
        // budget ran out is distinguishable from a genuinely unmappable
        // one.
        if (alignment.degraded != resilience::CancelReason::None) {
            out += "\tdg:Z:";
            out += resilience::cancelReasonName(alignment.degraded);
        }
        return out;
    }

    out += '\t' + std::to_string(alignment.readBegin);
    out += '\t' + std::to_string(alignment.readEnd);
    // The GAF strand column is relative to the path as written below; we
    // write the walk in read order, so the strand is '+' and reverse-read
    // placements are expressed by the per-step orientations.
    out += "\t+\t";
    size_t path_length = 0;
    for (graph::Handle step : alignment.path) {
        out += step.isReverse() ? '<' : '>';
        out += std::to_string(step.id());
        path_length += graph.length(step.id());
    }
    size_t span = alignment.readEnd - alignment.readBegin;
    size_t path_end = alignment.startOffset + span;
    out += '\t' + std::to_string(path_length);
    out += '\t' + std::to_string(alignment.startOffset);
    out += '\t' + std::to_string(path_end);
    // Matches: alignment length minus mismatches (gapless alignment).
    out += '\t' + std::to_string(alignment.matches());
    out += '\t' + std::to_string(span);
    out += '\t' + std::to_string(static_cast<int>(alignment.mappingQuality));
    out += "\tAS:i:" + std::to_string(alignment.score);
    // Degraded mappings carry best-so-far extensions; the tag lets
    // downstream consumers treat them as lower-confidence.
    if (alignment.degraded != resilience::CancelReason::None) {
        out += "\tdg:Z:";
        out += resilience::cancelReasonName(alignment.degraded);
    }
    return out;
}

std::string
formatGaf(const std::vector<giraffe::Alignment>& alignments,
          const map::ReadSet& reads, const graph::VariationGraph& graph)
{
    MG_CHECK(alignments.size() == reads.size(),
             "alignments and reads disagree in length");
    std::string out;
    for (size_t i = 0; i < alignments.size(); ++i) {
        out += formatGafLine(alignments[i], reads.reads[i], graph);
        out += '\n';
    }
    return out;
}

void
saveGaf(const std::string& path,
        const std::vector<giraffe::Alignment>& alignments,
        const map::ReadSet& reads, const graph::VariationGraph& graph)
{
    writeFileText(path, formatGaf(alignments, reads, graph));
}

} // namespace mg::io
