#include "io/gfa.h"

#include <algorithm>
#include <map>

#include "io/file.h"
#include "util/common.h"
#include "util/str.h"

namespace mg::io {

namespace {

char
orientationChar(graph::Handle handle)
{
    return handle.isReverse() ? '-' : '+';
}

/** Parse "12+" / "12-" path steps. */
graph::Handle
parseStep(std::string_view token,
          const std::map<uint64_t, graph::NodeId>& id_map)
{
    util::require(token.size() >= 2, "bad GFA path step: ", token);
    char orient = token.back();
    util::require(orient == '+' || orient == '-',
                  "bad GFA step orientation: ", token);
    uint64_t name = 0;
    for (char c : token.substr(0, token.size() - 1)) {
        util::require(c >= '0' && c <= '9', "non-numeric GFA segment: ",
                      token);
        name = name * 10 + static_cast<uint64_t>(c - '0');
    }
    auto it = id_map.find(name);
    util::require(it != id_map.end(), "GFA path references unknown "
                  "segment: ", token);
    return graph::Handle(it->second, orient == '-');
}

} // namespace

std::string
formatGfa(const graph::VariationGraph& graph)
{
    std::string out = "H\tVN:Z:1.0\n";
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        out += "S\t" + std::to_string(id) + "\t";
        out += graph.sequenceView(id);
        out += '\n';
    }
    // Each bidirected edge once, via its canonical representative.
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            graph::Handle from(id, reverse);
            for (graph::Handle to : graph.successors(from)) {
                auto key = std::make_pair(from.packed(), to.packed());
                auto twin = std::make_pair(to.flip().packed(),
                                           from.flip().packed());
                if (key > twin) {
                    continue;
                }
                out += "L\t" + std::to_string(from.id()) + "\t";
                out += orientationChar(from);
                out += "\t" + std::to_string(to.id()) + "\t";
                out += orientationChar(to);
                out += "\t0M\n";
            }
        }
    }
    for (const graph::PathEntry& path : graph.paths()) {
        out += "P\t" + path.name + "\t";
        for (size_t i = 0; i < path.steps.size(); ++i) {
            if (i > 0) {
                out += ',';
            }
            out += std::to_string(path.steps[i].id());
            out += orientationChar(path.steps[i]);
        }
        out += "\t*\n";
    }
    return out;
}

graph::VariationGraph
parseGfa(const std::string& text)
{
    // First pass: collect segments so ids can be compacted in numeric
    // order before edges/paths reference them.
    struct Link
    {
        uint64_t fromName;
        bool fromReverse;
        uint64_t toName;
        bool toReverse;
    };
    std::map<uint64_t, std::string> segments;
    std::vector<Link> links;
    std::vector<std::pair<std::string, std::string>> path_lines;

    for (std::string_view line_view : util::split(text, '\n')) {
        std::string line(util::trim(line_view));
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::vector<std::string> fields = util::split(line, '\t');
        switch (line[0]) {
          case 'H':
            break; // header: nothing to validate strictly
          case 'S': {
            util::require(fields.size() >= 3, "short GFA S line: ", line);
            uint64_t name = 0;
            for (char c : fields[1]) {
                util::require(c >= '0' && c <= '9',
                              "non-numeric GFA segment name: ", fields[1]);
                name = name * 10 + static_cast<uint64_t>(c - '0');
            }
            util::require(!segments.count(name),
                          "duplicate GFA segment: ", fields[1]);
            segments[name] = fields[2];
            break;
          }
          case 'L': {
            util::require(fields.size() >= 6, "short GFA L line: ", line);
            util::require(fields[5] == "0M" || fields[5] == "*",
                          "only 0M/'*' overlaps supported, got: ",
                          fields[5]);
            Link link;
            link.fromName = std::stoull(fields[1]);
            link.fromReverse = fields[2] == "-";
            link.toName = std::stoull(fields[3]);
            link.toReverse = fields[4] == "-";
            util::require(fields[2] == "+" || fields[2] == "-",
                          "bad L orientation: ", line);
            util::require(fields[4] == "+" || fields[4] == "-",
                          "bad L orientation: ", line);
            links.push_back(link);
            break;
          }
          case 'P': {
            util::require(fields.size() >= 3, "short GFA P line: ", line);
            path_lines.emplace_back(fields[1], fields[2]);
            break;
          }
          default:
            // Unknown record types are ignored (GFA tooling convention).
            break;
        }
    }

    graph::VariationGraph graph;
    std::map<uint64_t, graph::NodeId> id_map;
    for (const auto& [name, sequence] : segments) {
        id_map[name] = graph.addNode(sequence);
    }
    for (const Link& link : links) {
        auto from = id_map.find(link.fromName);
        auto to = id_map.find(link.toName);
        util::require(from != id_map.end() && to != id_map.end(),
                      "GFA link references unknown segment");
        graph.addEdge(graph::Handle(from->second, link.fromReverse),
                      graph::Handle(to->second, link.toReverse));
    }
    for (const auto& [name, steps_text] : path_lines) {
        std::vector<graph::Handle> steps;
        for (const std::string& token : util::split(steps_text, ',')) {
            steps.push_back(parseStep(token, id_map));
        }
        graph.addPath(name, std::move(steps));
    }
    return graph;
}

void
saveGfa(const std::string& path, const graph::VariationGraph& graph)
{
    writeFileText(path, formatGfa(graph));
}

graph::VariationGraph
loadGfa(const std::string& path)
{
    return parseGfa(readFileText(path));
}

} // namespace mg::io
