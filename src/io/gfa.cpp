#include "io/gfa.h"

#include <algorithm>
#include <map>

#include "fault/fault.h"
#include "io/file.h"
#include "util/common.h"
#include "util/status.h"
#include "util/str.h"

namespace mg::io {

namespace {

char
orientationChar(graph::Handle handle)
{
    return handle.isReverse() ? '-' : '+';
}

/** Throw a Corrupt status pointing at a 1-based GFA line. */
[[noreturn]] void
gfaFail(std::string_view file, uint64_t line, std::string message)
{
    util::Status status;
    status.code = util::StatusCode::Corrupt;
    status.message = std::move(message);
    status.file = std::string(file);
    status.section = "gfa";
    status.offset = line;
    util::throwStatus(std::move(status));
}

/** Parse a decimal segment name; fails instead of throwing std::stoull's
 *  unstructured exceptions. */
uint64_t
parseSegmentName(std::string_view token, std::string_view file,
                 uint64_t line)
{
    if (token.empty()) {
        gfaFail(file, line, "empty GFA segment name");
    }
    uint64_t name = 0;
    for (char c : token) {
        if (c < '0' || c > '9') {
            gfaFail(file, line,
                    util::cat("non-numeric GFA segment name: ", token));
        }
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (name > (UINT64_MAX - digit) / 10) {
            gfaFail(file, line,
                    util::cat("GFA segment name overflows: ", token));
        }
        name = name * 10 + digit;
    }
    return name;
}

/** Parse "12+" / "12-" path steps. */
graph::Handle
parseStep(std::string_view token,
          const std::map<uint64_t, graph::NodeId>& id_map,
          std::string_view file, uint64_t line)
{
    if (token.size() < 2) {
        gfaFail(file, line, util::cat("bad GFA path step: ", token));
    }
    char orient = token.back();
    if (orient != '+' && orient != '-') {
        gfaFail(file, line,
                util::cat("bad GFA step orientation: ", token));
    }
    uint64_t name =
        parseSegmentName(token.substr(0, token.size() - 1), file, line);
    auto it = id_map.find(name);
    if (it == id_map.end()) {
        gfaFail(file, line,
                util::cat("GFA path references unknown segment: ", token));
    }
    return graph::Handle(it->second, orient == '-');
}

} // namespace

std::string
formatGfa(const graph::VariationGraph& graph)
{
    std::string out = "H\tVN:Z:1.0\n";
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        out += "S\t" + std::to_string(id) + "\t";
        out += graph.forwardSequence(id);
        out += '\n';
    }
    // Each bidirected edge once, via its canonical representative.
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            graph::Handle from(id, reverse);
            for (graph::Handle to : graph.successors(from)) {
                auto key = std::make_pair(from.packed(), to.packed());
                auto twin = std::make_pair(to.flip().packed(),
                                           from.flip().packed());
                if (key > twin) {
                    continue;
                }
                out += "L\t" + std::to_string(from.id()) + "\t";
                out += orientationChar(from);
                out += "\t" + std::to_string(to.id()) + "\t";
                out += orientationChar(to);
                out += "\t0M\n";
            }
        }
    }
    for (const graph::PathEntry& path : graph.paths()) {
        out += "P\t" + path.name + "\t";
        for (size_t i = 0; i < path.steps.size(); ++i) {
            if (i > 0) {
                out += ',';
            }
            out += std::to_string(path.steps[i].id());
            out += orientationChar(path.steps[i]);
        }
        out += "\t*\n";
    }
    return out;
}

graph::VariationGraph
parseGfa(const std::string& text, std::string_view file)
{
    // Fault point: malformed graph text reaching the parser.
    fault::inject("io.gfa.parse");

    // First pass: collect segments so ids can be compacted in numeric
    // order before edges/paths reference them.
    struct Link
    {
        uint64_t fromName;
        bool fromReverse;
        uint64_t toName;
        bool toReverse;
        uint64_t line;
    };
    struct PathLine
    {
        std::string name;
        std::string steps;
        uint64_t line;
    };
    std::map<uint64_t, std::string> segments;
    std::vector<Link> links;
    std::vector<PathLine> path_lines;

    uint64_t line_no = 0;
    for (std::string_view line_view : util::split(text, '\n')) {
        ++line_no;
        std::string line(util::trim(line_view));
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::vector<std::string> fields = util::split(line, '\t');
        switch (line[0]) {
          case 'H':
            break; // header: nothing to validate strictly
          case 'S': {
            if (fields.size() < 3) {
                gfaFail(file, line_no, util::cat("short GFA S line: ", line));
            }
            uint64_t name = parseSegmentName(fields[1], file, line_no);
            if (segments.count(name)) {
                gfaFail(file, line_no,
                        util::cat("duplicate GFA segment: ", fields[1]));
            }
            segments[name] = fields[2];
            break;
          }
          case 'L': {
            if (fields.size() < 6) {
                gfaFail(file, line_no, util::cat("short GFA L line: ", line));
            }
            if (fields[5] != "0M" && fields[5] != "*") {
                gfaFail(file, line_no,
                        util::cat("only 0M/'*' overlaps supported, got: ",
                                  fields[5]));
            }
            if ((fields[2] != "+" && fields[2] != "-") ||
                (fields[4] != "+" && fields[4] != "-")) {
                gfaFail(file, line_no,
                        util::cat("bad L orientation: ", line));
            }
            Link link;
            link.fromName = parseSegmentName(fields[1], file, line_no);
            link.fromReverse = fields[2] == "-";
            link.toName = parseSegmentName(fields[3], file, line_no);
            link.toReverse = fields[4] == "-";
            link.line = line_no;
            links.push_back(link);
            break;
          }
          case 'P': {
            if (fields.size() < 3) {
                gfaFail(file, line_no, util::cat("short GFA P line: ", line));
            }
            path_lines.push_back({ fields[1], fields[2], line_no });
            break;
          }
          default:
            // Unknown record types are ignored (GFA tooling convention).
            break;
        }
    }

    graph::VariationGraph graph;
    std::map<uint64_t, graph::NodeId> id_map;
    for (const auto& [name, sequence] : segments) {
        id_map[name] = graph.addNode(sequence);
    }
    for (const Link& link : links) {
        auto from = id_map.find(link.fromName);
        auto to = id_map.find(link.toName);
        if (from == id_map.end() || to == id_map.end()) {
            gfaFail(file, link.line,
                    "GFA link references unknown segment");
        }
        graph.addEdge(graph::Handle(from->second, link.fromReverse),
                      graph::Handle(to->second, link.toReverse));
    }
    for (const PathLine& path : path_lines) {
        std::vector<graph::Handle> steps;
        for (const std::string& token : util::split(path.steps, ',')) {
            steps.push_back(parseStep(token, id_map, file, path.line));
        }
        graph.addPath(path.name, std::move(steps));
    }
    return graph;
}

void
saveGfa(const std::string& path, const graph::VariationGraph& graph)
{
    writeFileText(path, formatGfa(graph));
}

graph::VariationGraph
loadGfa(const std::string& path)
{
    return parseGfa(readFileText(path), path);
}

} // namespace mg::io
