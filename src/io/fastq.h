/**
 * @file
 * Minimal FASTQ reader/writer for the example applications: short reads in
 * the four-line "@name / sequence / + / quality" layout.  Quality strings
 * are carried but unused by the mapper (Giraffe's critical functions do not
 * consume them either).
 */
#pragma once

#include <string>
#include <string_view>

#include "map/read.h"

namespace mg::io {

/** Parse FASTQ text into reads; throws mg::util::StatusError on malformed
 *  data (with `file`, when given, as provenance and the 1-based line
 *  number as the offset). */
map::ReadSet parseFastq(const std::string& text, std::string_view file = {});

/** Render reads as FASTQ text (qualities synthesized as 'I'). */
std::string formatFastq(const map::ReadSet& reads);

/** Convenience file wrappers. */
map::ReadSet loadFastq(const std::string& path);
void saveFastq(const std::string& path, const map::ReadSet& reads);

} // namespace mg::io
