#include "resilience/budget.h"

#include "util/common.h"

namespace mg::resilience {

const char*
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None:
        return "none";
      case CancelReason::Deadline:
        return "deadline";
      case CancelReason::StepCap:
        return "step-cap";
      case CancelReason::LookupCap:
        return "lookup-cap";
      case CancelReason::Watchdog:
        return "watchdog";
    }
    return "unknown";
}

std::string
ResilienceStats::summary() const
{
    std::string out = util::cat(degradedReads(), " degraded (deadline ",
                                deadlineHits, ", step-cap ", stepCapHits,
                                ", lookup-cap ", lookupCapHits,
                                ", watchdog ", watchdogCancels, ")");
    if (latency.count() > 0) {
        out += util::cat("; read latency p50 ",
                         stats::formatNanos(latency.p50()), ", p99 ",
                         stats::formatNanos(latency.p99()), ", p999 ",
                         stats::formatNanos(latency.p999()));
    }
    return out;
}

} // namespace mg::resilience
