/**
 * @file
 * Cooperative cancellation and work budgets — the deadline layer of
 * mg::resilience.  The mapping kernel has heavy per-read work variance: a
 * few seed-dense reads explore orders of magnitude more walk states (and
 * GBWT record decodes) than the median, and a production service cannot
 * let one of them hang a worker.  Giraffe itself copes with "give up"
 * heuristics; this layer makes giving up a first-class, *bounded*
 * operation:
 *
 *  - WorkBudget       run-level limits: a wall-clock deadline plus
 *                     deterministic per-read caps on extension walk steps
 *                     and GBWT lookups.
 *  - CancelToken      a shared flag a supervisor (the sched watchdog) sets
 *                     to cancel a worker's current batch cooperatively.
 *  - ReadBudget       the per-worker tracker threaded through
 *                     Mapper/Extender: the extend and cluster loops charge
 *                     work to it and stop at the next *cancellation point*
 *                     when the budget is exhausted or the token fires.
 *
 * Cancellation points sit only at walk-state boundaries (between graph
 * nodes in the extension DFS) and between clusters/seeds — never inside a
 * node's SWAR compare run — so a cancelled read still emits its
 * best-so-far extensions, trimmed exactly as the walk-state cap trims
 * them, and an extension can never be torn mid-node.  Step and lookup
 * caps are deterministic (a pure function of the work done); the
 * wall-clock deadline is checked every kDeadlineCheckPeriod steps to keep
 * clock reads off the per-node path.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "stats/latency.h"
#include "util/timer.h"

namespace mg::resilience {

/** Why a read (or a whole run) was degraded.  Order is severity-neutral;
 *  the first cause observed wins and is what the GAF tag reports. */
enum class CancelReason : uint8_t
{
    None = 0,
    /** The run's wall-clock deadline passed. */
    Deadline,
    /** The per-read extension-step cap was reached. */
    StepCap,
    /** The per-read GBWT-lookup cap was reached. */
    LookupCap,
    /** The watchdog cancelled the worker's batch. */
    Watchdog,
};

/** Short stable name ("deadline", "step-cap", ...) used in GAF dg: tags
 *  and run summaries. */
const char* cancelReasonName(CancelReason reason);

/**
 * Shared cooperative cancellation flag.  One writer semantics: the first
 * cancel() wins and pins the reason; later calls are no-ops.  Readers pay
 * one relaxed atomic load, so checking the token inside the extend loop
 * is effectively free.
 */
class CancelToken
{
  public:
    /** Request cancellation; the first reason to land sticks. */
    void
    cancel(CancelReason reason)
    {
        uint8_t expected = 0;
        state_.compare_exchange_strong(expected,
                                       static_cast<uint8_t>(reason),
                                       std::memory_order_release,
                                       std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return state_.load(std::memory_order_relaxed) != 0;
    }

    CancelReason
    reason() const
    {
        return static_cast<CancelReason>(
            state_.load(std::memory_order_acquire));
    }

    /** Re-arm for the next batch (worker-side, at a batch boundary). */
    void reset() { state_.store(0, std::memory_order_release); }

  private:
    std::atomic<uint8_t> state_{0};
};

/** Run-level work limits.  Zero means unlimited for every field. */
struct WorkBudget
{
    /** Wall-clock budget for the whole mapping run, in seconds. */
    double wallSeconds = 0.0;
    /** Per-read cap on extension walk states explored. */
    uint64_t maxExtendSteps = 0;
    /** Per-read cap on GBWT record lookups. */
    uint64_t maxGbwtLookups = 0;

    bool
    unlimited() const
    {
        return wallSeconds <= 0.0 && maxExtendSteps == 0 &&
               maxGbwtLookups == 0;
    }
};

/**
 * Per-worker budget tracker.  Owned by MapperState; the Extender reaches
 * it through ExtendScratch.  All methods are single-threaded except the
 * token, which the watchdog may set concurrently.
 */
class ReadBudget
{
  public:
    /** Steps between wall-clock deadline checks (amortizes clock reads). */
    static constexpr uint64_t kDeadlineCheckPeriod = 64;

    /**
     * Bind run-level limits.  `deadline_nanos` is the absolute steady
     * timestamp (util::nowNanos domain) after which reads degrade; 0
     * disables the deadline.  The token may be null.
     */
    void
    configure(const WorkBudget& budget, uint64_t deadline_nanos,
              CancelToken* token)
    {
        maxSteps_ = budget.maxExtendSteps;
        maxLookups_ = budget.maxGbwtLookups;
        deadlineNanos_ = deadline_nanos;
        token_ = token;
        active_ = maxSteps_ != 0 || maxLookups_ != 0 ||
                  deadlineNanos_ != 0 || token_ != nullptr;
    }

    /** Start a new read: reset counters and re-sample the cancel state. */
    void
    beginRead()
    {
        steps_ = 0;
        lookups_ = 0;
        reason_ = CancelReason::None;
        if (!active_) {
            return;
        }
        // A deadline that already passed, or a token the watchdog already
        // fired, degrades the read from its first cancellation point.
        if (token_ != nullptr && token_->cancelled()) {
            reason_ = token_->reason();
        } else if (deadlineNanos_ != 0 &&
                   util::nowNanos() >= deadlineNanos_) {
            reason_ = CancelReason::Deadline;
        }
    }

    /**
     * Charge one extension walk state.  Returns true when the read must
     * stop at this cancellation point (budget exhausted, deadline passed,
     * or token cancelled).
     */
    bool
    chargeStep()
    {
        if (!active_) {
            return false;
        }
        ++steps_;
        if (reason_ != CancelReason::None) {
            return true;
        }
        if (maxSteps_ != 0 && steps_ > maxSteps_) {
            reason_ = CancelReason::StepCap;
            return true;
        }
        if (maxLookups_ != 0 && lookups_ > maxLookups_) {
            reason_ = CancelReason::LookupCap;
            return true;
        }
        if (steps_ % kDeadlineCheckPeriod == 0) {
            if (token_ != nullptr && token_->cancelled()) {
                reason_ = token_->reason();
                return true;
            }
            if (deadlineNanos_ != 0 && util::nowNanos() >= deadlineNanos_) {
                reason_ = CancelReason::Deadline;
                return true;
            }
        }
        return false;
    }

    /** Charge one GBWT record lookup (cap enforced at the next step). */
    void
    chargeLookup()
    {
        if (active_) {
            ++lookups_;
        }
    }

    /** True once any limit fired for the current read. */
    bool exhausted() const { return reason_ != CancelReason::None; }

    /** Why the current read was cut short (None when it was not). */
    CancelReason reason() const { return reason_; }

    uint64_t steps() const { return steps_; }
    uint64_t lookups() const { return lookups_; }

    /** True when any limit, deadline, or token is configured. */
    bool active() const { return active_; }

  private:
    uint64_t maxSteps_ = 0;
    uint64_t maxLookups_ = 0;
    uint64_t deadlineNanos_ = 0;
    CancelToken* token_ = nullptr;
    bool active_ = false;

    uint64_t steps_ = 0;
    uint64_t lookups_ = 0;
    CancelReason reason_ = CancelReason::None;
};

/**
 * Degradation observability of one run (or one worker, before roll-up):
 * how many reads were cut short and why, plus the per-read latency
 * distribution with tail percentiles.
 */
struct ResilienceStats
{
    uint64_t deadlineHits = 0;
    uint64_t stepCapHits = 0;
    uint64_t lookupCapHits = 0;
    uint64_t watchdogCancels = 0;
    stats::LatencyHistogram latency;

    /** Count one degraded read by its reason (None is a no-op). */
    void
    countDegraded(CancelReason reason)
    {
        switch (reason) {
          case CancelReason::None:
            break;
          case CancelReason::Deadline:
            ++deadlineHits;
            break;
          case CancelReason::StepCap:
            ++stepCapHits;
            break;
          case CancelReason::LookupCap:
            ++lookupCapHits;
            break;
          case CancelReason::Watchdog:
            ++watchdogCancels;
            break;
        }
    }

    uint64_t
    degradedReads() const
    {
        return deadlineHits + stepCapHits + lookupCapHits +
               watchdogCancels;
    }

    void
    accumulate(const ResilienceStats& other)
    {
        deadlineHits += other.deadlineHits;
        stepCapHits += other.stepCapHits;
        lookupCapHits += other.lookupCapHits;
        watchdogCancels += other.watchdogCancels;
        latency.merge(other.latency);
    }

    /** One-line run summary ("3 degraded (deadline 1, ...), p50 ... "). */
    std::string summary() const;
};

} // namespace mg::resilience
