/**
 * @file
 * (k,w)-minimizer index over the pangenome's haplotype paths
 * (Section II-B of the paper).  A minimizer is the k-mer with the smallest
 * hash inside each window of w consecutive k-mers; indexing only minimizers
 * shrinks the seed table while guaranteeing that any read sharing a
 * sufficiently long exact stretch with an indexed haplotype produces at
 * least one common minimizer.  A matching minimizer between a read and the
 * index is a *seed*.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/handle.h"
#include "graph/variation_graph.h"
#include "mem/arena.h"

namespace mg::index {

/** One minimizer occurrence inside a linear sequence. */
struct Minimizer
{
    uint64_t hash = 0;   ///< Hashed packed k-mer (ordering key).
    uint32_t offset = 0; ///< Start offset of the k-mer in the sequence.
};

/** Minimizer selection parameters. */
struct MinimizerParams
{
    /** k-mer length (Giraffe's short-read default is 29; scaled here). */
    int k = 15;
    /** Window: number of consecutive k-mers considered per window. */
    int w = 8;
    /** Drop index entries occurring more often than this (repeat filter). */
    size_t maxOccurrences = 512;
    /**
     * Worker threads for index construction (paths fanned out over the
     * work-stealing scheduler).  0 picks hardware concurrency; 1 builds
     * serially.  The resulting index is identical regardless.
     */
    unsigned buildThreads = 0;
};

/**
 * Compute the minimizers of a linear sequence with a monotonic-deque sweep.
 * Duplicate selections of the same occurrence are emitted once.
 */
std::vector<Minimizer> minimizersOf(std::string_view sequence,
                                    const MinimizerParams& params);

/**
 * Minimizers of the sequence spelled by a haplotype path, rolled directly
 * from the graph's 2-bit packed arena (32 codes per word fetch) — no
 * decoded path string is materialized.  Offsets are into the concatenated
 * path sequence; the result equals minimizersOf(pathSequence(steps)).
 */
std::vector<Minimizer> minimizersOfPath(const graph::VariationGraph& graph,
                                        const std::vector<graph::Handle>& steps,
                                        const MinimizerParams& params);

/**
 * One open-addressing bucket of the minimizer hash table.  count == 0
 * marks an empty bucket; occupied buckets point at a [offset, offset +
 * count) span of the key-major position table.  The layout is fixed (16
 * bytes, little-endian fields) because MGZ v3 stores the table verbatim
 * and the loader maps it back without rebuilding.
 */
struct MinimizerBucket
{
    uint64_t key = 0;
    uint32_t offset = 0;
    uint32_t count = 0;
};
static_assert(sizeof(MinimizerBucket) == 16,
              "bucket layout is an on-disk contract");

/**
 * Immutable minimizer-to-graph-position table.
 *
 * Built from every haplotype path of the graph; lookups return the graph
 * positions whose k-mer hash matches a read minimizer.  Storage is a flat
 * hash-sorted (key, positions) layout plus an open-addressing bucket table
 * (power-of-two size, linear probing, >= 50% empty) that serves lookups in
 * O(1) — and, being position-free flat arrays, maps straight out of an
 * MGZ v3 container (mem::ArenaView backing).
 */
class MinimizerIndex
{
  public:
    MinimizerIndex() = default;

    /** Index all haplotype paths of the graph. */
    MinimizerIndex(const graph::VariationGraph& graph,
                   const MinimizerParams& params);

    // The armed-prefetch flag is an atomic, so the moves are spelled out
    // (the tables and params move; the flag's value is carried over).
    MinimizerIndex(MinimizerIndex&& other) noexcept;
    MinimizerIndex& operator=(MinimizerIndex&& other) noexcept;
    MinimizerIndex(const MinimizerIndex&) = delete;
    MinimizerIndex& operator=(const MinimizerIndex&) = delete;

    const MinimizerParams& params() const { return params_; }

    /** Number of distinct indexed minimizer keys. */
    size_t numKeys() const { return keys_.size(); }

    /** Total stored (key, position) entries. */
    size_t numEntries() const { return positions_.size(); }

    /**
     * Graph positions of one minimizer hash (possibly empty).  The returned
     * span is valid as long as the index lives.
     */
    std::pair<const graph::Position*, size_t>
    lookup(uint64_t hash) const
    {
        const size_t table = buckets_.size();
        if (table == 0) {
            return {nullptr, 0};
        }
        const MinimizerBucket* tab = buckets_.data();
        const size_t mask = table - 1;
        // hash64 output is uniform, so the low bits index directly; the
        // builder guarantees >= half the buckets are empty, bounding the
        // linear probe.
        for (size_t i = hash & mask;; i = (i + 1) & mask) {
            const MinimizerBucket& bucket = tab[i];
            if (bucket.count == 0) {
                return {nullptr, 0};
            }
            if (bucket.key == hash) {
                return {positions_.data() + bucket.offset, bucket.count};
            }
        }
    }

    /** Sorted distinct keys (equivalence tests across build modes). */
    const mem::ArenaView<uint64_t>& keys() const { return keys_; }

    /** Flat position table, key-major (equivalence tests). */
    const mem::ArenaView<graph::Position>& positions() const
    {
        return positions_;
    }

    /** Key-major span table, keys().size() + 1 entries (serialization). */
    const mem::ArenaView<uint32_t>& keyOffsets() const
    {
        return keyOffsets_;
    }

    /** The open-addressing bucket table (serialization, tests). */
    const mem::ArenaView<MinimizerBucket>& buckets() const
    {
        return buckets_;
    }

    /** True when the tables are mmap-backed (MGZ v3 load). */
    bool isMapped() const { return positions_.isMapped(); }

    /**
     * Arm a one-shot madvise(MADV_WILLNEED) of the bucket + key tables,
     * issued by the first query that reaches this index (map::findSeeds
     * calls maybePrefetch() once per read).  The v3 loader and the hot-swap
     * path arm this so the kernel starts faulting the lookup tables in
     * while the first request is still being decoded, instead of paying
     * one major fault per random probe.  No-op for heap-backed tables.
     */
    void
    armPrefetch() const
    {
        prefetchArmed_.store(isMapped(), std::memory_order_relaxed);
    }

    /** Issue the armed prefetch, if any (first-query trigger; one relaxed
     *  load per call once disarmed). */
    void
    maybePrefetch() const
    {
        if (prefetchArmed_.load(std::memory_order_relaxed) &&
            prefetchArmed_.exchange(false, std::memory_order_relaxed)) {
            buckets_.advise(mem::Advice::WillNeed);
            keys_.advise(mem::Advice::WillNeed);
        }
    }

    /** True while an armed prefetch is pending (tests, bench). */
    bool
    prefetchArmed() const
    {
        return prefetchArmed_.load(std::memory_order_relaxed);
    }

    /** Heap/mapped bytes across all four tables. */
    size_t
    footprintBytes() const
    {
        return keys_.bytes() + keyOffsets_.bytes() + positions_.bytes() +
               buckets_.bytes();
    }

    /**
     * Rebind onto tables inside a mapped MGZ v3 container.  Performs the
     * cheap structural scans (monotone offsets, bucket spans in bounds,
     * load factor <= 1/2) that keep corrupt containers from crashing
     * lookups; full content integrity is the per-section CRC's job.
     * Throws util::Error on inconsistency.
     */
    void bindMapped(std::shared_ptr<mem::MappedFile> file,
                    const MinimizerParams& params, const uint64_t* keys,
                    size_t num_keys, const uint32_t* key_offsets,
                    size_t num_key_offsets,
                    const graph::Position* positions, size_t num_positions,
                    const MinimizerBucket* buckets, size_t num_buckets);

  private:
    MinimizerParams params_;
    mem::ArenaView<uint64_t> keys_;        // sorted distinct hashes
    mem::ArenaView<uint32_t> keyOffsets_;  // keys_.size() + 1 entries
    mem::ArenaView<graph::Position> positions_;
    mem::ArenaView<MinimizerBucket> buckets_;  // pow2 open addressing
    /** One-shot WILLNEED advice pending for the lookup tables. */
    mutable std::atomic<bool> prefetchArmed_{false};
};

} // namespace mg::index
