/**
 * @file
 * (k,w)-minimizer index over the pangenome's haplotype paths
 * (Section II-B of the paper).  A minimizer is the k-mer with the smallest
 * hash inside each window of w consecutive k-mers; indexing only minimizers
 * shrinks the seed table while guaranteeing that any read sharing a
 * sufficiently long exact stretch with an indexed haplotype produces at
 * least one common minimizer.  A matching minimizer between a read and the
 * index is a *seed*.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/handle.h"
#include "graph/variation_graph.h"

namespace mg::index {

/** One minimizer occurrence inside a linear sequence. */
struct Minimizer
{
    uint64_t hash = 0;   ///< Hashed packed k-mer (ordering key).
    uint32_t offset = 0; ///< Start offset of the k-mer in the sequence.
};

/** Minimizer selection parameters. */
struct MinimizerParams
{
    /** k-mer length (Giraffe's short-read default is 29; scaled here). */
    int k = 15;
    /** Window: number of consecutive k-mers considered per window. */
    int w = 8;
    /** Drop index entries occurring more often than this (repeat filter). */
    size_t maxOccurrences = 512;
    /**
     * Worker threads for index construction (paths fanned out over the
     * work-stealing scheduler).  0 picks hardware concurrency; 1 builds
     * serially.  The resulting index is identical regardless.
     */
    unsigned buildThreads = 0;
};

/**
 * Compute the minimizers of a linear sequence with a monotonic-deque sweep.
 * Duplicate selections of the same occurrence are emitted once.
 */
std::vector<Minimizer> minimizersOf(std::string_view sequence,
                                    const MinimizerParams& params);

/**
 * Minimizers of the sequence spelled by a haplotype path, rolled directly
 * from the graph's 2-bit packed arena (32 codes per word fetch) — no
 * decoded path string is materialized.  Offsets are into the concatenated
 * path sequence; the result equals minimizersOf(pathSequence(steps)).
 */
std::vector<Minimizer> minimizersOfPath(const graph::VariationGraph& graph,
                                        const std::vector<graph::Handle>& steps,
                                        const MinimizerParams& params);

/**
 * Immutable minimizer-to-graph-position table.
 *
 * Built from every haplotype path of the graph; lookups return the graph
 * positions whose k-mer hash matches a read minimizer.  Storage is a flat
 * hash-sorted (key, positions) layout for compactness and cache-friendly
 * binary search.
 */
class MinimizerIndex
{
  public:
    MinimizerIndex() = default;

    /** Index all haplotype paths of the graph. */
    MinimizerIndex(const graph::VariationGraph& graph,
                   const MinimizerParams& params);

    const MinimizerParams& params() const { return params_; }

    /** Number of distinct indexed minimizer keys. */
    size_t numKeys() const { return keys_.size(); }

    /** Total stored (key, position) entries. */
    size_t numEntries() const { return positions_.size(); }

    /**
     * Graph positions of one minimizer hash (possibly empty).  The returned
     * span is valid as long as the index lives.
     */
    std::pair<const graph::Position*, size_t> lookup(uint64_t hash) const;

    /** Sorted distinct keys (equivalence tests across build modes). */
    const std::vector<uint64_t>& keys() const { return keys_; }

    /** Flat position table, key-major (equivalence tests). */
    const std::vector<graph::Position>& positions() const
    {
        return positions_;
    }

  private:
    MinimizerParams params_;
    std::vector<uint64_t> keys_;        // sorted distinct hashes
    std::vector<uint32_t> keyOffsets_;  // keys_.size() + 1 entries
    std::vector<graph::Position> positions_;
};

} // namespace mg::index
