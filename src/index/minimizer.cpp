#include "index/minimizer.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/common.h"
#include "util/dna.h"

namespace mg::index {

std::vector<Minimizer>
minimizersOf(std::string_view sequence, const MinimizerParams& params)
{
    const int k = params.k;
    const int w = params.w;
    MG_ASSERT(k >= 1 && k <= 32);
    MG_ASSERT(w >= 1);

    std::vector<Minimizer> out;
    if (static_cast<int>(sequence.size()) < k) {
        return out;
    }
    // Rolling 2-bit packed k-mer and its hash per position.
    const uint64_t mask =
        k == 32 ? ~uint64_t{0} : ((uint64_t{1} << (2 * k)) - 1);
    uint64_t packed = 0;
    // Monotonic deque of (hash, offset) candidates; the front is the
    // minimum of the current window of w consecutive k-mers.
    std::deque<Minimizer> window;
    uint32_t last_emitted = UINT32_MAX;

    for (size_t i = 0; i < sequence.size(); ++i) {
        uint8_t code = util::baseCode(sequence[i]);
        MG_ASSERT(code != 0xff);
        packed = ((packed << 2) | code) & mask;
        if (i + 1 < static_cast<size_t>(k)) {
            continue;
        }
        // The k-mer ending at i starts at this offset.
        uint32_t offset = static_cast<uint32_t>(i + 1 - k);
        uint64_t hash = util::hash64(packed);
        while (!window.empty() && window.back().hash > hash) {
            window.pop_back();
        }
        window.push_back(Minimizer{hash, offset});
        // Evict candidates left of the window [offset - w + 1, offset].
        while (offset >= static_cast<uint32_t>(w) &&
               window.front().offset <= offset - w) {
            window.pop_front();
        }
        // Once the first full window has formed, emit its minimum.
        if (offset + 1 >= static_cast<uint32_t>(w)) {
            const Minimizer& min = window.front();
            if (min.offset != last_emitted) {
                out.push_back(min);
                last_emitted = min.offset;
            }
        }
    }
    return out;
}

MinimizerIndex::MinimizerIndex(const graph::VariationGraph& graph,
                               const MinimizerParams& params)
    : params_(params)
{
    // Collect (hash, position) pairs from every haplotype path.
    std::vector<std::pair<uint64_t, graph::Position>> entries;
    for (const graph::PathEntry& path : graph.paths()) {
        std::string seq = graph.pathSequence(path.steps);
        // Cumulative start offset of each step inside the path sequence.
        std::vector<size_t> step_starts(path.steps.size() + 1, 0);
        for (size_t s = 0; s < path.steps.size(); ++s) {
            step_starts[s + 1] =
                step_starts[s] + graph.length(path.steps[s].id());
        }
        for (const Minimizer& min : minimizersOf(seq, params_)) {
            // Locate the step containing this offset.
            auto it = std::upper_bound(step_starts.begin(), step_starts.end(),
                                       static_cast<size_t>(min.offset));
            size_t step = static_cast<size_t>(it - step_starts.begin()) - 1;
            graph::Position pos;
            pos.handle = path.steps[step];
            pos.offset = static_cast<uint32_t>(min.offset -
                                               step_starts[step]);
            entries.emplace_back(min.hash, pos);
        }
    }

    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                      return a.first < b.first;
                  }
                  return a.second < b.second;
              });
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const auto& a, const auto& b) {
                                  return a.first == b.first &&
                                         a.second == b.second;
                              }),
                  entries.end());

    // Flatten, applying the repeat filter per key.
    size_t i = 0;
    while (i < entries.size()) {
        size_t j = i;
        while (j < entries.size() && entries[j].first == entries[i].first) {
            ++j;
        }
        if (j - i <= params_.maxOccurrences) {
            keys_.push_back(entries[i].first);
            keyOffsets_.push_back(static_cast<uint32_t>(positions_.size()));
            for (size_t e = i; e < j; ++e) {
                positions_.push_back(entries[e].second);
            }
        }
        i = j;
    }
    keyOffsets_.push_back(static_cast<uint32_t>(positions_.size()));
}

std::pair<const graph::Position*, size_t>
MinimizerIndex::lookup(uint64_t hash) const
{
    auto it = std::lower_bound(keys_.begin(), keys_.end(), hash);
    if (it == keys_.end() || *it != hash) {
        return {nullptr, 0};
    }
    size_t index = static_cast<size_t>(it - keys_.begin());
    uint32_t begin = keyOffsets_[index];
    uint32_t end = keyOffsets_[index + 1];
    return {positions_.data() + begin, end - begin};
}

} // namespace mg::index
