#include "index/minimizer.h"

#include <algorithm>
#include <deque>
#include <thread>

#include "sched/scheduler.h"
#include "util/common.h"
#include "util/dna.h"

namespace mg::index {

namespace {

/**
 * The monotonic-deque minimizer sweep, fed one 2-bit code at a time so the
 * same machinery serves decoded strings and the packed arena.  Semantics
 * match the historical string sweep exactly: the front of the deque is the
 * minimum of the current window of w consecutive k-mers, each selected
 * occurrence is emitted once.
 */
class Sweep
{
  public:
    Sweep(const MinimizerParams& params, std::vector<Minimizer>& out)
        : k_(static_cast<uint32_t>(params.k)),
          w_(static_cast<uint32_t>(params.w)),
          mask_(params.k == 32 ? ~uint64_t{0}
                               : ((uint64_t{1} << (2 * params.k)) - 1)),
          out_(out)
    {
        MG_ASSERT(params.k >= 1 && params.k <= 32);
        MG_ASSERT(params.w >= 1);
    }

    void
    push(uint8_t code)
    {
        packed_ = ((packed_ << 2) | code) & mask_;
        if (++pos_ < k_) {
            return;
        }
        // The k-mer ending at pos_ - 1 starts at this offset.
        uint32_t offset = pos_ - k_;
        uint64_t hash = util::hash64(packed_);
        while (!window_.empty() && window_.back().hash > hash) {
            window_.pop_back();
        }
        window_.push_back(Minimizer{hash, offset});
        // Evict candidates left of the window [offset - w + 1, offset].
        while (offset >= w_ && window_.front().offset <= offset - w_) {
            window_.pop_front();
        }
        // Once the first full window has formed, emit its minimum.
        if (offset + 1 >= w_) {
            const Minimizer& min = window_.front();
            if (min.offset != lastEmitted_) {
                out_.push_back(min);
                lastEmitted_ = min.offset;
            }
        }
    }

  private:
    const uint32_t k_;
    const uint32_t w_;
    const uint64_t mask_;
    uint64_t packed_ = 0;
    uint32_t pos_ = 0;
    std::deque<Minimizer> window_;
    uint32_t lastEmitted_ = UINT32_MAX;
    std::vector<Minimizer>& out_;
};

/** (hash, position) pairs of one path, for the index merge. */
using Entry = std::pair<uint64_t, graph::Position>;

/** Collect one path's index entries (any thread; touches only `entries`). */
void
collectPathEntries(const graph::VariationGraph& graph,
                   const graph::PathEntry& path,
                   const MinimizerParams& params,
                   std::vector<Entry>& entries)
{
    // Cumulative start offset of each step inside the path sequence.
    std::vector<size_t> step_starts(path.steps.size() + 1, 0);
    for (size_t s = 0; s < path.steps.size(); ++s) {
        step_starts[s + 1] = step_starts[s] + graph.length(path.steps[s].id());
    }
    for (const Minimizer& min : minimizersOfPath(graph, path.steps, params)) {
        // Locate the step containing this offset.
        auto it = std::upper_bound(step_starts.begin(), step_starts.end(),
                                   static_cast<size_t>(min.offset));
        size_t step = static_cast<size_t>(it - step_starts.begin()) - 1;
        graph::Position pos;
        pos.handle = path.steps[step];
        pos.offset = static_cast<uint32_t>(min.offset - step_starts[step]);
        entries.emplace_back(min.hash, pos);
    }
}

} // namespace

std::vector<Minimizer>
minimizersOf(std::string_view sequence, const MinimizerParams& params)
{
    std::vector<Minimizer> out;
    Sweep sweep(params, out);
    if (static_cast<int>(sequence.size()) < params.k) {
        return out;
    }
    for (char base : sequence) {
        // Post-ingest sequences are pure ACGT; ad-hoc callers get the
        // canonicalization policy (ambiguity letters roll in as 'A').
        sweep.push(util::canonicalCode(base));
    }
    return out;
}

std::vector<Minimizer>
minimizersOfPath(const graph::VariationGraph& graph,
                 const std::vector<graph::Handle>& steps,
                 const MinimizerParams& params)
{
    std::vector<Minimizer> out;
    Sweep sweep(params, out);
    for (graph::Handle step : steps) {
        // Roll codes straight out of the packed arena: one word fetch per
        // 32 bases, two ALU ops per base, no decoded string.
        util::PackedSpan view = graph.packedView(step);
        uint32_t i = 0;
        while (i < view.size) {
            uint64_t chunk = util::chunk32(view.words, view.first + i);
            uint32_t n = std::min<uint32_t>(view.size - i,
                                            util::kBasesPerWord);
            for (uint32_t b = 0; b < n; ++b) {
                sweep.push(static_cast<uint8_t>(chunk & 3u));
                chunk >>= 2;
            }
            i += n;
        }
    }
    return out;
}

namespace {

/**
 * Number of hash shards for the parallel sort.  Fixed (never derived from
 * the thread count): shard membership is hash >> 58, so concatenating the
 * sorted shards in shard order IS the globally sorted entry sequence, for
 * any worker count.
 */
constexpr size_t kHashShards = 64;
constexpr unsigned kShardShift = 58;  // 64 - log2(kHashShards)

/**
 * Smallest power-of-two table size with load factor <= 1/2.  The >= 50%
 * empty guarantee bounds linear probes and is what bindMapped re-checks
 * so a corrupt mapped table can never send lookup() into an endless probe
 * loop.
 */
size_t
bucketTableSize(size_t num_keys)
{
    if (num_keys == 0) {
        return 0;
    }
    size_t size = 2;
    while (size < 2 * num_keys) {
        size *= 2;
    }
    return size;
}

/** Build the open-addressing table over the flattened key spans. */
std::vector<MinimizerBucket>
buildBuckets(const std::vector<uint64_t>& keys,
             const std::vector<uint32_t>& key_offsets)
{
    std::vector<MinimizerBucket> buckets(bucketTableSize(keys.size()));
    if (buckets.empty()) {
        return buckets;
    }
    const size_t mask = buckets.size() - 1;
    // Insert in ascending key order so the table bytes are a pure
    // function of the key set (v3 determinism across thread counts).
    for (size_t i = 0; i < keys.size(); ++i) {
        size_t slot = keys[i] & mask;
        while (buckets[slot].count != 0) {
            slot = (slot + 1) & mask;
        }
        buckets[slot].key = keys[i];
        buckets[slot].offset = key_offsets[i];
        buckets[slot].count = key_offsets[i + 1] - key_offsets[i];
    }
    return buckets;
}

} // namespace

MinimizerIndex::MinimizerIndex(MinimizerIndex&& other) noexcept
    : params_(other.params_), keys_(std::move(other.keys_)),
      keyOffsets_(std::move(other.keyOffsets_)),
      positions_(std::move(other.positions_)),
      buckets_(std::move(other.buckets_)),
      prefetchArmed_(
          other.prefetchArmed_.load(std::memory_order_relaxed))
{}

MinimizerIndex&
MinimizerIndex::operator=(MinimizerIndex&& other) noexcept
{
    if (this != &other) {
        params_ = other.params_;
        keys_ = std::move(other.keys_);
        keyOffsets_ = std::move(other.keyOffsets_);
        positions_ = std::move(other.positions_);
        buckets_ = std::move(other.buckets_);
        prefetchArmed_.store(
            other.prefetchArmed_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    return *this;
}

MinimizerIndex::MinimizerIndex(const graph::VariationGraph& graph,
                               const MinimizerParams& params)
    : params_(params)
{
    // Collect (hash, position) pairs from every haplotype path, fanning
    // paths out over the work-stealing scheduler (the paper's lightweight
    // policy).  Each worker writes only its own per-path slot, and the
    // slots are merged in path order, so the entry sequence — and hence
    // the built index — is identical to a serial build.
    const std::vector<graph::PathEntry>& paths = graph.paths();
    std::vector<std::vector<Entry>> per_path(paths.size());
    unsigned threads = params_.buildThreads != 0
                           ? params_.buildThreads
                           : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<size_t>(paths.size(), 1)));
    std::unique_ptr<sched::Scheduler> scheduler;
    if (threads > 1) {
        scheduler = sched::makeScheduler(sched::SchedulerKind::WorkStealing);
        scheduler->run(paths.size(), 1, threads,
                       [&](size_t, size_t begin, size_t end) {
                           for (size_t p = begin; p < end; ++p) {
                               collectPathEntries(graph, paths[p], params_,
                                                  per_path[p]);
                           }
                       });
    } else {
        for (size_t p = 0; p < paths.size(); ++p) {
            collectPathEntries(graph, paths[p], params_, per_path[p]);
        }
    }

    // Distribute into fixed hash shards (top bits), then sort each shard
    // independently — shard concatenation in shard order is the globally
    // (hash, position)-sorted sequence the flatten pass consumes, so the
    // index is identical for every thread count.
    std::vector<std::vector<Entry>> shards(kHashShards);
    {
        std::vector<size_t> shard_sizes(kHashShards, 0);
        for (const std::vector<Entry>& part : per_path) {
            for (const Entry& entry : part) {
                ++shard_sizes[entry.first >> kShardShift];
            }
        }
        for (size_t s = 0; s < kHashShards; ++s) {
            shards[s].reserve(shard_sizes[s]);
        }
        for (std::vector<Entry>& part : per_path) {
            for (const Entry& entry : part) {
                shards[entry.first >> kShardShift].push_back(entry);
            }
            part.clear();
            part.shrink_to_fit();
        }
    }
    auto sort_shard = [&](size_t s) {
        std::vector<Entry>& shard = shards[s];
        std::sort(shard.begin(), shard.end(),
                  [](const auto& a, const auto& b) {
                      if (a.first != b.first) {
                          return a.first < b.first;
                      }
                      return a.second < b.second;
                  });
        shard.erase(std::unique(shard.begin(), shard.end(),
                                [](const auto& a, const auto& b) {
                                    return a.first == b.first &&
                                           a.second == b.second;
                                }),
                    shard.end());
    };
    if (scheduler) {
        scheduler->run(kHashShards, 1, threads,
                       [&](size_t, size_t begin, size_t end) {
                           for (size_t s = begin; s < end; ++s) {
                               sort_shard(s);
                           }
                       });
    } else {
        for (size_t s = 0; s < kHashShards; ++s) {
            sort_shard(s);
        }
    }

    // Flatten in shard order, applying the repeat filter per key (keys
    // never straddle shards: equal hashes share a shard).
    auto& keys = keys_.owned();
    auto& key_offsets = keyOffsets_.owned();
    auto& positions = positions_.owned();
    for (const std::vector<Entry>& shard : shards) {
        size_t i = 0;
        while (i < shard.size()) {
            size_t j = i;
            while (j < shard.size() && shard[j].first == shard[i].first) {
                ++j;
            }
            if (j - i <= params_.maxOccurrences) {
                keys.push_back(shard[i].first);
                key_offsets.push_back(
                    static_cast<uint32_t>(positions.size()));
                for (size_t e = i; e < j; ++e) {
                    positions.push_back(shard[e].second);
                }
            }
            i = j;
        }
    }
    key_offsets.push_back(static_cast<uint32_t>(positions.size()));
    buckets_.adopt(buildBuckets(keys, key_offsets));
}

void
MinimizerIndex::bindMapped(std::shared_ptr<mem::MappedFile> file,
                           const MinimizerParams& params,
                           const uint64_t* keys, size_t num_keys,
                           const uint32_t* key_offsets,
                           size_t num_key_offsets,
                           const graph::Position* positions,
                           size_t num_positions,
                           const MinimizerBucket* buckets,
                           size_t num_buckets)
{
    util::require(num_key_offsets == num_keys + 1,
                  "min.keyoffs: expected ", num_keys + 1, " entries, got ",
                  num_key_offsets);
    util::require(key_offsets[0] == 0 &&
                      key_offsets[num_keys] == num_positions,
                  "min.keyoffs: table does not span the position array");
    for (size_t i = 0; i < num_keys; ++i) {
        util::require(key_offsets[i] < key_offsets[i + 1],
                      "min.keyoffs: non-increasing at entry ", i);
        if (i > 0) {
            util::require(keys[i - 1] < keys[i],
                          "min.keys: not strictly ascending at entry ", i);
        }
    }
    util::require(num_buckets == bucketTableSize(num_keys),
                  "min.table: size ", num_buckets,
                  " does not match key count ", num_keys);
    size_t occupied = 0;
    for (size_t i = 0; i < num_buckets; ++i) {
        if (buckets[i].count == 0) {
            continue;
        }
        ++occupied;
        util::require(buckets[i].offset + uint64_t{buckets[i].count} <=
                          num_positions,
                      "min.table: bucket ", i, " span out of bounds");
    }
    // Load factor <= 1/2 is the probe-termination guarantee: with it a
    // lookup always reaches an empty bucket even if contents are garbage.
    util::require(occupied == num_keys,
                  "min.table: ", occupied, " occupied buckets for ",
                  num_keys, " keys");
    params_ = params;
    keys_ = mem::ArenaView<uint64_t>();
    keyOffsets_ = mem::ArenaView<uint32_t>();
    positions_ = mem::ArenaView<graph::Position>();
    buckets_ = mem::ArenaView<MinimizerBucket>();
    keys_.bind(file, keys, num_keys);
    keyOffsets_.bind(file, key_offsets, num_key_offsets);
    positions_.bind(file, positions, num_positions);
    buckets_.bind(std::move(file), buckets, num_buckets);
}

} // namespace mg::index
