#include "index/minimizer.h"

#include <algorithm>
#include <deque>
#include <thread>

#include "sched/scheduler.h"
#include "util/common.h"
#include "util/dna.h"

namespace mg::index {

namespace {

/**
 * The monotonic-deque minimizer sweep, fed one 2-bit code at a time so the
 * same machinery serves decoded strings and the packed arena.  Semantics
 * match the historical string sweep exactly: the front of the deque is the
 * minimum of the current window of w consecutive k-mers, each selected
 * occurrence is emitted once.
 */
class Sweep
{
  public:
    Sweep(const MinimizerParams& params, std::vector<Minimizer>& out)
        : k_(static_cast<uint32_t>(params.k)),
          w_(static_cast<uint32_t>(params.w)),
          mask_(params.k == 32 ? ~uint64_t{0}
                               : ((uint64_t{1} << (2 * params.k)) - 1)),
          out_(out)
    {
        MG_ASSERT(params.k >= 1 && params.k <= 32);
        MG_ASSERT(params.w >= 1);
    }

    void
    push(uint8_t code)
    {
        packed_ = ((packed_ << 2) | code) & mask_;
        if (++pos_ < k_) {
            return;
        }
        // The k-mer ending at pos_ - 1 starts at this offset.
        uint32_t offset = pos_ - k_;
        uint64_t hash = util::hash64(packed_);
        while (!window_.empty() && window_.back().hash > hash) {
            window_.pop_back();
        }
        window_.push_back(Minimizer{hash, offset});
        // Evict candidates left of the window [offset - w + 1, offset].
        while (offset >= w_ && window_.front().offset <= offset - w_) {
            window_.pop_front();
        }
        // Once the first full window has formed, emit its minimum.
        if (offset + 1 >= w_) {
            const Minimizer& min = window_.front();
            if (min.offset != lastEmitted_) {
                out_.push_back(min);
                lastEmitted_ = min.offset;
            }
        }
    }

  private:
    const uint32_t k_;
    const uint32_t w_;
    const uint64_t mask_;
    uint64_t packed_ = 0;
    uint32_t pos_ = 0;
    std::deque<Minimizer> window_;
    uint32_t lastEmitted_ = UINT32_MAX;
    std::vector<Minimizer>& out_;
};

/** (hash, position) pairs of one path, for the index merge. */
using Entry = std::pair<uint64_t, graph::Position>;

/** Collect one path's index entries (any thread; touches only `entries`). */
void
collectPathEntries(const graph::VariationGraph& graph,
                   const graph::PathEntry& path,
                   const MinimizerParams& params,
                   std::vector<Entry>& entries)
{
    // Cumulative start offset of each step inside the path sequence.
    std::vector<size_t> step_starts(path.steps.size() + 1, 0);
    for (size_t s = 0; s < path.steps.size(); ++s) {
        step_starts[s + 1] = step_starts[s] + graph.length(path.steps[s].id());
    }
    for (const Minimizer& min : minimizersOfPath(graph, path.steps, params)) {
        // Locate the step containing this offset.
        auto it = std::upper_bound(step_starts.begin(), step_starts.end(),
                                   static_cast<size_t>(min.offset));
        size_t step = static_cast<size_t>(it - step_starts.begin()) - 1;
        graph::Position pos;
        pos.handle = path.steps[step];
        pos.offset = static_cast<uint32_t>(min.offset - step_starts[step]);
        entries.emplace_back(min.hash, pos);
    }
}

} // namespace

std::vector<Minimizer>
minimizersOf(std::string_view sequence, const MinimizerParams& params)
{
    std::vector<Minimizer> out;
    Sweep sweep(params, out);
    if (static_cast<int>(sequence.size()) < params.k) {
        return out;
    }
    for (char base : sequence) {
        // Post-ingest sequences are pure ACGT; ad-hoc callers get the
        // canonicalization policy (ambiguity letters roll in as 'A').
        sweep.push(util::canonicalCode(base));
    }
    return out;
}

std::vector<Minimizer>
minimizersOfPath(const graph::VariationGraph& graph,
                 const std::vector<graph::Handle>& steps,
                 const MinimizerParams& params)
{
    std::vector<Minimizer> out;
    Sweep sweep(params, out);
    for (graph::Handle step : steps) {
        // Roll codes straight out of the packed arena: one word fetch per
        // 32 bases, two ALU ops per base, no decoded string.
        util::PackedSpan view = graph.packedView(step);
        uint32_t i = 0;
        while (i < view.size) {
            uint64_t chunk = util::chunk32(view.words, view.first + i);
            uint32_t n = std::min<uint32_t>(view.size - i,
                                            util::kBasesPerWord);
            for (uint32_t b = 0; b < n; ++b) {
                sweep.push(static_cast<uint8_t>(chunk & 3u));
                chunk >>= 2;
            }
            i += n;
        }
    }
    return out;
}

MinimizerIndex::MinimizerIndex(const graph::VariationGraph& graph,
                               const MinimizerParams& params)
    : params_(params)
{
    // Collect (hash, position) pairs from every haplotype path, fanning
    // paths out over the work-stealing scheduler (the paper's lightweight
    // policy).  Each worker writes only its own per-path slot, and the
    // slots are merged in path order, so the entry sequence — and hence
    // the built index — is identical to a serial build.
    const std::vector<graph::PathEntry>& paths = graph.paths();
    std::vector<std::vector<Entry>> per_path(paths.size());
    unsigned threads = params_.buildThreads != 0
                           ? params_.buildThreads
                           : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<size_t>(paths.size(), 1)));
    if (threads > 1) {
        auto scheduler = sched::makeScheduler(sched::SchedulerKind::WorkStealing);
        scheduler->run(paths.size(), 1, threads,
                       [&](size_t, size_t begin, size_t end) {
                           for (size_t p = begin; p < end; ++p) {
                               collectPathEntries(graph, paths[p], params_,
                                                  per_path[p]);
                           }
                       });
    } else {
        for (size_t p = 0; p < paths.size(); ++p) {
            collectPathEntries(graph, paths[p], params_, per_path[p]);
        }
    }
    std::vector<Entry> entries;
    size_t total = 0;
    for (const std::vector<Entry>& part : per_path) {
        total += part.size();
    }
    entries.reserve(total);
    for (std::vector<Entry>& part : per_path) {
        entries.insert(entries.end(), part.begin(), part.end());
    }

    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first) {
                      return a.first < b.first;
                  }
                  return a.second < b.second;
              });
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const auto& a, const auto& b) {
                                  return a.first == b.first &&
                                         a.second == b.second;
                              }),
                  entries.end());

    // Flatten, applying the repeat filter per key.
    size_t i = 0;
    while (i < entries.size()) {
        size_t j = i;
        while (j < entries.size() && entries[j].first == entries[i].first) {
            ++j;
        }
        if (j - i <= params_.maxOccurrences) {
            keys_.push_back(entries[i].first);
            keyOffsets_.push_back(static_cast<uint32_t>(positions_.size()));
            for (size_t e = i; e < j; ++e) {
                positions_.push_back(entries[e].second);
            }
        }
        i = j;
    }
    keyOffsets_.push_back(static_cast<uint32_t>(positions_.size()));
}

std::pair<const graph::Position*, size_t>
MinimizerIndex::lookup(uint64_t hash) const
{
    auto it = std::lower_bound(keys_.begin(), keys_.end(), hash);
    if (it == keys_.end() || *it != hash) {
        return {nullptr, 0};
    }
    size_t index = static_cast<size_t>(it - keys_.begin());
    uint32_t begin = keyOffsets_[index];
    uint32_t end = keyOffsets_[index + 1];
    return {positions_.data() + begin, end - begin};
}

} // namespace mg::index
