/**
 * @file
 * Distance index (Section II-B).  Giraffe's distance index answers
 * minimum-graph-distance queries between seed positions so the clusterer
 * can group seeds that plausibly come from the same placement of a read.
 *
 * Our pangenomes are acyclic in forward orientation (bubble chains), which
 * permits a compact formulation:
 *  - a *chain coordinate* per node (minimum base distance from any source),
 *    computed by one topological DP, giving an O(1) distance estimate used
 *    by the clusterer, and
 *  - an exact bounded Dijkstra oracle used for verification and for
 *    tie-breaking in tests.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/handle.h"
#include "graph/variation_graph.h"
#include "mem/arena.h"

namespace mg::index {

/** Returned when two positions are unreachable within the query cap. */
inline constexpr int64_t kUnreachable = INT64_MAX;

/**
 * Precomputed distance information over the forward DAG of a variation
 * graph.
 */
class DistanceIndex
{
  public:
    DistanceIndex() = default;

    /** Preprocess the graph (one topological sweep). */
    explicit DistanceIndex(const graph::VariationGraph& graph);

    /**
     * Chain coordinate of a forward position: minimum distance in bases
     * from any graph source to this exact base.  Two positions on the same
     * placement of a read have coordinates that differ by approximately
     * their read-offset difference, which is what the clusterer keys on.
     */
    int64_t chainCoordinate(const graph::Position& pos) const;

    /**
     * Estimated minimum distance from position a to position b (signed:
     * negative if b's coordinate precedes a's).  Exact on a single chain;
     * within one bubble's detour length otherwise.
     */
    int64_t estimatedDistance(const graph::Position& a,
                              const graph::Position& b) const;

    /**
     * Exact minimum walk-index distance from a to b along forward edges:
     * the number of bases stepped when walking from base a to base b
     * (0 for a == b, 1 if b immediately follows a), or kUnreachable if no
     * walk within the cap exists.  Consistent with chainCoordinate: on a
     * common shortest walk, minDistance == coordinate(b) - coordinate(a).
     */
    int64_t minDistance(const graph::VariationGraph& graph,
                        const graph::Position& a, const graph::Position& b,
                        int64_t cap) const;

    size_t numNodes() const { return minFromSource_.size(); }

    /** Min-prefix array, one entry per node (v3 serialization). */
    const mem::ArenaView<int64_t>& minFromSource() const
    {
        return minFromSource_;
    }

    /** Max-prefix array, one entry per node (v3 serialization). */
    const mem::ArenaView<int64_t>& maxFromSource() const
    {
        return maxFromSource_;
    }

    /** True when the arrays are mmap-backed (MGZ v3 load). */
    bool isMapped() const { return minFromSource_.isMapped(); }

    /** Heap/mapped bytes across both arrays. */
    size_t
    footprintBytes() const
    {
        return minFromSource_.bytes() + maxFromSource_.bytes();
    }

    /**
     * Rebind onto the two per-node arrays inside a mapped MGZ v3
     * container.  Throws util::Error if the array sizes disagree with
     * the node count.
     */
    void bindMapped(std::shared_ptr<mem::MappedFile> file,
                    const int64_t* min_from_source,
                    const int64_t* max_from_source, size_t num_nodes);

  private:
    mem::ArenaView<int64_t> minFromSource_; // node id - 1 -> min prefix
    mem::ArenaView<int64_t> maxFromSource_; // node id - 1 -> max prefix
};

} // namespace mg::index
