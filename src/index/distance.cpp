#include "index/distance.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/common.h"

namespace mg::index {

DistanceIndex::DistanceIndex(const graph::VariationGraph& graph)
{
    const size_t n = graph.numNodes();
    std::vector<int64_t> min_from(n, INT64_MAX);
    std::vector<int64_t> max_from(n, 0);
    for (graph::NodeId id : graph.topologicalOrder()) {
        graph::Handle handle(id, false);
        if (min_from[id - 1] == INT64_MAX) {
            min_from[id - 1] = 0; // source node
        }
        int64_t out_min = min_from[id - 1] +
                          static_cast<int64_t>(graph.length(id));
        int64_t out_max = max_from[id - 1] +
                          static_cast<int64_t>(graph.length(id));
        for (graph::Handle succ : graph.successors(handle)) {
            int64_t& succ_min = min_from[succ.id() - 1];
            succ_min = std::min(succ_min == INT64_MAX ? out_min : succ_min,
                                out_min);
            int64_t& succ_max = max_from[succ.id() - 1];
            succ_max = std::max(succ_max, out_max);
        }
    }
    minFromSource_.adopt(std::move(min_from));
    maxFromSource_.adopt(std::move(max_from));
}

void
DistanceIndex::bindMapped(std::shared_ptr<mem::MappedFile> file,
                          const int64_t* min_from_source,
                          const int64_t* max_from_source, size_t num_nodes)
{
    minFromSource_ = mem::ArenaView<int64_t>();
    maxFromSource_ = mem::ArenaView<int64_t>();
    minFromSource_.bind(file, min_from_source, num_nodes);
    maxFromSource_.bind(std::move(file), max_from_source, num_nodes);
}

int64_t
DistanceIndex::chainCoordinate(const graph::Position& pos) const
{
    graph::NodeId id = pos.handle.id();
    MG_ASSERT(id >= 1 && id <= minFromSource_.size());
    MG_ASSERT(!pos.handle.isReverse());
    return minFromSource_[id - 1] + static_cast<int64_t>(pos.offset);
}

int64_t
DistanceIndex::estimatedDistance(const graph::Position& a,
                                 const graph::Position& b) const
{
    return chainCoordinate(b) - chainCoordinate(a);
}

int64_t
DistanceIndex::minDistance(const graph::VariationGraph& graph,
                           const graph::Position& a, const graph::Position& b,
                           int64_t cap) const
{
    MG_ASSERT(!a.handle.isReverse() && !b.handle.isReverse());
    if (a.handle == b.handle && b.offset >= a.offset) {
        return static_cast<int64_t>(b.offset) -
               static_cast<int64_t>(a.offset);
    }
    // Dijkstra over nodes: dist[v] = bases between position a and the start
    // of node v along the best walk.
    int64_t from_a_to_node_end =
        static_cast<int64_t>(graph.length(a.handle.id())) -
        static_cast<int64_t>(a.offset);
    using Item = std::pair<int64_t, uint64_t>; // (distance, handle packed)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    std::unordered_map<uint64_t, int64_t> dist;
    for (graph::Handle succ : graph.successors(a.handle)) {
        if (from_a_to_node_end <= cap) {
            dist[succ.packed()] = from_a_to_node_end;
            queue.emplace(from_a_to_node_end, succ.packed());
        }
    }
    while (!queue.empty()) {
        auto [d, packed] = queue.top();
        queue.pop();
        graph::Handle handle = graph::Handle::fromPacked(packed);
        auto it = dist.find(packed);
        if (it != dist.end() && it->second < d) {
            continue; // stale entry
        }
        if (handle == b.handle) {
            // d is the walk-index distance from base a to this node's first
            // base; add b's offset within the node.
            return d + static_cast<int64_t>(b.offset);
        }
        int64_t next = d + static_cast<int64_t>(graph.length(handle.id()));
        if (next > cap) {
            continue;
        }
        for (graph::Handle succ : graph.successors(handle)) {
            auto [sit, inserted] = dist.try_emplace(succ.packed(), next);
            if (inserted || next < sit->second) {
                sit->second = next;
                queue.emplace(next, succ.packed());
            }
        }
    }
    return kUnreachable;
}

} // namespace mg::index
