/**
 * @file
 * Machine-readable run summaries: one JSON document per run kind (proxy,
 * parent, checkpointed), all built on obs::JsonWriter so every tool in the
 * repo emits the same shapes.  Every summary carries the failure-isolation
 * counters (retries, quarantined reads, batch failures, watchdog cancels)
 * — a run that degraded or dropped work must say so in the same place a
 * healthy run reports zeroes.
 */
#pragma once

#include <string>

#include "giraffe/checkpoint_run.h"
#include "giraffe/parent.h"
#include "giraffe/proxy.h"
#include "io/mgz.h"

namespace mg::giraffe {

/**
 * Proxy (miniGiraffe) run summary.  When `index` is given the summary
 * carries an "index" block: load mode (parsed vs mmap), load seconds,
 * per-section arena bytes, and the resident-vs-reserved footprint.
 */
std::string summaryJson(const ProxyOutputs& outputs,
                        const ProxyParams& params,
                        const io::IndexLoadInfo* index = nullptr);

/** Parent-emulator run summary (same optional index block). */
std::string summaryJson(const ParentOutputs& outputs,
                        const ParentParams& params,
                        const io::IndexLoadInfo* index = nullptr);

/** Checkpointed-run summary. */
std::string summaryJson(const CheckpointRunResult& result,
                        const CheckpointRunParams& params);

} // namespace mg::giraffe
