/**
 * @file
 * Mate rescue.  When one mate of a fragment maps confidently and the
 * other is unmapped — or mapped somewhere fragment-inconsistent (a repeat
 * placement, say) — Giraffe re-examines the weak mate *near its anchor*:
 * seeds are restricted to the window a plausible fragment allows, and the
 * restricted placement replaces the original when it completes a proper
 * pair.  This recovers pairs that global best-score mapping loses to
 * repeat ambiguity.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "giraffe/alignment.h"
#include "giraffe/pairing.h"
#include "index/minimizer.h"
#include "map/mapper.h"

namespace mg::giraffe {

/** Rescue knobs. */
struct RescueParams
{
    /** Seed-window half-width: fragment mean + this many stdevs. */
    double windowSigmas = 6.0;
    /** Give up if more seeds than this survive the window filter. */
    size_t maxWindowSeeds = 256;
};

/** Outcome counters. */
struct RescueStats
{
    size_t attempted = 0;
    size_t rescued = 0;
};

/**
 * Attempt rescue for every non-proper pair.  `alignments` and `pairs`
 * are updated in place (rescued mates get their new placement, pairs are
 * re-marked proper, and the proper-pair MAPQ bonus is applied).
 */
RescueStats rescuePairs(const map::Mapper& mapper,
                        const index::MinimizerIndex& minimizers,
                        const index::DistanceIndex& distance,
                        const map::ReadSet& reads,
                        std::vector<Alignment>& alignments,
                        std::vector<PairResult>& pairs,
                        map::MapperState& state,
                        const PairingParams& pairing,
                        const PostProcessParams& post,
                        const RescueParams& params = RescueParams());

} // namespace mg::giraffe
