#include "giraffe/rescue.h"

#include <algorithm>
#include <cmath>

#include "map/seeding.h"
#include "util/common.h"

namespace mg::giraffe {

namespace {

int64_t
alignmentCoordinate(const Alignment& alignment,
                    const index::DistanceIndex& distance)
{
    graph::Position pos;
    pos.handle = alignment.path.front();
    pos.offset = alignment.startOffset;
    return distance.chainCoordinate(pos);
}

} // namespace

RescueStats
rescuePairs(const map::Mapper& mapper,
            const index::MinimizerIndex& minimizers,
            const index::DistanceIndex& distance,
            const map::ReadSet& reads, std::vector<Alignment>& alignments,
            std::vector<PairResult>& pairs, map::MapperState& state,
            const PairingParams& pairing, const PostProcessParams& post,
            const RescueParams& params)
{
    FragmentModel model =
        estimateFragmentModel(reads, alignments, distance, pairing);
    double window = model.mean + params.windowSigmas * model.stdev;
    double frag_lo = model.mean - pairing.fragmentSigmas * model.stdev;
    double frag_hi = model.mean + pairing.fragmentSigmas * model.stdev;

    RescueStats stats;
    for (PairResult& pair : pairs) {
        if (pair.properPair) {
            continue;
        }
        const Alignment& first = alignments[pair.firstRead];
        const Alignment& second = alignments[pair.secondRead];
        if (!first.mapped && !second.mapped) {
            continue; // no anchor to rescue from
        }

        // Anchor = the confident mate; target = the one to re-place.
        size_t anchor_index;
        size_t target_index;
        if (first.mapped != second.mapped) {
            anchor_index = first.mapped ? pair.firstRead : pair.secondRead;
            target_index = first.mapped ? pair.secondRead : pair.firstRead;
        } else {
            bool first_weaker =
                first.mappingQuality <= second.mappingQuality;
            anchor_index = first_weaker ? pair.secondRead : pair.firstRead;
            target_index = first_weaker ? pair.firstRead : pair.secondRead;
        }
        const Alignment& anchor = alignments[anchor_index];
        const map::Read& target_read = reads.reads[target_index];
        ++stats.attempted;

        // Window filter: the target must sit within a plausible fragment
        // of the anchor, on the opposite strand.
        int64_t anchor_coord = alignmentCoordinate(anchor, distance);
        bool want_reverse = !anchor.onReverseRead;
        map::SeedVector seeds =
            map::findSeeds(minimizers, target_read,
                           mapper.params().seeding, state.tracer);
        map::SeedVector windowed;
        for (const map::Seed& seed : seeds) {
            if (seed.onReverseRead != want_reverse) {
                continue;
            }
            int64_t coord = distance.chainCoordinate(seed.position) -
                            static_cast<int64_t>(seed.readOffset);
            if (std::llabs(coord - anchor_coord) <=
                static_cast<int64_t>(window)) {
                windowed.push_back(seed);
            }
        }
        if (windowed.empty() || windowed.size() > params.maxWindowSeeds) {
            continue;
        }

        map::MapResult result =
            mapper.mapFromSeeds(target_read, windowed, state);
        Alignment candidate =
            postProcess(target_read.name, result.extensions, post);
        if (!candidate.mapped) {
            continue;
        }

        // Accept only if the rescued placement completes a proper pair.
        const Alignment& fwd =
            candidate.onReverseRead ? anchor : candidate;
        const Alignment& rev =
            candidate.onReverseRead ? candidate : anchor;
        if (fwd.onReverseRead || !rev.onReverseRead) {
            continue;
        }
        int64_t fragment =
            alignmentCoordinate(rev, distance) +
            static_cast<int64_t>(rev.length()) -
            alignmentCoordinate(fwd, distance);
        if (fragment <= 0 || static_cast<double>(fragment) < frag_lo ||
            static_cast<double>(fragment) > frag_hi) {
            continue;
        }

        alignments[target_index] = candidate;
        pair.bothMapped = true;
        pair.properPair = true;
        pair.observedFragment = fragment;
        auto boost = [&](Alignment& alignment) {
            int mapq =
                alignment.mappingQuality + pairing.properPairBonus;
            alignment.mappingQuality =
                static_cast<uint8_t>(std::min(mapq, 60));
        };
        boost(alignments[pair.firstRead]);
        boost(alignments[pair.secondRead]);
        ++stats.rescued;
    }
    return stats;
}

} // namespace mg::giraffe
