#include "giraffe/alignment.h"

#include <algorithm>

namespace mg::giraffe {

Alignment
postProcess(const std::string& read_name,
            const std::vector<map::GaplessExtension>& extensions,
            const PostProcessParams& params)
{
    Alignment alignment;
    alignment.readName = read_name;
    if (extensions.empty()) {
        return alignment;
    }

    // Extensions arrive best-first from the mapper; keep the survivors.
    std::vector<const map::GaplessExtension*> kept;
    int32_t best_score = extensions.front().score;
    double cutoff = static_cast<double>(best_score) * params.keepFraction;
    for (const map::GaplessExtension& ext : extensions) {
        if (static_cast<double>(ext.score) >= cutoff) {
            kept.push_back(&ext);
        }
    }

    const map::GaplessExtension& best = *kept.front();
    alignment.mapped = true;
    alignment.onReverseRead = best.onReverseRead;
    alignment.path.assign(best.path.begin(), best.path.end());
    alignment.startOffset = best.startOffset;
    alignment.readBegin = best.readBegin;
    alignment.readEnd = best.readEnd;
    alignment.mismatches =
        static_cast<uint32_t>(best.mismatchOffsets.size());
    alignment.score = best.score;

    // MAPQ: score gap to the best competing placement, capped.  A single
    // candidate gets the cap (unique placement).
    int32_t runner_up = kept.size() > 1 ? kept[1]->score
                                        : best.score - params.mapqCap;
    int32_t gap = best.score - runner_up;
    if (gap < 0) {
        gap = 0;
    }
    alignment.mappingQuality = static_cast<uint8_t>(
        std::min<int32_t>(gap, params.mapqCap));
    return alignment;
}

} // namespace mg::giraffe
