#include "giraffe/checkpoint_run.h"

#include <algorithm>

#include "io/gaf.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::giraffe {

namespace {

/** Stats delta of one freshly mapped shard. */
io::ShardStatsDelta
deltaOf(const ParentOutputs& outputs)
{
    io::ShardStatsDelta delta;
    delta.deadlineHits = outputs.resilience.deadlineHits;
    delta.stepCapHits = outputs.resilience.stepCapHits;
    delta.lookupCapHits = outputs.resilience.lookupCapHits;
    delta.watchdogCancels = outputs.resilience.watchdogCancels;
    delta.cacheLookups = outputs.cacheStats.lookups;
    delta.cacheHits = outputs.cacheStats.hits;
    delta.cacheDecodes = outputs.cacheStats.decodes;
    delta.cacheRehashes = outputs.cacheStats.rehashes;
    delta.cacheProbes = outputs.cacheStats.probes;
    return delta;
}

void
accumulateDelta(CheckpointRunResult& result, const io::ShardStatsDelta& d)
{
    result.resilience.deadlineHits += d.deadlineHits;
    result.resilience.stepCapHits += d.stepCapHits;
    result.resilience.lookupCapHits += d.lookupCapHits;
    result.resilience.watchdogCancels += d.watchdogCancels;
    result.cacheStats.lookups += d.cacheLookups;
    result.cacheStats.hits += d.cacheHits;
    result.cacheStats.decodes += d.cacheDecodes;
    result.cacheStats.rehashes += d.cacheRehashes;
    result.cacheStats.probes += d.cacheProbes;
}

} // namespace

CheckpointRunResult
runCheckpointed(const ParentEmulator& parent, const map::ReadSet& reads,
                const CheckpointRunParams& params)
{
    MG_CHECK(!reads.pairedEnd,
             "checkpointed runs support unpaired read sets only (pairing "
             "needs every mate mapped before it runs)");
    MG_CHECK(params.shardReads > 0, "shardReads must be positive");
    const uint64_t n = reads.size();

    util::WallTimer timer;
    CheckpointRunResult result;

    io::CheckpointState state;
    util::Status status = io::loadCheckpoint(params.dir, state);
    if (!status.ok()) {
        util::throwStatus(std::move(status)); // corrupt manifest: fatal
    }
    if (!state.manifest.shards.empty() || state.droppedShards > 0) {
        MG_CHECK(state.manifest.totalReads == n,
                 "checkpoint in ", params.dir, " is for ",
                 state.manifest.totalReads, " reads, input has ", n);
    }
    result.droppedShards = state.droppedShards;

    io::CheckpointWriter writer(params.dir, n);
    // A fresh directory loads as an empty manifest pinned to 0 reads;
    // claim it for this run before adopting.
    state.manifest.totalReads = n;
    writer.adopt(state.manifest);

    // Durable GAF spans in read order (the manifest keeps them sorted and
    // non-overlapping); the gaps between them are what this run maps.
    struct Span
    {
        uint64_t begin;
        uint64_t end;
        std::string gaf;
    };
    std::vector<Span> spans;
    spans.reserve(state.shards.size());
    for (io::Shard& shard : state.shards) {
        result.resumedReads += shard.end - shard.begin;
        accumulateDelta(result, shard.stats);
        spans.push_back(
            Span{ shard.begin, shard.end, std::move(shard.gaf) });
    }

    // Map every gap, one shard-sized chunk at a time, flushing each chunk
    // durably before starting the next — the work at risk at any instant
    // is bounded by one shard.
    auto map_chunk = [&](uint64_t begin, uint64_t end) {
        map::ReadSet chunk;
        chunk.reads.assign(reads.reads.begin() + static_cast<long>(begin),
                           reads.reads.begin() + static_cast<long>(end));
        ParentOutputs outputs =
            parent.run(chunk, nullptr, nullptr, params.hub);
        io::Shard shard;
        shard.begin = begin;
        shard.end = end;
        shard.gaf = io::formatGaf(outputs.alignments, chunk,
                                  parent.mapper().graph());
        shard.stats = deltaOf(outputs);
        writer.append(shard);

        result.mappedReads += end - begin;
        result.resilience.latency.merge(outputs.resilience.latency);
        accumulateDelta(result, shard.stats);
        // Rebase failure indices to the full read set.
        for (sched::BatchFailure failure : outputs.failures.batches) {
            failure.begin += begin;
            failure.end += begin;
            result.failures.batches.push_back(std::move(failure));
        }
        for (sched::ItemFailure item : outputs.failures.poisoned) {
            item.index += begin;
            result.failures.poisoned.push_back(std::move(item));
        }
        result.failures.retries += outputs.failures.retries;
        result.failures.watchdogCancels +=
            outputs.failures.watchdogCancels;
        spans.push_back(Span{ begin, end, std::move(shard.gaf) });
    };

    // Graceful stop is observed between shard flushes: the shard in
    // progress completes (and lands durably), later ones never start.
    auto stop_requested = [&params] {
        return params.stopFlag != nullptr &&
               params.stopFlag->load(std::memory_order_acquire);
    };
    uint64_t cursor = 0;
    for (const io::ManifestEntry& entry : state.manifest.shards) {
        for (uint64_t b = cursor;
             b < entry.begin && !stop_requested();
             b += params.shardReads) {
            map_chunk(b, std::min(b + params.shardReads, entry.begin));
        }
        if (stop_requested()) {
            break;
        }
        cursor = entry.end;
    }
    for (uint64_t b = cursor; b < n && !stop_requested();
         b += params.shardReads) {
        map_chunk(b, std::min(b + params.shardReads, n));
    }
    result.stopped = stop_requested();

    // Stitch: spans tile [0, n) exactly once; concatenating them in range
    // order is the uninterrupted run's GAF, byte for byte.  A stopped run
    // has durable holes instead — return the contiguous prefix (partial
    // by contract) and leave the rest to a later resume.
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin < b.begin; });
    uint64_t covered = 0;
    for (const Span& span : spans) {
        if (result.stopped && span.begin != covered) {
            break; // first hole of a stopped run ends the prefix
        }
        MG_CHECK(span.begin == covered,
                 "GAF span coverage gap at read ", covered);
        covered = span.end;
        result.gaf += span.gaf;
    }
    MG_CHECK(result.stopped || covered == n, "GAF spans cover ", covered,
             " of ", n, " reads");

    if (params.hub != nullptr) {
        const io::CheckpointWriter::FlushStats fs = writer.flushStats();
        obs::Registry::ThreadSlab* slab = params.hub->slab(0);
        const obs::CheckpointMetricIds& ids = params.hub->checkpoint();
        slab->add(ids.flushes, fs.flushes);
        slab->add(ids.flushBytes, fs.bytes);
        slab->add(ids.flushNanos, fs.nanos);
    }

    result.wallSeconds = timer.seconds();
    return result;
}

} // namespace mg::giraffe
