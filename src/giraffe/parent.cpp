#include "giraffe/parent.h"

#include <mutex>

#include "util/common.h"
#include "util/timer.h"

namespace mg::giraffe {

ParentEmulator::ParentEmulator(const graph::VariationGraph& graph,
                               const gbwt::Gbwt& gbwt,
                               const index::MinimizerIndex& minimizers,
                               const index::DistanceIndex& distance,
                               ParentParams params)
    : graph_(graph), gbwt_(gbwt), minimizers_(minimizers),
      distance_(distance), params_(params),
      mapper_(graph, gbwt, minimizers, distance, params.mapper)
{}

ParentOutputs
ParentEmulator::run(const map::ReadSet& reads, perf::Profiler* profiler,
                    util::MemTracer* tracer, obs::Hub* hub) const
{
    ParentOutputs outputs;
    const size_t n = reads.size();
    outputs.alignments.resize(n);
    outputs.extensions.resize(n);

    // Region ids (cheap to look up even when profiling is off).
    perf::RegionId region_score = 0;
    perf::RegionId region_align = 0;
    map::Mapper mapper = mapper_; // local copy to bind the profiler
    if (profiler) {
        mapper.bindProfiler(*profiler);
        region_score = profiler->regionId(perf::regions::kScoreExtensions);
        region_align = profiler->regionId(perf::regions::kAlign);
    }

    MG_CHECK(tracer == nullptr || params_.numThreads == 1,
             "memory tracing requires a single-threaded run");
    MG_CHECK(hub == nullptr ||
                 hub->flight().workers() >= params_.numThreads,
             "telemetry hub sized for ",
             hub == nullptr ? 0 : hub->flight().workers(),
             " workers, run uses ", params_.numThreads);

    // Lazily created per-thread state; the scheduler guarantees a dense
    // thread index below numThreads.  The run's deadline is absolute, so
    // late-created states inherit the same cutoff.
    const uint64_t deadline_nanos =
        params_.budget.wallSeconds > 0.0
            ? util::nowNanos() +
                  static_cast<uint64_t>(params_.budget.wallSeconds * 1e9)
            : 0;
    sched::HeartbeatBoard board(params_.numThreads);
    std::vector<std::unique_ptr<map::MapperState>> states(
        params_.numThreads);
    std::mutex state_mutex;
    auto thread_state = [&](size_t thread) -> map::MapperState& {
        MG_ASSERT(thread < states.size());
        if (!states[thread]) {
            std::lock_guard<std::mutex> lock(state_mutex);
            if (!states[thread]) {
                auto state = mapper.makeState(tracer);
                if (profiler) {
                    state->log = profiler->registerThread(thread);
                }
                state->budget.configure(
                    params_.budget, deadline_nanos,
                    params_.watchdog ? &board.slot(thread).token : nullptr);
                if (hub != nullptr) {
                    state->metrics = hub->slab(thread);
                    state->metricIds = &hub->map();
                    state->flight = hub->flight().ring(thread);
                }
                states[thread] = std::move(state);
            }
        }
        return *states[thread];
    };

    util::WallTimer timer;
    sched::Watchdog watchdog(board, params_.watchdogParams);
    if (hub != nullptr) {
        watchdog.attachFlightRecorder(&hub->flight());
    }
    if (params_.watchdog) {
        watchdog.start();
    }
    auto scheduler = sched::makeScheduler(params_.scheduler);
    sched::SchedStats sched_stats;
    scheduler->bindStats(&sched_stats);
    scheduler->bindStop(params_.stopFlag);
    outputs.failures = sched::runGuarded(
        *scheduler, n, params_.batchSize, params_.numThreads,
        [&](size_t thread, size_t begin, size_t end) {
        map::MapperState& state = thread_state(thread);
        board.beginBatch(thread, begin, end);
        // Snapshot so a failed attempt contributes nothing to the final
        // counters: runGuarded retries/bisects a throwing batch, and
        // without the restore the partial work before the throw would be
        // double-counted by the retry.
        const map::MapperState::StatsSnapshot snapshot =
            state.statsSnapshot();
        util::WallTimer batch_timer;
        try {
            for (size_t i = begin; i < end; ++i) {
                board.beat(thread);
                if (state.flight != nullptr) {
                    state.flight->begin(i);
                }
                const map::Read& read = reads.reads[i];
                // Preprocessing + critical functions (instrumented inside).
                map::MapResult result = mapper.mapRead(read, state);

                // Post-processing: score/filter extensions, emit alignment.
                {
                    perf::ScopedRegion region(state.log, region_score);
                    outputs.extensions[i].readName = read.name;
                    outputs.extensions[i].extensions = result.extensions;
                }
                {
                    perf::ScopedRegion region(state.log, region_align);
                    outputs.alignments[i] = postProcess(
                        read.name, result.extensions, params_.post);
                    outputs.alignments[i].degraded = result.degraded;
                }
                if (state.flight != nullptr) {
                    state.flight->done();
                }
            }
        } catch (...) {
            state.restoreStats(snapshot);
            board.endBatch(thread);
            throw;
        }
        // Only a *completed* batch publishes: its buffered funnel counts
        // flush to the live slab and its latency lands in the histogram.
        if (state.metrics != nullptr && hub != nullptr) {
            state.flushMetrics();
            state.metrics->add(hub->sched().batches);
            state.metrics->observe(hub->sched().batchLatency,
                                   batch_timer.nanos());
        }
        board.endBatch(thread);
    });
    watchdog.stop();
    outputs.failures.watchdogCancels = watchdog.events().size();
    outputs.watchdogEvents = watchdog.events();
    outputs.stopped = params_.stopFlag != nullptr &&
                      params_.stopFlag->load(std::memory_order_acquire);
    if (outputs.stopped) {
        // Batches the stop flag kept from dispatching left their slots
        // default-constructed; name them so the GAF still carries one
        // record per read (rendered unmapped, like quarantined reads).
        for (size_t i = 0; i < n; ++i) {
            if (outputs.alignments[i].readName.empty()) {
                outputs.alignments[i].readName = reads.reads[i].name;
                outputs.extensions[i].readName = reads.reads[i].name;
            }
        }
    }

    // Quarantined reads stay in the output as named unmapped records (the
    // GAF writer renders them with '*' placeholders) so one poisoned read
    // cannot abort — or silently vanish from — a whole mapping run.
    for (const sched::ItemFailure& item : outputs.failures.poisoned) {
        const map::Read& read = reads.reads[item.index];
        outputs.alignments[item.index] = Alignment{};
        outputs.alignments[item.index].readName = read.name;
        outputs.extensions[item.index] = {};
        outputs.extensions[item.index].readName = read.name;
    }

    // Paired-end workflow: the pairing stage runs after both mates of
    // every fragment are mapped (input sets C and D of the paper), and
    // mate rescue re-places the weak mate of non-proper pairs.
    if (reads.pairedEnd) {
        outputs.pairs = pairAlignments(reads, outputs.alignments,
                                       distance_, params_.pairing);
        if (params_.mateRescue) {
            outputs.rescue = rescuePairs(
                mapper, minimizers_, distance_, reads, outputs.alignments,
                outputs.pairs, thread_state(0), params_.pairing,
                params_.post, params_.rescue);
        }
    }
    outputs.wallSeconds = timer.seconds();

    for (const auto& state : states) {
        if (!state) {
            continue;
        }
        outputs.cacheStats.accumulate(state->totalStats());
        outputs.resilience.accumulate(state->resilience);
        // The pairing/rescue stage works on thread_state(0) outside any
        // batch, so its funnel counts are still buffered here.
        state->flushMetrics();
    }
    if (hub != nullptr) {
        // Run-level counters are folded into slab 0 once the scheduler
        // is done — they come from the failure report and the policy's
        // stats, not from any single worker.
        obs::Registry::ThreadSlab* slab = hub->slab(0);
        const obs::SchedMetricIds& ids = hub->sched();
        slab->add(ids.retries, outputs.failures.retries);
        slab->add(ids.quarantined, outputs.failures.poisoned.size());
        slab->add(ids.batchFailures, outputs.failures.batches.size());
        slab->add(ids.watchdogCancels,
                  outputs.failures.watchdogCancels);
        slab->add(ids.steals, sched_stats.steals.load());
        slab->raise(ids.queueDepthPeak,
                    sched_stats.queueDepthPeak.load());
        slab->add(hub->map().rescueAttempts, outputs.rescue.attempted);
        slab->add(hub->map().rescueHits, outputs.rescue.rescued);
    }
    return outputs;
}

io::SeedCapture
ParentEmulator::capturePreprocessing(const map::ReadSet& reads) const
{
    io::SeedCapture capture;
    capture.pairedEnd = reads.pairedEnd;
    capture.entries.reserve(reads.size());
    for (const map::Read& read : reads.reads) {
        io::ReadWithSeeds entry;
        entry.read = read;
        entry.seeds =
            map::findSeeds(minimizers_, read, params_.mapper.seeding);
        capture.entries.push_back(std::move(entry));
    }
    return capture;
}

} // namespace mg::giraffe
