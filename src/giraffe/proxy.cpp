#include "giraffe/proxy.h"

#include <mutex>

#include "util/common.h"
#include "util/timer.h"

namespace mg::giraffe {

ProxyRunner::ProxyRunner(const graph::VariationGraph& graph,
                         const gbwt::Gbwt& gbwt,
                         const index::DistanceIndex& distance,
                         ProxyParams params)
    : graph_(graph), gbwt_(gbwt), distance_(distance), params_(params),
      mapper_(graph, gbwt, emptyMinimizers_, distance, params.mapper)
{}

ProxyOutputs
ProxyRunner::run(const io::SeedCapture& capture, perf::Profiler* profiler,
                 util::MemTracer* tracer) const
{
    ProxyOutputs outputs;
    const size_t n = capture.entries.size();
    outputs.extensions.resize(n);
    outputs.readsMapped = n;

    map::Mapper mapper = mapper_;
    if (profiler) {
        mapper.bindProfiler(*profiler);
    }
    MG_CHECK(tracer == nullptr || params_.numThreads == 1,
             "memory tracing requires a single-threaded run");

    const uint64_t deadline_nanos =
        params_.budget.wallSeconds > 0.0
            ? util::nowNanos() +
                  static_cast<uint64_t>(params_.budget.wallSeconds * 1e9)
            : 0;
    sched::HeartbeatBoard board(params_.numThreads);
    std::vector<std::unique_ptr<map::MapperState>> states(
        params_.numThreads);
    std::mutex state_mutex;
    auto thread_state = [&](size_t thread) -> map::MapperState& {
        MG_ASSERT(thread < states.size());
        if (!states[thread]) {
            std::lock_guard<std::mutex> lock(state_mutex);
            if (!states[thread]) {
                auto state = mapper.makeState(tracer);
                if (profiler) {
                    state->log = profiler->registerThread(thread);
                }
                state->budget.configure(
                    params_.budget, deadline_nanos,
                    params_.watchdog ? &board.slot(thread).token : nullptr);
                states[thread] = std::move(state);
            }
        }
        return *states[thread];
    };

    // The mapping loop: nested iteration over reads and their seeds, the
    // outer loop parallelized by the selected scheduler (Section V).
    util::WallTimer timer;
    sched::Watchdog watchdog(board, params_.watchdogParams);
    if (params_.watchdog) {
        watchdog.start();
    }
    auto scheduler = sched::makeScheduler(params_.scheduler);
    outputs.failures = sched::runGuarded(
        *scheduler, n, params_.batchSize, params_.numThreads,
        [&](size_t thread, size_t begin, size_t end) {
        map::MapperState& state = thread_state(thread);
        board.beginBatch(thread, begin, end);
        // Snapshot/restore so a failed attempt contributes nothing: the
        // scheduler retries or bisects a throwing batch, and the retry
        // would double-count the partial work done before the throw.
        const map::MapperState::StatsSnapshot snapshot =
            state.statsSnapshot();
        try {
            for (size_t i = begin; i < end; ++i) {
                board.beat(thread);
                const io::ReadWithSeeds& entry = capture.entries[i];
                map::MapResult result =
                    mapper.mapFromSeeds(entry.read, entry.seeds, state);
                outputs.extensions[i].readName = entry.read.name;
                outputs.extensions[i].extensions =
                    std::move(result.extensions);
            }
        } catch (...) {
            state.restoreStats(snapshot);
            board.endBatch(thread);
            throw;
        }
        board.endBatch(thread);
    });
    watchdog.stop();
    outputs.failures.watchdogCancels = watchdog.events().size();

    // Quarantined reads keep their name in the dump (with no extensions)
    // so the functional validation sees them as missing, not absent.
    for (const sched::ItemFailure& item : outputs.failures.poisoned) {
        outputs.extensions[item.index] = {};
        outputs.extensions[item.index].readName =
            capture.entries[item.index].read.name;
        --outputs.readsMapped;
    }
    outputs.wallSeconds = timer.seconds();

    for (const auto& state : states) {
        if (!state) {
            continue;
        }
        const gbwt::CacheStats stats = state->totalStats();
        outputs.cacheStats.lookups += stats.lookups;
        outputs.cacheStats.hits += stats.hits;
        outputs.cacheStats.decodes += stats.decodes;
        outputs.cacheStats.rehashes += stats.rehashes;
        outputs.cacheStats.probes += stats.probes;
        outputs.resilience.accumulate(state->resilience);
    }
    return outputs;
}

} // namespace mg::giraffe
