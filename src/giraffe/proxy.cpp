#include "giraffe/proxy.h"

#include <mutex>

#include "util/common.h"
#include "util/timer.h"

namespace mg::giraffe {

ProxyRunner::ProxyRunner(const graph::VariationGraph& graph,
                         const gbwt::Gbwt& gbwt,
                         const index::DistanceIndex& distance,
                         ProxyParams params)
    : graph_(graph), gbwt_(gbwt), distance_(distance), params_(params),
      mapper_(graph, gbwt, emptyMinimizers_, distance, params.mapper)
{}

ProxyOutputs
ProxyRunner::run(const io::SeedCapture& capture, perf::Profiler* profiler,
                 util::MemTracer* tracer, obs::Hub* hub) const
{
    ProxyOutputs outputs;
    const size_t n = capture.entries.size();
    outputs.extensions.resize(n);
    outputs.readsMapped = n;

    map::Mapper mapper = mapper_;
    if (profiler) {
        mapper.bindProfiler(*profiler);
    }
    MG_CHECK(tracer == nullptr || params_.numThreads == 1,
             "memory tracing requires a single-threaded run");
    MG_CHECK(hub == nullptr ||
                 hub->flight().workers() >= params_.numThreads,
             "telemetry hub sized for ",
             hub == nullptr ? 0 : hub->flight().workers(),
             " workers, run uses ", params_.numThreads);

    const uint64_t deadline_nanos =
        params_.budget.wallSeconds > 0.0
            ? util::nowNanos() +
                  static_cast<uint64_t>(params_.budget.wallSeconds * 1e9)
            : 0;
    sched::HeartbeatBoard board(params_.numThreads);
    std::vector<std::unique_ptr<map::MapperState>> states(
        params_.numThreads);
    std::mutex state_mutex;
    auto thread_state = [&](size_t thread) -> map::MapperState& {
        MG_ASSERT(thread < states.size());
        if (!states[thread]) {
            std::lock_guard<std::mutex> lock(state_mutex);
            if (!states[thread]) {
                auto state = mapper.makeState(tracer);
                if (profiler) {
                    state->log = profiler->registerThread(thread);
                }
                state->budget.configure(
                    params_.budget, deadline_nanos,
                    params_.watchdog ? &board.slot(thread).token : nullptr);
                if (hub != nullptr) {
                    state->metrics = hub->slab(thread);
                    state->metricIds = &hub->map();
                    state->flight = hub->flight().ring(thread);
                }
                states[thread] = std::move(state);
            }
        }
        return *states[thread];
    };

    // The mapping loop: nested iteration over reads and their seeds, the
    // outer loop parallelized by the selected scheduler (Section V).
    util::WallTimer timer;
    sched::Watchdog watchdog(board, params_.watchdogParams);
    if (hub != nullptr) {
        watchdog.attachFlightRecorder(&hub->flight());
    }
    if (params_.watchdog) {
        watchdog.start();
    }
    auto scheduler = sched::makeScheduler(params_.scheduler);
    sched::SchedStats sched_stats;
    scheduler->bindStats(&sched_stats);
    scheduler->bindStop(params_.stopFlag);
    outputs.failures = sched::runGuarded(
        *scheduler, n, params_.batchSize, params_.numThreads,
        [&](size_t thread, size_t begin, size_t end) {
        map::MapperState& state = thread_state(thread);
        board.beginBatch(thread, begin, end);
        // Snapshot/restore so a failed attempt contributes nothing: the
        // scheduler retries or bisects a throwing batch, and the retry
        // would double-count the partial work done before the throw.
        const map::MapperState::StatsSnapshot snapshot =
            state.statsSnapshot();
        util::WallTimer batch_timer;
        try {
            for (size_t i = begin; i < end; ++i) {
                board.beat(thread);
                if (state.flight != nullptr) {
                    state.flight->begin(i);
                }
                const io::ReadWithSeeds& entry = capture.entries[i];
                map::MapResult result =
                    mapper.mapFromSeeds(entry.read, entry.seeds, state);
                outputs.extensions[i].readName = entry.read.name;
                outputs.extensions[i].extensions =
                    std::move(result.extensions);
                if (state.flight != nullptr) {
                    state.flight->done();
                }
            }
        } catch (...) {
            state.restoreStats(snapshot);
            board.endBatch(thread);
            throw;
        }
        // Only a *completed* batch publishes: its buffered funnel counts
        // flush to the live slab and its latency lands in the histogram.
        if (state.metrics != nullptr && hub != nullptr) {
            state.flushMetrics();
            state.metrics->add(hub->sched().batches);
            state.metrics->observe(hub->sched().batchLatency,
                                   batch_timer.nanos());
        }
        board.endBatch(thread);
    });
    watchdog.stop();
    outputs.failures.watchdogCancels = watchdog.events().size();
    outputs.watchdogEvents = watchdog.events();
    outputs.stopped = params_.stopFlag != nullptr &&
                      params_.stopFlag->load(std::memory_order_acquire);
    if (outputs.stopped) {
        // Chunks the stop flag kept from dispatching left their slots
        // default-constructed; name them so the dump still carries one
        // record per read (seen as missing, not absent).
        for (size_t i = 0; i < n; ++i) {
            if (outputs.extensions[i].readName.empty()) {
                outputs.extensions[i].readName =
                    capture.entries[i].read.name;
            }
        }
    }

    // Quarantined reads keep their name in the dump (with no extensions)
    // so the functional validation sees them as missing, not absent.
    for (const sched::ItemFailure& item : outputs.failures.poisoned) {
        outputs.extensions[item.index] = {};
        outputs.extensions[item.index].readName =
            capture.entries[item.index].read.name;
        --outputs.readsMapped;
    }
    outputs.wallSeconds = timer.seconds();

    for (const auto& state : states) {
        if (!state) {
            continue;
        }
        outputs.cacheStats.accumulate(state->totalStats());
        outputs.resilience.accumulate(state->resilience);
        state->flushMetrics(); // leftovers (nothing in steady state)
    }
    if (hub != nullptr) {
        // Run-level counters are folded into slab 0 once the scheduler
        // is done — they come from the failure report and the policy's
        // stats, not from any single worker.
        obs::Registry::ThreadSlab* slab = hub->slab(0);
        const obs::SchedMetricIds& ids = hub->sched();
        slab->add(ids.retries, outputs.failures.retries);
        slab->add(ids.quarantined, outputs.failures.poisoned.size());
        slab->add(ids.batchFailures, outputs.failures.batches.size());
        slab->add(ids.watchdogCancels,
                  outputs.failures.watchdogCancels);
        slab->add(ids.steals, sched_stats.steals.load());
        slab->raise(ids.queueDepthPeak,
                    sched_stats.queueDepthPeak.load());
    }
    return outputs;
}

} // namespace mg::giraffe
