/**
 * @file
 * The miniGiraffe proxy runner: the critical functions only, driven from a
 * preprocessing capture (reads + seeds), exactly as the paper's proxy
 * consumes its sequence-seeds.bin input.  The runner exposes the three
 * tuning parameters of Section VII-B — scheduler, batch size, and initial
 * CachedGBWT capacity — and reports makespan (end-to-end wall clock) plus
 * cache statistics for the autotuning harness.
 */
#pragma once

#include <memory>
#include <vector>

#include "gbwt/cached_gbwt.h"
#include "io/extensions_io.h"
#include "io/reads_bin.h"
#include "map/mapper.h"
#include "obs/hub.h"
#include "perf/profiler.h"
#include "resilience/budget.h"
#include "sched/failure.h"
#include "sched/scheduler.h"
#include "sched/watchdog.h"
#include "util/mem_tracer.h"

namespace mg::giraffe {

/** The proxy's run configuration (the paper's tuning space). */
struct ProxyParams
{
    map::MapperParams mapper;
    /** miniGiraffe's default scheduler is OpenMP dynamic. */
    sched::SchedulerKind scheduler = sched::SchedulerKind::OmpDynamic;
    size_t batchSize = 512;
    size_t numThreads = 1;
    /** Work limits (deadline + per-read caps); default is unlimited. */
    resilience::WorkBudget budget;
    /** Supervise workers with a watchdog thread. */
    bool watchdog = false;
    sched::WatchdogParams watchdogParams;
    /** Graceful-stop flag (SIGTERM/SIGINT): once set, no new batch is
     *  dispatched; running batches finish.  Null disables. */
    const std::atomic<bool>* stopFlag = nullptr;
};

/** Outputs of one proxy run. */
struct ProxyOutputs
{
    /** Raw mapping results: offsets and scores of each match. */
    std::vector<io::ReadExtensions> extensions;
    gbwt::CacheStats cacheStats;
    /** Batch failures, recoveries, and quarantined reads of the run.
     *  Quarantined reads keep their name but carry no extensions. */
    sched::FailureReport failures;
    /** Degradation counters + per-read latency over all worker threads. */
    resilience::ResilienceStats resilience;
    /** Watchdog cancellations with flight-recorder context (when a hub
     *  with a recorder was attached), in detection order. */
    std::vector<sched::WatchdogEvent> watchdogEvents;
    /** Makespan (wall-clock seconds of the mapping loop). */
    double wallSeconds = 0.0;
    /** Reads that produced a mapping attempt (quarantined reads excluded). */
    uint64_t readsMapped = 0;
    /** The stop flag fired during the run. */
    bool stopped = false;
};

/** miniGiraffe: maps a capture through the critical functions. */
class ProxyRunner
{
  public:
    ProxyRunner(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
                const index::DistanceIndex& distance, ProxyParams params);

    const ProxyParams& params() const { return params_; }

    /**
     * Map every read of the capture.
     * @param profiler Optional region instrumentation.
     * @param tracer Optional memory tracer (single-threaded runs only).
     * @param hub Optional telemetry hub (live metrics + flight recorder);
     *        must be sized for at least numThreads workers.
     */
    ProxyOutputs run(const io::SeedCapture& capture,
                     perf::Profiler* profiler = nullptr,
                     util::MemTracer* tracer = nullptr,
                     obs::Hub* hub = nullptr) const;

  private:
    const graph::VariationGraph& graph_;
    const gbwt::Gbwt& gbwt_;
    const index::DistanceIndex& distance_;
    ProxyParams params_;
    /** The proxy never seeds, but the mapper needs an index reference; an
     *  empty index satisfies the dependency without being queried. */
    index::MinimizerIndex emptyMinimizers_;
    map::Mapper mapper_;
};

} // namespace mg::giraffe
