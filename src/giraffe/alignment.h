/**
 * @file
 * Post-processed alignments — the *parent application's* final output.
 * Giraffe refines the raw extensions: low-scoring extensions are discarded,
 * the best candidate becomes the alignment, and a mapping quality is
 * assigned (Section IV-B's post-processing phase).  The proxy deliberately
 * omits all of this (its output is the raw extensions), which is exactly
 * the boundary the paper draws.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/handle.h"
#include "map/extension.h"
#include "resilience/budget.h"

namespace mg::giraffe {

/** One read's final alignment (or an unmapped marker). */
struct Alignment
{
    std::string readName;
    bool mapped = false;
    bool onReverseRead = false;
    /** Walk of the winning extension. */
    std::vector<graph::Handle> path;
    uint32_t startOffset = 0;
    uint32_t readBegin = 0;
    uint32_t readEnd = 0;
    /** Mismatching bases within the aligned interval. */
    uint32_t mismatches = 0;
    int32_t score = 0;
    /** Phred-scaled mapping quality in [0, 60]. */
    uint8_t mappingQuality = 0;
    /**
     * Why the mapping was cut short (None when it ran to completion).
     * A degraded alignment is best-so-far, not best-possible; the GAF
     * writer tags it dg:Z:<reason>.  Unmapped degraded reads carry the
     * reason on the unmapped record (unmapped-with-reason fallback).
     */
    resilience::CancelReason degraded = resilience::CancelReason::None;

    uint32_t length() const { return readEnd - readBegin; }
    uint32_t matches() const { return length() - mismatches; }
};

/** Post-processing knobs. */
struct PostProcessParams
{
    /** Drop extensions scoring below best * this fraction. */
    double keepFraction = 0.8;
    /** MAPQ cap (Giraffe caps at 60). */
    uint8_t mapqCap = 60;
};

/**
 * Score, filter, and convert a read's extensions into its alignment.
 * Deterministic: ties break on the extensions' canonical order.
 */
Alignment postProcess(const std::string& read_name,
                      const std::vector<map::GaplessExtension>& extensions,
                      const PostProcessParams& params);

} // namespace mg::giraffe
