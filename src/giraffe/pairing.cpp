#include "giraffe/pairing.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace mg::giraffe {

namespace {

/** Chain coordinate of an alignment's first aligned base. */
int64_t
alignmentCoordinate(const Alignment& alignment,
                    const index::DistanceIndex& distance)
{
    MG_ASSERT(alignment.mapped && !alignment.path.empty());
    graph::Position pos;
    pos.handle = alignment.path.front();
    pos.offset = alignment.startOffset;
    return distance.chainCoordinate(pos);
}

/**
 * Observed fragment length of a mapped pair, or -1 when the orientations
 * are not opposite (the hallmark of one contiguous sequenced fragment).
 */
int64_t
observedFragment(const Alignment& a, const Alignment& b,
                 const index::DistanceIndex& distance)
{
    if (a.onReverseRead == b.onReverseRead) {
        return -1;
    }
    const Alignment& forward = a.onReverseRead ? b : a;
    const Alignment& reverse = a.onReverseRead ? a : b;
    int64_t start = alignmentCoordinate(forward, distance);
    int64_t end = alignmentCoordinate(reverse, distance) +
                  static_cast<int64_t>(reverse.readEnd -
                                       reverse.readBegin);
    return end - start;
}

} // namespace

FragmentModel
estimateFragmentModel(const map::ReadSet& reads,
                      const std::vector<Alignment>& alignments,
                      const index::DistanceIndex& distance,
                      const PairingParams& params)
{
    MG_CHECK(alignments.size() == reads.size(),
             "alignments and reads disagree in length");
    std::vector<double> fragments;
    for (size_t i = 0; i < reads.size(); ++i) {
        size_t mate = reads.reads[i].mate;
        if (mate == SIZE_MAX || mate < i) {
            continue; // unpaired, or counted when visiting the mate
        }
        const Alignment& a = alignments[i];
        const Alignment& b = alignments[mate];
        if (!a.mapped || !b.mapped) {
            continue;
        }
        int64_t fragment = observedFragment(a, b, distance);
        // Sanity window: wildly long "fragments" are mismapped pairs and
        // would poison the estimate.
        if (fragment > 0 && fragment < 100000) {
            fragments.push_back(static_cast<double>(fragment));
        }
    }

    FragmentModel model;
    model.samples = fragments.size();
    if (fragments.size() < params.minModelPairs) {
        model.mean = params.fallbackMean;
        model.stdev = params.fallbackStdev;
        return model;
    }
    // Robust estimation (median + scaled MAD): repeat-confused pairs
    // contribute wild outliers that would poison a mean/stdev fit.
    std::sort(fragments.begin(), fragments.end());
    model.mean = fragments[fragments.size() / 2];
    std::vector<double> deviations;
    deviations.reserve(fragments.size());
    for (double f : fragments) {
        deviations.push_back(std::fabs(f - model.mean));
    }
    std::sort(deviations.begin(), deviations.end());
    // 1.4826 * MAD estimates sigma for normally distributed inliers.
    model.stdev = 1.4826 * deviations[deviations.size() / 2];
    // Degenerate spread still needs a tolerance window.
    model.stdev = std::max(model.stdev, 1.0);
    return model;
}

std::vector<PairResult>
pairAlignments(const map::ReadSet& reads,
               std::vector<Alignment>& alignments,
               const index::DistanceIndex& distance,
               const PairingParams& params)
{
    FragmentModel model =
        estimateFragmentModel(reads, alignments, distance, params);
    double lo = model.mean - params.fragmentSigmas * model.stdev;
    double hi = model.mean + params.fragmentSigmas * model.stdev;

    std::vector<PairResult> results;
    for (size_t i = 0; i < reads.size(); ++i) {
        size_t mate = reads.reads[i].mate;
        if (mate == SIZE_MAX || mate < i) {
            continue;
        }
        PairResult result;
        result.firstRead = i;
        result.secondRead = mate;
        Alignment& a = alignments[i];
        Alignment& b = alignments[mate];
        result.bothMapped = a.mapped && b.mapped;
        if (result.bothMapped) {
            int64_t fragment = observedFragment(a, b, distance);
            result.observedFragment = fragment;
            result.properPair =
                fragment > 0 && static_cast<double>(fragment) >= lo &&
                static_cast<double>(fragment) <= hi;
            if (result.properPair) {
                auto boost = [&](Alignment& alignment) {
                    int mapq = alignment.mappingQuality +
                               params.properPairBonus;
                    alignment.mappingQuality =
                        static_cast<uint8_t>(std::min(mapq, 60));
                };
                boost(a);
                boost(b);
            }
        }
        results.push_back(result);
    }
    return results;
}

} // namespace mg::giraffe
