/**
 * @file
 * Paired-end pairing stage.  Giraffe's paired workflow (input sets C and D
 * of the paper) maps both mates and then checks that the two placements
 * are consistent with one sequenced fragment: opposite strands, correct
 * ordering, and a plausible fragment length.  Consistent pairs gain
 * mapping confidence; inconsistent ones are flagged so downstream tools
 * can rescue or discard them.
 *
 * The fragment-length model is estimated from the confidently mapped
 * pairs themselves (as Giraffe does on the fly), using the distance
 * index's chain coordinates for the graph distance between mates.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "giraffe/alignment.h"
#include "index/distance.h"
#include "map/read.h"

namespace mg::giraffe {

/** Pairing knobs. */
struct PairingParams
{
    /** Accept fragment lengths within this many standard deviations. */
    double fragmentSigmas = 4.0;
    /** Minimum confident pairs needed to estimate the fragment model. */
    size_t minModelPairs = 16;
    /** Fallback fragment mean/stdev when estimation lacks data. */
    double fallbackMean = 400.0;
    double fallbackStdev = 80.0;
    /** MAPQ bonus applied to properly paired alignments (capped at 60). */
    int properPairBonus = 10;
};

/** Pairing verdict for one read pair. */
struct PairResult
{
    size_t firstRead = 0;
    size_t secondRead = 0;
    bool bothMapped = false;
    bool properPair = false;
    /** Signed graph distance between the mates' start coordinates. */
    int64_t observedFragment = 0;
};

/** Estimated fragment-length distribution. */
struct FragmentModel
{
    double mean = 0.0;
    double stdev = 0.0;
    size_t samples = 0;
};

/**
 * Estimate the fragment-length model from mapped pairs (strand-consistent
 * placements only).  Falls back to the configured prior when fewer than
 * minModelPairs samples are available.
 */
FragmentModel estimateFragmentModel(
    const map::ReadSet& reads, const std::vector<Alignment>& alignments,
    const index::DistanceIndex& distance, const PairingParams& params);

/**
 * Pair up mates: evaluates every (i, mate(i)) pair once, marks proper
 * pairs, and applies the MAPQ bonus to both mates of proper pairs
 * in `alignments`.
 */
std::vector<PairResult> pairAlignments(
    const map::ReadSet& reads, std::vector<Alignment>& alignments,
    const index::DistanceIndex& distance, const PairingParams& params);

} // namespace mg::giraffe
