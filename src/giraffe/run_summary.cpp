#include "giraffe/run_summary.h"

#include "machine/host.h"
#include "obs/json.h"
#include "sched/scheduler.h"
#include "util/simd.h"

namespace mg::giraffe {

namespace {

/**
 * Host-CPU + match-kernel block: which wide ISA this machine offers and
 * what the requested kernel variant resolved to.  Every summary carries
 * it so fleet-wide result files stay attributable to the code path that
 * produced them.
 */
void
writeHostKernel(obs::JsonWriter& w, util::KernelVariant requested)
{
    const machine::HostCpu& host = machine::hostCpu();
    w.key("cpu").beginObject();
    w.field("arch", host.arch);
    w.field("features", host.features);
    w.field("simd", util::simdLevelName(host.bestLevel));
    w.endObject();
    const util::ResolvedKernel kernel = util::resolveKernel(requested);
    w.key("kernel").beginObject();
    w.field("requested", util::kernelVariantName(kernel.requested));
    w.field("effective", util::kernelVariantName(kernel.effective));
    w.field("simd_level", util::simdLevelName(kernel.level));
    w.endObject();
}

/** Failure-isolation block, present in every summary. */
void
writeFailures(obs::JsonWriter& w, const sched::FailureReport& failures)
{
    w.key("failures").beginObject();
    w.field("retries", static_cast<uint64_t>(failures.retries));
    w.field("quarantined", static_cast<uint64_t>(failures.poisoned.size()));
    w.field("batch_failures",
            static_cast<uint64_t>(failures.batches.size()));
    w.field("watchdog_cancels",
            static_cast<uint64_t>(failures.watchdogCancels));
    w.endObject();
}

void
writeResilience(obs::JsonWriter& w,
                const resilience::ResilienceStats& stats)
{
    w.key("resilience").beginObject();
    w.field("deadline_hits", stats.deadlineHits);
    w.field("step_cap_hits", stats.stepCapHits);
    w.field("lookup_cap_hits", stats.lookupCapHits);
    w.field("watchdog_cancels", stats.watchdogCancels);
    w.key("read_latency_ns").beginObject();
    w.field("count", stats.latency.count());
    w.field("mean", stats.latency.meanNanos());
    w.field("p50", stats.latency.p50());
    w.field("p99", stats.latency.p99());
    w.field("p999", stats.latency.p999());
    w.endObject();
    w.endObject();
}

void
writeCache(obs::JsonWriter& w, const gbwt::CacheStats& stats)
{
    w.key("gbwt_cache").beginObject();
    w.field("lookups", stats.lookups);
    w.field("hits", stats.hits);
    w.field("hit_rate", stats.hitRate());
    w.field("decodes", stats.decodes);
    w.field("rehashes", stats.rehashes);
    w.field("probes", stats.probes);
    w.field("recycles", stats.recycles);
    w.endObject();
}

/**
 * Startup accounting: how the pangenome got into memory.  The section
 * list reports *logical* arena sizes, identical whether the arenas were
 * parsed onto the heap or mapped out of an MGZ v3 container, so summaries
 * from both modes diff cleanly.
 */
void
writeIndexInfo(obs::JsonWriter& w, const io::IndexLoadInfo& index)
{
    w.key("index").beginObject();
    w.field("load_mode", io::loadModeName(index.mode));
    w.field("load_seconds", index.loadSeconds);
    w.field("file_bytes", index.fileBytes);
    w.field("mapped_bytes", index.mappedBytes);
    w.field("resident_bytes", index.residentBytes);
    w.field("heap_bytes", index.heapBytes);
    w.key("sections").beginObject();
    for (const auto& [name, bytes] : index.sections) {
        w.field(name, bytes);
    }
    w.endObject();
    w.endObject();
}

} // namespace

std::string
summaryJson(const ProxyOutputs& outputs, const ProxyParams& params,
            const io::IndexLoadInfo* index)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("kind", "proxy");
    w.field("scheduler", sched::schedulerName(params.scheduler));
    w.field("threads", static_cast<uint64_t>(params.numThreads));
    w.field("batch_size", static_cast<uint64_t>(params.batchSize));
    w.field("cache_capacity",
            static_cast<uint64_t>(params.mapper.gbwtCacheCapacity));
    w.field("wall_seconds", outputs.wallSeconds);
    w.field("reads_mapped", outputs.readsMapped);
    uint64_t total_extensions = 0;
    for (const io::ReadExtensions& entry : outputs.extensions) {
        total_extensions += entry.extensions.size();
    }
    w.field("extensions", total_extensions);
    w.field("stopped", outputs.stopped);
    if (index != nullptr) {
        writeIndexInfo(w, *index);
    }
    writeHostKernel(w, params.mapper.extend.kernel);
    writeCache(w, outputs.cacheStats);
    writeResilience(w, outputs.resilience);
    writeFailures(w, outputs.failures);
    w.endObject();
    return w.str();
}

std::string
summaryJson(const ParentOutputs& outputs, const ParentParams& params,
            const io::IndexLoadInfo* index)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("kind", "parent");
    w.field("scheduler", sched::schedulerName(params.scheduler));
    w.field("threads", static_cast<uint64_t>(params.numThreads));
    w.field("batch_size", static_cast<uint64_t>(params.batchSize));
    w.field("wall_seconds", outputs.wallSeconds);
    w.field("reads", static_cast<uint64_t>(outputs.alignments.size()));
    uint64_t mapped = 0;
    for (const Alignment& alignment : outputs.alignments) {
        if (alignment.mapped) {
            ++mapped;
        }
    }
    w.field("reads_mapped", mapped);
    w.field("stopped", outputs.stopped);
    if (!outputs.pairs.empty()) {
        uint64_t proper = 0;
        for (const PairResult& pair : outputs.pairs) {
            if (pair.properPair) {
                ++proper;
            }
        }
        w.key("pairing").beginObject();
        w.field("pairs", static_cast<uint64_t>(outputs.pairs.size()));
        w.field("proper", proper);
        w.field("rescue_attempts",
                static_cast<uint64_t>(outputs.rescue.attempted));
        w.field("rescue_hits",
                static_cast<uint64_t>(outputs.rescue.rescued));
        w.endObject();
    }
    if (index != nullptr) {
        writeIndexInfo(w, *index);
    }
    writeHostKernel(w, params.mapper.extend.kernel);
    writeCache(w, outputs.cacheStats);
    writeResilience(w, outputs.resilience);
    writeFailures(w, outputs.failures);
    w.endObject();
    return w.str();
}

std::string
summaryJson(const CheckpointRunResult& result,
            const CheckpointRunParams& params)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("kind", "checkpoint");
    w.field("dir", params.dir);
    w.field("shard_reads", params.shardReads);
    w.field("wall_seconds", result.wallSeconds);
    w.field("resumed_reads", result.resumedReads);
    w.field("mapped_reads", result.mappedReads);
    w.field("dropped_shards", result.droppedShards);
    w.field("gaf_bytes", static_cast<uint64_t>(result.gaf.size()));
    w.field("stopped", result.stopped);
    writeCache(w, result.cacheStats);
    writeResilience(w, result.resilience);
    writeFailures(w, result.failures);
    w.endObject();
    return w.str();
}

} // namespace mg::giraffe
