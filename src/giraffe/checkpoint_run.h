/**
 * @file
 * Checkpointed mapping: the parent emulator driven shard by shard with
 * crash-consistent flushes, so a run killed at any instant (kill -9, power
 * loss — the crash-matrix tests inject fault::Kind::Crash at every durable
 * step) resumes from its last durable shard and still produces a final GAF
 * byte-identical to an uninterrupted run.
 *
 * Determinism argument: a read's GAF line is a pure function of the read
 * (and the immutable indexes) — mapping is per-read deterministic and
 * postProcess breaks ties canonically — so lines computed before a crash
 * and lines computed after resume are the same bytes, and stitching
 * durable shards with freshly mapped ranges in read order reproduces the
 * uninterrupted output exactly.  This holds for the deterministic budget
 * caps (steps/lookups) too; a *wall-clock* deadline is inherently
 * run-dependent and a checkpointed run does not make it reproducible.
 *
 * Restricted to unpaired read sets: pairing and rescue need every mate
 * mapped before they run, which contradicts shard-at-a-time durability.
 */
#pragma once

#include <string>

#include "giraffe/parent.h"
#include "io/checkpoint.h"

namespace mg::giraffe {

/** Checkpointing knobs. */
struct CheckpointRunParams
{
    /** Checkpoint directory (created if absent; resumed if populated). */
    std::string dir;
    /** Reads per shard — the flush granularity.  Smaller shards lose less
     *  work to a crash and cost more fsyncs. */
    uint64_t shardReads = 2048;
    /** Optional telemetry hub, forwarded to every per-chunk parent run;
     *  flush stats of the checkpoint writer fold in at the end. */
    obs::Hub* hub = nullptr;
    /**
     * Graceful-stop flag (SIGTERM/SIGINT).  Checked between shard
     * flushes: the in-progress shard finishes and lands durably, then
     * the run returns with `stopped = true` and a *partial* GAF (the
     * contiguous prefix).  Do NOT also set ParentParams::stopFlag for a
     * checkpointed run — a mid-chunk stop would flush a shard that
     * claims coverage it does not have; the shard is the stop unit.
     */
    const std::atomic<bool>* stopFlag = nullptr;
};

/** Outcome of a checkpointed (possibly resumed) run. */
struct CheckpointRunResult
{
    /** The final stitched GAF text (every read, in input order). */
    std::string gaf;
    /** Failure accounting over the newly mapped ranges, with batch and
     *  item indices rebased to the full read set. */
    sched::FailureReport failures;
    /** Run totals: restored shard deltas + newly mapped ranges.  The
     *  latency histogram covers only reads mapped by *this* process. */
    resilience::ResilienceStats resilience;
    gbwt::CacheStats cacheStats;
    /** Reads restored from durable shards (0 on a fresh run). */
    uint64_t resumedReads = 0;
    /** Reads mapped by this process. */
    uint64_t mappedReads = 0;
    /** Shards the loader dropped (CRC/structure failure) and re-mapped. */
    uint64_t droppedShards = 0;
    double wallSeconds = 0.0;
    /** A graceful stop ended the run early; `gaf` holds only the
     *  contiguous prefix and the checkpoint directory holds the rest of
     *  the durable state for a later resume. */
    bool stopped = false;
};

/**
 * Map `reads` with periodic durable checkpoints in `params.dir`, resuming
 * from whatever durable state the directory already holds.  Throws
 * util::StatusError if the manifest exists but is corrupt (the source of
 * truth is damaged), util::Error on a read-set/manifest size mismatch.
 */
CheckpointRunResult runCheckpointed(const ParentEmulator& parent,
                                    const map::ReadSet& reads,
                                    const CheckpointRunParams& params);

} // namespace mg::giraffe
