#include "giraffe/session.h"

#include "io/gaf.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::giraffe {

MapSession::MapSession(const graph::VariationGraph& graph,
                       const gbwt::Gbwt& gbwt,
                       const index::MinimizerIndex& minimizers,
                       const index::DistanceIndex& distance,
                       SessionParams params)
    : graph_(graph), params_(params),
      mapper_(graph, gbwt, minimizers, distance, params.mapper),
      states_(params.workers)
{
    MG_CHECK(params_.workers > 0, "session needs at least one worker");
}

map::MapperState&
MapSession::workerState(size_t worker, obs::Hub* hub)
{
    MG_ASSERT(worker < states_.size());
    if (!states_[worker]) {
        std::lock_guard<std::mutex> lock(stateMutex_);
        if (!states_[worker]) {
            auto state = mapper_.makeState();
            if (hub != nullptr) {
                state->metrics = hub->slab(worker);
                state->metricIds = &hub->map();
                state->flight = hub->flight().ring(worker);
            }
            states_[worker] = std::move(state);
        }
    }
    return *states_[worker];
}

void
MapSession::warmup(obs::Hub* hub)
{
    for (size_t worker = 0; worker < states_.size(); ++worker) {
        workerState(worker, hub);
    }
}

SessionResult
MapSession::map(size_t worker, const std::vector<map::Read>& reads,
                const resilience::WorkBudget& budget,
                sched::HeartbeatBoard* board, obs::Hub* hub,
                resilience::CancelToken* token,
                obs::StageAccumulator* stage_trace)
{
    map::MapperState& state = workerState(worker, hub);
    state.stageTrace = stage_trace;

    // The request's wall budget becomes one absolute deadline shared by
    // all of its reads: the Nth read does not get a fresh clock.
    const uint64_t deadline_nanos =
        budget.wallSeconds > 0.0
            ? util::nowNanos() +
                  static_cast<uint64_t>(budget.wallSeconds * 1e9)
            : 0;
    if (board != nullptr) {
        token = &board->slot(worker).token;
        board->beginBatch(worker, 0, reads.size());
    }
    state.budget.configure(budget, deadline_nanos, token);

    SessionResult result;
    result.gaf.reserve(reads.size() * 96);
    for (size_t i = 0; i < reads.size(); ++i) {
        if (board != nullptr) {
            board->beat(worker);
        }
        if (state.flight != nullptr) {
            state.flight->begin(i);
        }
        const map::Read& read = reads[i];
        util::WallTimer read_timer;
        map::MapResult mapped = mapper_.mapRead(read, state);
        const uint64_t emit_start =
            stage_trace != nullptr ? util::nowNanos() : 0;
        Alignment alignment =
            postProcess(read.name, mapped.extensions, params_.post);
        alignment.degraded = mapped.degraded;
        result.gaf += io::formatGafLine(alignment, read, graph_);
        result.gaf += '\n';
        if (stage_trace != nullptr) {
            stage_trace->add(obs::SpanStage::GafEmit,
                             util::nowNanos() - emit_start);
        }
        if (alignment.mapped) {
            ++result.mappedReads;
        }
        if (mapped.degraded != resilience::CancelReason::None) {
            ++result.degradedReads;
        }
        result.stats.countDegraded(mapped.degraded);
        result.stats.latency.record(read_timer.nanos());
        if (state.flight != nullptr) {
            state.flight->done();
        }
    }

    if (hub != nullptr) {
        state.flushMetrics();
    }
    if (board != nullptr) {
        board->endBatch(worker);
    }
    state.stageTrace = nullptr;
    return result;
}

} // namespace mg::giraffe
