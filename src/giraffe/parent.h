/**
 * @file
 * The parent-application emulator: a faithful miniature of Giraffe's full
 * mapping pipeline, standing in for the 50 kLoC vg Giraffe the paper
 * validates against (substitution documented in DESIGN.md).  Per read it
 * runs preprocessing (minimizer lookup + seed creation), the two critical
 * functions (cluster_seeds, process_until_threshold_c/extend), and the
 * post-processing (extension scoring/filtering, alignment, MAPQ), spread
 * over worker threads by a VG-style batch scheduler.  Every region is
 * instrumented with the paper's region names so the characterization
 * figures (2, 3, 4) and the validation tables (V, VI) can be regenerated.
 */
#pragma once

#include <memory>
#include <vector>

#include "gbwt/cached_gbwt.h"
#include "giraffe/alignment.h"
#include "giraffe/pairing.h"
#include "giraffe/rescue.h"
#include "io/extensions_io.h"
#include "io/reads_bin.h"
#include "map/mapper.h"
#include "obs/hub.h"
#include "perf/profiler.h"
#include "resilience/budget.h"
#include "sched/failure.h"
#include "sched/scheduler.h"
#include "sched/watchdog.h"
#include "util/mem_tracer.h"

namespace mg::giraffe {

/** Parent pipeline configuration. */
struct ParentParams
{
    map::MapperParams mapper;
    PostProcessParams post;
    PairingParams pairing;
    RescueParams rescue;
    /** Attempt mate rescue on non-proper pairs (paired-end runs). */
    bool mateRescue = true;
    /** Giraffe's own scheduler is the VG-style batch dispatcher. */
    sched::SchedulerKind scheduler = sched::SchedulerKind::VgBatch;
    /** Giraffe's default batch size (Section VII-B). */
    size_t batchSize = 512;
    size_t numThreads = 1;
    /** Work limits (deadline + per-read caps); default is unlimited. */
    resilience::WorkBudget budget;
    /** Supervise workers with a watchdog thread. */
    bool watchdog = false;
    sched::WatchdogParams watchdogParams;
    /** Graceful-stop flag (SIGTERM/SIGINT): once set, no new batch is
     *  dispatched; running batches finish.  Null disables. */
    const std::atomic<bool>* stopFlag = nullptr;
};

/** Everything a parent run produces. */
struct ParentOutputs
{
    /** Final post-processed alignments, one per read. */
    std::vector<Alignment> alignments;
    /** Pairing verdicts (paired-end read sets only). */
    std::vector<PairResult> pairs;
    /** Mate-rescue outcome (paired-end runs with rescue enabled). */
    RescueStats rescue;
    /** Raw critical-function outputs (what the proxy must reproduce). */
    std::vector<io::ReadExtensions> extensions;
    /** Aggregated CachedGBWT statistics over all worker threads. */
    gbwt::CacheStats cacheStats;
    /** Batch failures, recoveries, and quarantined reads of the run.
     *  Quarantined reads appear unmapped in `alignments` (and in any GAF
     *  rendered from them) instead of aborting the whole run. */
    sched::FailureReport failures;
    /** Degradation counters + per-read latency over all worker threads. */
    resilience::ResilienceStats resilience;
    /** Watchdog cancellations with flight-recorder context (when a hub
     *  with a recorder was attached), in detection order. */
    std::vector<sched::WatchdogEvent> watchdogEvents;
    /** Wall-clock seconds of the whole mapping run. */
    double wallSeconds = 0.0;
    /** The stop flag fired during the run; unvisited reads are unmapped
     *  placeholders in `alignments`. */
    bool stopped = false;
};

/** The emulated parent application. */
class ParentEmulator
{
  public:
    ParentEmulator(const graph::VariationGraph& graph,
                   const gbwt::Gbwt& gbwt,
                   const index::MinimizerIndex& minimizers,
                   const index::DistanceIndex& distance,
                   ParentParams params);

    const ParentParams& params() const { return params_; }
    const map::Mapper& mapper() const { return mapper_; }

    /**
     * Map a read set through the full pipeline.
     * @param profiler Optional region instrumentation sink.
     * @param tracer Optional memory tracer; only honoured for
     *        single-threaded runs (counters are collected at 1 thread in
     *        the paper as well).
     * @param hub Optional telemetry hub (live metrics + flight recorder);
     *        must be sized for at least numThreads workers.
     */
    ParentOutputs run(const map::ReadSet& reads,
                      perf::Profiler* profiler = nullptr,
                      util::MemTracer* tracer = nullptr,
                      obs::Hub* hub = nullptr) const;

    /**
     * Capture the preprocessing output (reads plus their seeds) right
     * before the critical functions — the proxy's input file, as in the
     * paper's methodology.
     */
    io::SeedCapture capturePreprocessing(const map::ReadSet& reads) const;

  private:
    const graph::VariationGraph& graph_;
    const gbwt::Gbwt& gbwt_;
    const index::MinimizerIndex& minimizers_;
    const index::DistanceIndex& distance_;
    ParentParams params_;
    map::Mapper mapper_;
};

} // namespace mg::giraffe
