/**
 * @file
 * Session-oriented mapping: one MapSession holds one loaded index set
 * (graph + GBWT + minimizer + distance) and serves many small mapping
 * requests against it — the daemon-shaped entry point, where
 * ParentEmulator::run is the batch-shaped one.  Differences that matter:
 *
 *  - Per-worker MapperState persists *across requests* (the whole point
 *    of a daemon: indexes load once, scratch stays warm), instead of
 *    being created per run.
 *  - Each request carries its own WorkBudget; the wall deadline is made
 *    absolute at request start, so every read of the request shares one
 *    cutoff and an over-budget request returns best-so-far degraded GAF
 *    (tagged dg:Z:) instead of hanging.
 *  - No scheduler: a request is mapped start-to-finish by the one worker
 *    that dequeued it.  Cross-request parallelism comes from the daemon's
 *    worker pool, which matches the service shape (many small requests)
 *    better than intra-request batching would.
 *
 * Thread safety: map() is safe concurrently for *distinct* worker
 * indexes; two concurrent calls with the same index race on that
 * worker's state.
 */
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "giraffe/alignment.h"
#include "map/mapper.h"
#include "obs/hub.h"
#include "resilience/budget.h"
#include "sched/watchdog.h"

namespace mg::giraffe {

/** Session configuration. */
struct SessionParams
{
    map::MapperParams mapper;
    PostProcessParams post;
    /** Worker slots (distinct MapperStates) the session must support. */
    size_t workers = 1;
};

/** What one request's mapping produced. */
struct SessionResult
{
    /** GAF text, one line per read; degraded reads carry dg:Z tags. */
    std::string gaf;
    /** Reads that produced an alignment. */
    uint64_t mappedReads = 0;
    /** Reads cut short by the budget/watchdog (best-so-far output). */
    uint64_t degradedReads = 0;
    /** Degradation reasons + per-read latency for this request only. */
    resilience::ResilienceStats stats;
};

/** One loaded index set serving many mapping requests. */
class MapSession
{
  public:
    MapSession(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
               const index::MinimizerIndex& minimizers,
               const index::DistanceIndex& distance, SessionParams params);

    size_t workers() const { return params_.workers; }
    const SessionParams& params() const { return params_; }
    const map::Mapper& mapper() const { return mapper_; }

    /**
     * Map one request's reads on worker slot `worker`.
     *
     * The budget is rebound per request (wallSeconds becomes an absolute
     * deadline sampled now).  When `board` is non-null the worker follows
     * the heartbeat protocol — beginBatch re-arms its CancelToken, every
     * read beats, endBatch parks the slot — so a daemon watchdog can
     * cancel a stalled request cooperatively.  Without a board, `token`
     * (may be null) is used directly and never reset, which is what
     * deterministic tests want.
     *
     * `stage_trace` (nullable) receives the request's per-stage wall
     * time (seed/cluster/extend from the mapper, gaf-emit from the
     * post-process + format step) when the request is traced.  The hook
     * is timing-only: traced and untraced requests produce byte-identical
     * GAF.
     */
    SessionResult map(size_t worker, const std::vector<map::Read>& reads,
                      const resilience::WorkBudget& budget,
                      sched::HeartbeatBoard* board = nullptr,
                      obs::Hub* hub = nullptr,
                      resilience::CancelToken* token = nullptr,
                      obs::StageAccumulator* stage_trace = nullptr);

    /**
     * Pre-create every worker slot's MapperState (hot-swap path: the
     * replacement generation's session is warmed *before* publish, so the
     * first post-swap request on any worker pays no lazy-init cost and —
     * more importantly — no state construction happens inside the
     * publish window).
     */
    void warmup(obs::Hub* hub = nullptr);

  private:
    map::MapperState& workerState(size_t worker, obs::Hub* hub);

    const graph::VariationGraph& graph_;
    SessionParams params_;
    map::Mapper mapper_;
    std::mutex stateMutex_;
    std::vector<std::unique_ptr<map::MapperState>> states_;
};

} // namespace mg::giraffe
