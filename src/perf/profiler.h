/**
 * @file
 * Region-based instrumentation, reproducing the paper's custom profiling
 * header (Section III): designated code regions are timestamped per thread
 * with negligible overhead, all records are kept in memory during the run,
 * and everything is aggregated/dumped only at the end of execution.
 *
 * The paper stores records in a UThash hash table keyed by region name; we
 * register region names up front (string -> dense id) and append fixed-size
 * records to per-thread buffers, which is equivalent and allocation-free on
 * the hot path after warm-up.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace mg::perf {

/** Dense id of a registered region name. */
using RegionId = uint32_t;

/** One timed interval of one region on one thread. */
struct RegionRecord
{
    RegionId region;
    uint64_t startNanos;
    uint64_t endNanos;
};

/** Aggregate of one region on one thread. */
struct RegionTotal
{
    std::string region;
    size_t thread;
    uint64_t totalNanos = 0;
    uint64_t invocations = 0;
};

/**
 * Collects timed region records across threads.
 *
 * Threads call registerThread() once to obtain a ThreadLog and then time
 * regions with ScopedRegion.  A disabled profiler (the default for
 * production mapping runs) records nothing and costs one branch per region.
 */
class Profiler
{
  public:
    /** Per-thread append-only record buffer. */
    class ThreadLog
    {
      public:
        explicit ThreadLog(size_t index) : index_(index)
        {
            records_.reserve(1 << 12);
        }

        void
        add(RegionId region, uint64_t start_nanos, uint64_t end_nanos)
        {
            records_.push_back(RegionRecord{region, start_nanos, end_nanos});
        }

        size_t index() const { return index_; }
        const std::vector<RegionRecord>& records() const { return records_; }

      private:
        size_t index_;
        std::vector<RegionRecord> records_;
    };

    /**
     * All regions::k* names are pre-registered at construction, so the
     * usual regionId() calls on canonical names are pure lookups and the
     * registration mutex never serialises hot-path call sites.
     */
    explicit Profiler(bool enabled = true);

    bool enabled() const { return enabled_; }

    /**
     * Map a region name to its dense id, registering it if new.  New
     * names are only accepted before the first registerThread(); after
     * that the region table is frozen (lookups of known names stay legal)
     * and a late registration throws util::Error.
     */
    RegionId regionId(const std::string& name);

    /** Name of a registered region id. */
    const std::string& regionName(RegionId id) const;

    /** Copy of the region name table, indexed by RegionId. */
    std::vector<std::string> regionNames() const;

    /** Create (or fetch) the log for a worker thread slot. */
    ThreadLog* registerThread(size_t thread_index);

    /** Number of thread slots seen so far. */
    size_t numThreads() const;

    /** Aggregate per (region, thread) totals over all records. */
    std::vector<RegionTotal> aggregate() const;

    /**
     * Total time of one region summed over all threads, in seconds.
     * Returns 0 if the region was never entered.
     */
    double regionSeconds(const std::string& name) const;

    /** Dump raw records as CSV (thread,region,start_ns,end_ns) to a file. */
    void dumpCsv(const std::string& path) const;

    /**
     * Visit every raw record (thread index + record), in per-thread
     * order.  This is how exporters (obs trace writer) consume the log
     * without copying it.
     */
    void forEachRecord(
        const std::function<void(size_t, const RegionRecord&)>& fn) const;

    /** Forget all records but keep region registrations. */
    void clearRecords();

  private:
    bool enabled_;
    mutable std::mutex mutex_;
    std::map<std::string, RegionId> regionIds_;
    std::vector<std::string> regionNames_;
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    bool frozen_ = false;
};

/** RAII region timer: times from construction to destruction. */
class ScopedRegion
{
  public:
    ScopedRegion(Profiler::ThreadLog* log, RegionId region)
        : log_(log), region_(region),
          start_(log ? util::nowNanos() : 0)
    {}

    ScopedRegion(const ScopedRegion&) = delete;
    ScopedRegion& operator=(const ScopedRegion&) = delete;

    ~ScopedRegion()
    {
        if (log_) {
            log_->add(region_, start_, util::nowNanos());
        }
    }

  private:
    Profiler::ThreadLog* log_;
    RegionId region_;
    uint64_t start_;
};

/**
 * Canonical region names, matching the paper's instrumented regions
 * (Figures 2 and 3) so that harness output lines up with the publication.
 */
namespace regions {
inline constexpr const char* kReadIo = "read_io";
inline constexpr const char* kParseSettings = "parse_settings";
inline constexpr const char* kMinimizerLookup = "minimizer_lookup";
inline constexpr const char* kFindSeeds = "find_seeds";
inline constexpr const char* kClusterSeeds = "cluster_seeds";
inline constexpr const char* kProcessUntilThresholdC =
    "process_until_threshold_c";
inline constexpr const char* kExtend = "extend";
inline constexpr const char* kScoreExtensions = "score_extensions";
inline constexpr const char* kAlign = "align";
inline constexpr const char* kEmitOutput = "emit_output";
inline constexpr const char* kScheduler = "scheduler";
} // namespace regions

} // namespace mg::perf
