#include "perf/profiler.h"

#include <fstream>

#include "util/common.h"

namespace mg::perf {

Profiler::Profiler(bool enabled) : enabled_(enabled)
{
    // Pre-register the canonical regions so every regions::k* lookup on
    // the mapping path is a read-only map find, never a mutation.
    for (const char* name :
         { regions::kReadIo, regions::kParseSettings,
           regions::kMinimizerLookup, regions::kFindSeeds,
           regions::kClusterSeeds, regions::kProcessUntilThresholdC,
           regions::kExtend, regions::kScoreExtensions, regions::kAlign,
           regions::kEmitOutput, regions::kScheduler }) {
        RegionId id = static_cast<RegionId>(regionNames_.size());
        regionIds_[name] = id;
        regionNames_.push_back(name);
    }
}

RegionId
Profiler::regionId(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = regionIds_.find(name);
    if (it != regionIds_.end()) {
        return it->second;
    }
    MG_CHECK(!frozen_, "region '", name,
             "' registered after the first registerThread(); register "
             "all regions before worker threads start");
    RegionId id = static_cast<RegionId>(regionNames_.size());
    regionIds_[name] = id;
    regionNames_.push_back(name);
    return id;
}

const std::string&
Profiler::regionName(RegionId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MG_ASSERT(id < regionNames_.size());
    return regionNames_[id];
}

std::vector<std::string>
Profiler::regionNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return regionNames_;
}

Profiler::ThreadLog*
Profiler::registerThread(size_t thread_index)
{
    if (!enabled_) {
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    frozen_ = true;
    if (thread_index >= logs_.size()) {
        logs_.resize(thread_index + 1);
    }
    if (!logs_[thread_index]) {
        logs_[thread_index] = std::make_unique<ThreadLog>(thread_index);
    }
    return logs_[thread_index].get();
}

size_t
Profiler::numThreads() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return logs_.size();
}

std::vector<RegionTotal>
Profiler::aggregate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RegionTotal> totals;
    for (const auto& log : logs_) {
        if (!log) {
            continue;
        }
        // Dense (region -> slot) map local to this thread.
        std::vector<size_t> slot(regionNames_.size(), SIZE_MAX);
        for (const RegionRecord& rec : log->records()) {
            MG_ASSERT(rec.region < regionNames_.size());
            if (slot[rec.region] == SIZE_MAX) {
                slot[rec.region] = totals.size();
                totals.push_back(RegionTotal{regionNames_[rec.region],
                                             log->index(), 0, 0});
            }
            RegionTotal& total = totals[slot[rec.region]];
            total.totalNanos += rec.endNanos - rec.startNanos;
            ++total.invocations;
        }
    }
    return totals;
}

double
Profiler::regionSeconds(const std::string& name) const
{
    double seconds = 0.0;
    for (const RegionTotal& total : aggregate()) {
        if (total.region == name) {
            seconds += static_cast<double>(total.totalNanos) * 1e-9;
        }
    }
    return seconds;
}

void
Profiler::dumpCsv(const std::string& path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ofstream out(path);
    util::require(out.good(), "cannot open profile dump file: ", path);
    out << "thread,region,start_ns,end_ns\n";
    for (const auto& log : logs_) {
        if (!log) {
            continue;
        }
        for (const RegionRecord& rec : log->records()) {
            out << log->index() << ',' << regionNames_[rec.region] << ','
                << rec.startNanos << ',' << rec.endNanos << '\n';
        }
    }
}

void
Profiler::forEachRecord(
    const std::function<void(size_t, const RegionRecord&)>& fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& log : logs_) {
        if (!log) {
            continue;
        }
        for (const RegionRecord& rec : log->records()) {
            fn(log->index(), rec);
        }
    }
}

void
Profiler::clearRecords()
{
    std::lock_guard<std::mutex> lock(mutex_);
    logs_.clear();
}

} // namespace mg::perf
