#include "gbwt/gbwt.h"

#include <algorithm>

#include "util/common.h"

namespace mg::gbwt {

bool
Gbwt::hasRecord(graph::Handle node) const
{
    auto [data, size] = recordSpan(node);
    (void)data;
    return size > 0;
}

std::pair<const uint8_t*, size_t>
Gbwt::recordSpan(graph::Handle node) const
{
    uint64_t slot = node.packed();
    if (slot + 1 >= recordOffsets_.size()) {
        return {nullptr, 0};
    }
    uint64_t begin = recordOffsets_[slot];
    uint64_t end = recordOffsets_[slot + 1];
    return {arena_.data() + begin, end - begin};
}

DecodedRecord
Gbwt::decodeRecord(graph::Handle node, util::MemTracer* tracer) const
{
    DecodedRecord record;
    decodeRecordInto(node, record, tracer);
    return record;
}

void
Gbwt::decodeRecordInto(graph::Handle node, DecodedRecord& out,
                       util::MemTracer* tracer) const
{
    auto [data, size] = recordSpan(node);
    if (size == 0) {
        out = DecodedRecord();
        return;
    }
    // The decode touches the compressed bytes sequentially; this is the
    // access CachedGBWT exists to amortize.
    util::traceAccess(tracer, data, static_cast<uint32_t>(size));
    util::traceWork(tracer, size * 4);
    util::ByteCursor cursor(data, size);
    cursor.enterSection("gbwt-record");
    DecodedRecord::decodeInto(cursor, out);
}

SearchState
Gbwt::find(graph::Handle node, util::MemTracer* tracer) const
{
    DecodedRecord record = decodeRecord(node, tracer);
    return SearchState(node, 0, record.numVisits());
}

SearchState
Gbwt::extend(const SearchState& state, graph::Handle to,
             util::MemTracer* tracer) const
{
    DecodedRecord record = decodeRecord(state.node, tracer);
    return record.extend(state, to);
}

uint64_t
Gbwt::nodeCount(graph::Handle node, util::MemTracer* tracer) const
{
    return decodeRecord(node, tracer).numVisits();
}

std::vector<uint32_t>
Gbwt::locate(const SearchState& state) const
{
    std::vector<uint32_t> ids;
    if (state.empty()) {
        return ids;
    }
    uint64_t slot = state.node.packed();
    util::require(slot + 1 < docOffsets_.size(),
                  "locate: state references an unknown node");
    util::ByteReader reader(docArena_.data() + docOffsets_[slot],
                            docOffsets_[slot + 1] - docOffsets_[slot]);
    // Visits are varint path ids in visit order; skip to the range.
    for (uint64_t i = 0; i < state.start; ++i) {
        reader.getVarint();
    }
    ids.reserve(state.size());
    for (uint64_t i = state.start; i < state.end; ++i) {
        ids.push_back(static_cast<uint32_t>(reader.getVarint()));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

std::vector<uint32_t>
Gbwt::pathsThrough(const std::vector<graph::Handle>& walk) const
{
    if (walk.empty()) {
        return {};
    }
    SearchState state = find(walk.front());
    for (size_t i = 1; i < walk.size() && !state.empty(); ++i) {
        state = extend(state, walk[i]);
    }
    return locate(state);
}

void
Gbwt::save(util::ByteWriter& writer) const
{
    writer.putVarint(numPaths_);
    writer.putVarint(totalVisits_);
    writer.putVarint(recordOffsets_.size());
    uint64_t prev = 0;
    for (uint64_t offset : recordOffsets_) {
        writer.putVarint(offset - prev);
        prev = offset;
    }
    writer.putVarint(arena_.size());
    writer.putBytes(arena_.data(), arena_.size());
    writer.putVarint(docOffsets_.size());
    prev = 0;
    for (uint64_t offset : docOffsets_) {
        writer.putVarint(offset - prev);
        prev = offset;
    }
    writer.putVarint(docArena_.size());
    writer.putBytes(docArena_.data(), docArena_.size());
}

Gbwt
Gbwt::load(util::ByteCursor& cursor)
{
    Gbwt gbwt;
    auto& record_offsets = gbwt.recordOffsets_.owned();
    auto& arena = gbwt.arena_.owned();
    auto& doc_offsets = gbwt.docOffsets_.owned();
    auto& doc_arena = gbwt.docArena_.owned();
    gbwt.numPaths_ = cursor.getVarint();
    gbwt.totalVisits_ = cursor.getVarint();
    uint64_t num_offsets = cursor.getVarint();
    cursor.check(num_offsets <= cursor.remaining() + 1,
                 util::StatusCode::Corrupt,
                 "GBWT offset count exceeds remaining payload");
    record_offsets.reserve(num_offsets);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < num_offsets; ++i) {
        uint64_t delta = cursor.getVarint();
        cursor.check(delta <= UINT64_MAX - prev, util::StatusCode::Corrupt,
                     "GBWT offset overflows");
        prev += delta;
        record_offsets.push_back(prev);
    }
    uint64_t arena_size = cursor.getVarint();
    cursor.check(arena_size <= cursor.remaining(),
                 util::StatusCode::Truncated,
                 "GBWT arena exceeds remaining payload");
    cursor.check(!record_offsets.empty() || arena_size == 0,
                 util::StatusCode::Corrupt,
                 "GBWT image with arena but no offsets");
    cursor.check(record_offsets.empty() ||
                 record_offsets.back() == arena_size,
                 util::StatusCode::Corrupt,
                 "GBWT offsets inconsistent with arena size");
    arena.resize(arena_size);
    cursor.getBytes(arena.data(), arena_size);
    uint64_t num_doc_offsets = cursor.getVarint();
    cursor.check(num_doc_offsets <= cursor.remaining() + 1,
                 util::StatusCode::Corrupt,
                 "GBWT document offset count exceeds remaining payload");
    doc_offsets.reserve(num_doc_offsets);
    prev = 0;
    for (uint64_t i = 0; i < num_doc_offsets; ++i) {
        uint64_t delta = cursor.getVarint();
        cursor.check(delta <= UINT64_MAX - prev, util::StatusCode::Corrupt,
                     "GBWT document offset overflows");
        prev += delta;
        doc_offsets.push_back(prev);
    }
    uint64_t doc_size = cursor.getVarint();
    cursor.check(doc_size <= cursor.remaining(),
                 util::StatusCode::Truncated,
                 "GBWT document arena exceeds remaining payload");
    cursor.check(doc_offsets.empty() || doc_offsets.back() == doc_size,
                 util::StatusCode::Corrupt,
                 "GBWT document offsets inconsistent with arena size");
    doc_arena.resize(doc_size);
    cursor.getBytes(doc_arena.data(), doc_size);
    return gbwt;
}

Gbwt::ArenaRefs
Gbwt::arenaRefs() const
{
    return ArenaRefs{
        arena_.data(),         arena_.size(),
        recordOffsets_.data(), recordOffsets_.size(),
        docArena_.data(),      docArena_.size(),
        docOffsets_.data(),    docOffsets_.size(),
    };
}

void
Gbwt::bindMapped(std::shared_ptr<mem::MappedFile> file,
                 const ArenaRefs& refs, uint64_t num_paths,
                 uint64_t total_visits)
{
    auto check_offsets = [](const uint64_t* offsets, size_t count,
                            size_t arena_size, const char* what) {
        if (count == 0) {
            util::require(arena_size == 0, what,
                          ": arena bytes with no offset table");
            return;
        }
        uint64_t prev = 0;
        util::require(offsets[0] == 0, what, ": table must start at 0");
        for (size_t i = 1; i < count; ++i) {
            util::require(offsets[i] >= prev, what,
                          ": non-monotone offset at entry ", i);
            prev = offsets[i];
        }
        util::require(prev == arena_size, what,
                      ": offsets inconsistent with arena size ", arena_size);
    };
    check_offsets(refs.recordOffsets, refs.numRecordOffsets, refs.arenaSize,
                  "gbwt.offsets");
    check_offsets(refs.docOffsets, refs.numDocOffsets, refs.docArenaSize,
                  "gbwt.docoffs");
    util::require(refs.numRecordOffsets == refs.numDocOffsets,
                  "gbwt: record/document offset tables disagree: ",
                  refs.numRecordOffsets, " vs ", refs.numDocOffsets);
    arena_ = mem::ArenaView<uint8_t>();
    recordOffsets_ = mem::ArenaView<uint64_t>();
    docArena_ = mem::ArenaView<uint8_t>();
    docOffsets_ = mem::ArenaView<uint64_t>();
    arena_.bind(file, refs.arena, refs.arenaSize);
    recordOffsets_.bind(file, refs.recordOffsets, refs.numRecordOffsets);
    docArena_.bind(file, refs.docArena, refs.docArenaSize);
    docOffsets_.bind(std::move(file), refs.docOffsets, refs.numDocOffsets);
    numPaths_ = num_paths;
    totalVisits_ = total_visits;
}

} // namespace mg::gbwt
