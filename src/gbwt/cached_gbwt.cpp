#include "gbwt/cached_gbwt.h"

#include <bit>

#include "util/common.h"
#include "util/dna.h"

namespace mg::gbwt {

namespace {

/** Round up to a power of two, minimum 2. */
size_t
roundUpPow2(size_t n)
{
    if (n < 2) {
        return 2;
    }
    return std::bit_ceil(n);
}

/** Max load factor before growth: 3/4. */
bool
overloaded(size_t size, size_t capacity)
{
    return 4 * (size + 1) > 3 * capacity;
}

} // namespace

CachedGbwt::CachedGbwt(const Gbwt& gbwt, size_t initial_capacity,
                       util::MemTracer* tracer)
    : gbwt_(gbwt), tracer_(tracer), cachingEnabled_(initial_capacity > 0)
{
    if (cachingEnabled_) {
        slots_.assign(roundUpPow2(initial_capacity), Slot{});
        // Table initialization writes every slot; with the short per-read
        // cache lifetime Giraffe uses, this is a real per-read cost that
        // grows with the initial capacity.
        util::traceAccess(tracer_, slots_.data(),
                          static_cast<uint32_t>(std::min<size_t>(
                              slots_.size() * sizeof(Slot), UINT32_MAX)),
                          true);
        util::traceWork(tracer_, slots_.size() / 4);
    }
}

size_t
CachedGbwt::probe(uint64_t key)
{
    size_t mask = slots_.size() - 1;
    size_t index = util::hash64(key) & mask;
    while (true) {
        ++stats_.probes;
        util::traceAccess(tracer_, &slots_[index], sizeof(Slot));
        util::traceWork(tracer_, 4);
        if (slots_[index].key == key || slots_[index].key == 0) {
            return index;
        }
        index = (index + 1) & mask;
    }
}

void
CachedGbwt::rehash()
{
    ++stats_.rehashes;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
        if (slot.key == 0) {
            continue;
        }
        // Reinsertion touches every old slot and a fresh table twice its
        // size: this is the expensive growth the paper tunes away from.
        size_t index = util::hash64(slot.key) & mask;
        while (slots_[index].key != 0) {
            util::traceAccess(tracer_, &slots_[index], sizeof(Slot));
            index = (index + 1) & mask;
        }
        util::traceAccess(tracer_, &slots_[index], sizeof(Slot), true);
        util::traceWork(tracer_, 8);
        slots_[index] = slot;
    }
}

const DecodedRecord&
CachedGbwt::record(graph::Handle node)
{
    ++stats_.lookups;
    if (!cachingEnabled_) {
        ++stats_.decodes;
        uncached_ = gbwt_.decodeRecord(node, tracer_);
        return uncached_;
    }
    uint64_t key = node.packed() + 1;
    size_t index = probe(key);
    if (slots_[index].key == key) {
        ++stats_.hits;
        const DecodedRecord& rec = entries_[slots_[index].value];
        // A hit still reads the decoded record's headers.
        util::traceAccess(tracer_, &rec, sizeof(DecodedRecord));
        return rec;
    }
    ++stats_.decodes;
    if (overloaded(entries_.size(), slots_.size())) {
        rehash();
        index = probe(key);
    }
    entries_.push_back(gbwt_.decodeRecord(node, tracer_));
    slots_[index].key = key;
    slots_[index].value = static_cast<uint32_t>(entries_.size() - 1);
    util::traceAccess(tracer_, &slots_[index], sizeof(Slot), true);
    return entries_.back();
}

SearchState
CachedGbwt::find(graph::Handle node)
{
    return SearchState(node, 0, record(node).numVisits());
}

SearchState
CachedGbwt::extend(const SearchState& state, graph::Handle to)
{
    const DecodedRecord& rec = record(state.node);
    util::traceWork(tracer_, rec.runs().size() + rec.edges().size());
    return rec.extend(state, to);
}

std::vector<SearchState>
CachedGbwt::successorStates(const SearchState& state)
{
    const DecodedRecord& rec = record(state.node);
    util::traceWork(tracer_, rec.runs().size() + rec.edges().size());
    return rec.successorStates(state);
}

uint64_t
CachedGbwt::nodeCount(graph::Handle node)
{
    return record(node).numVisits();
}

size_t
CachedGbwt::footprintBytes() const
{
    size_t bytes = slots_.size() * sizeof(Slot);
    for (const DecodedRecord& rec : entries_) {
        bytes += rec.footprintBytes();
    }
    return bytes;
}

void
CachedGbwt::clear()
{
    entries_.clear();
    for (Slot& slot : slots_) {
        slot = Slot{};
    }
}

} // namespace mg::gbwt
