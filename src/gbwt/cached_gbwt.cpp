#include "gbwt/cached_gbwt.h"

#include <bit>

#include "util/common.h"
#include "util/dna.h"
#include "util/prefetch.h"

namespace mg::gbwt {

namespace {

/** Round up to a power of two, minimum 2. */
size_t
roundUpPow2(size_t n)
{
    if (n < 2) {
        return 2;
    }
    return std::bit_ceil(n);
}

/** Max load factor before growth: 3/4. */
bool
overloaded(size_t size, size_t capacity)
{
    return 4 * (size + 1) > 3 * capacity;
}

} // namespace

CachedGbwt::CachedGbwt(const Gbwt& gbwt, size_t initial_capacity,
                       util::MemTracer* tracer)
    : gbwt_(gbwt), tracer_(tracer), cachingEnabled_(initial_capacity > 0)
{
    if (cachingEnabled_) {
        initialSlots_ = roundUpPow2(initial_capacity);
        slots_.assign(initialSlots_, Slot{});
        // Table initialization writes every slot.  With epoch-stamped
        // clear() this is a one-time cost per cache, not per read: reuse
        // via clear() only bumps the generation counter.
        util::traceAccess(tracer_, slots_.data(),
                          static_cast<uint32_t>(std::min<size_t>(
                              slots_.size() * sizeof(Slot), UINT32_MAX)),
                          true);
        util::traceWork(tracer_, slots_.size() / 4);
    }
}

size_t
CachedGbwt::probe(uint64_t key)
{
    size_t mask = slots_.size() - 1;
    size_t index = util::hash64(key) & mask;
    while (true) {
        ++stats_.probes;
        util::traceAccess(tracer_, &slots_[index], sizeof(Slot));
        util::traceWork(tracer_, 4);
        const Slot& slot = slots_[index];
        // A never-written slot or one from an older generation terminates
        // the chain: both are reusable.  Within one epoch no slot ever
        // transitions live -> reusable, so chains stay consistent.
        if (slot.key == key || slot.key == 0 || slot.epoch != epoch_) {
            return index;
        }
        index = (index + 1) & mask;
    }
}

void
CachedGbwt::rehash()
{
    ++stats_.rehashes;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
        if (!live(slot)) {
            continue; // stale generations are not carried forward
        }
        // Reinsertion touches every old slot and a fresh table twice its
        // size: this is the expensive growth the paper tunes away from.
        size_t index = util::hash64(slot.key) & mask;
        while (slots_[index].key != 0) {
            util::traceAccess(tracer_, &slots_[index], sizeof(Slot));
            index = (index + 1) & mask;
        }
        util::traceAccess(tracer_, &slots_[index], sizeof(Slot), true);
        util::traceWork(tracer_, 8);
        slots_[index] = slot;
    }
}

const DecodedRecord&
CachedGbwt::record(graph::Handle node)
{
    ++stats_.lookups;
    if (!cachingEnabled_) {
        ++stats_.decodes;
        gbwt_.decodeRecordInto(node, uncached_, tracer_);
        return uncached_;
    }
    uint64_t key = node.packed() + 1;
    size_t index = probe(key);
    if (live(slots_[index]) && slots_[index].key == key) {
        ++stats_.hits;
        const DecodedRecord& rec = entries_[slots_[index].value];
        // A hit still reads the decoded record's headers.
        util::traceAccess(tracer_, &rec, sizeof(DecodedRecord));
        return rec;
    }
    ++stats_.decodes;
    if (overloaded(entriesUsed_, slots_.size())) {
        rehash();
        index = probe(key);
    }
    // Recycle a retained entry from an earlier generation when one exists;
    // decodeInto then reuses its vector capacity.
    if (entriesUsed_ == entries_.size()) {
        entries_.emplace_back();
    } else {
        ++stats_.recycles;
    }
    DecodedRecord& rec = entries_[entriesUsed_];
    gbwt_.decodeRecordInto(node, rec, tracer_);
    Slot& slot = slots_[index];
    slot.key = key;
    slot.value = static_cast<uint32_t>(entriesUsed_);
    slot.epoch = epoch_;
    ++entriesUsed_;
    util::traceAccess(tracer_, &slot, sizeof(Slot), true);
    return rec;
}

SearchState
CachedGbwt::find(graph::Handle node)
{
    return SearchState(node, 0, record(node).numVisits());
}

SearchState
CachedGbwt::extend(const SearchState& state, graph::Handle to)
{
    const DecodedRecord& rec = record(state.node);
    util::traceWork(tracer_, rec.runs().size() + rec.edges().size());
    return rec.extend(state, to);
}

std::vector<SearchState>
CachedGbwt::successorStates(const SearchState& state)
{
    const DecodedRecord& rec = record(state.node);
    util::traceWork(tracer_, rec.runs().size() + rec.edges().size());
    return rec.successorStates(state);
}

void
CachedGbwt::successorStatesInto(const SearchState& state,
                                std::vector<SearchState>& out)
{
    const DecodedRecord& rec = record(state.node);
    util::traceWork(tracer_, rec.runs().size() + rec.edges().size());
    rec.successorStatesInto(state, out);
}

uint64_t
CachedGbwt::nodeCount(graph::Handle node)
{
    return record(node).numVisits();
}

void
CachedGbwt::prefetch(graph::Handle node) const
{
    if (cachingEnabled_) {
        size_t mask = slots_.size() - 1;
        size_t index = util::hash64(node.packed() + 1) & mask;
        util::prefetchRead(&slots_[index]);
    }
    // Also warm the compressed bytes; on a hit this is wasted bandwidth,
    // but inspecting the slot here would stall on the very load the hint
    // is trying to hide.
    gbwt_.prefetchRecord(node);
}

size_t
CachedGbwt::footprintBytes() const
{
    size_t bytes = slots_.size() * sizeof(Slot);
    for (const DecodedRecord& rec : entries_) {
        bytes += rec.footprintBytes();
    }
    return bytes;
}

void
CachedGbwt::clear()
{
    stats_ = CacheStats{};
    entriesUsed_ = 0;
    if (!cachingEnabled_) {
        return;
    }
    if (slots_.size() != initialSlots_) {
        // Growth past the initial capacity does not survive a reset: a
        // fresh mapping task starts at the tuned capacity, as a newly
        // constructed cache would.
        slots_.assign(initialSlots_, Slot{});
    }
    ++epoch_;
    if (epoch_ == 0) {
        // Generation counter wrapped: stamps are ambiguous, wipe once.
        for (Slot& slot : slots_) {
            slot = Slot{};
        }
        epoch_ = 1;
    }
}

} // namespace mg::gbwt
