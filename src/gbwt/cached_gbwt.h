/**
 * @file
 * CachedGBWT: the decode cache over the compressed GBWT (Section II-B).
 * Visited node records are kept decompressed in an open-addressing hash
 * table so repeated accesses to the same pangenome region skip the varint
 * decode.  The table's *initial capacity* is the paper's headline tuning
 * parameter (Figures 6-8, Table VIII): too small and the table pays
 * repeated expensive rehash growth; too large and probes lose cache
 * locality while the footprint crowds out the L1/L2.
 *
 * Hot-path memory overhaul: the cache is epoch-stamped.  Each slot carries
 * the epoch it was written in, and clear() just bumps the generation
 * counter — O(1) — leaving the slot array and the decoded-record storage
 * in place.  A fresh-per-read cache therefore costs no allocation and no
 * table wipe, while stale-generation slots still read as empty, preserving
 * the paper's "fresh cache per mapping task" semantics exactly.  Decoded
 * records are recycled via DecodedRecord::decodeInto, so a warm cache's
 * miss path reuses vector capacity instead of reallocating.
 *
 * Each worker thread owns one CachedGbwt (as in Giraffe), so no locking is
 * needed on the hot path.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gbwt/gbwt.h"

namespace mg::gbwt {

/** Observability counters for tuning studies and tests. */
struct CacheStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t decodes = 0;
    uint64_t rehashes = 0;
    uint64_t probes = 0;
    // Misses served by reusing a prior epoch's decoded-record storage
    // instead of allocating a fresh entry (the epoch-clear payoff; not
    // persisted in checkpoint shard deltas).
    uint64_t recycles = 0;

    double
    hitRate() const
    {
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }

    /** Accumulate another interval's counters (per-thread roll-ups). */
    void
    accumulate(const CacheStats& other)
    {
        lookups += other.lookups;
        hits += other.hits;
        decodes += other.decodes;
        rehashes += other.rehashes;
        probes += other.probes;
        recycles += other.recycles;
    }
};

/**
 * Per-thread decompression cache over an immutable Gbwt.
 *
 * An initial capacity of 0 disables caching entirely (every access decodes
 * from the compressed arena), which is the "no caching structure" baseline
 * of the paper's Figure 6.
 */
class CachedGbwt
{
  public:
    /** Giraffe's default initial capacity (the paper's default of 256). */
    static constexpr size_t kDefaultInitialCapacity = 256;

    /**
     * @param gbwt Backing compressed index (must outlive the cache).
     * @param initial_capacity Initial hash-table slot count (rounded up to
     *        a power of two); 0 disables caching.
     * @param tracer Optional memory-access tracer for the machine model.
     */
    explicit CachedGbwt(const Gbwt& gbwt,
                        size_t initial_capacity = kDefaultInitialCapacity,
                        util::MemTracer* tracer = nullptr);

    /** Record of an oriented node, decoding and caching on first touch. */
    const DecodedRecord& record(graph::Handle node);

    /** State covering all haplotype visits to a node. */
    SearchState find(graph::Handle node);

    /** One haplotype-consistent step. */
    SearchState extend(const SearchState& state, graph::Handle to);

    /** Haplotype-supported continuations of a state. */
    std::vector<SearchState> successorStates(const SearchState& state);

    /**
     * successorStates() appended into a caller-owned buffer — the
     * extension kernel's allocation-free query path.
     */
    void successorStatesInto(const SearchState& state,
                             std::vector<SearchState>& out);

    /** Number of haplotypes through a node. */
    uint64_t nodeCount(graph::Handle node);

    /**
     * Software-prefetch the probed slot for `node` and, if the slot does
     * not currently hold it, the node's compressed record bytes — the two
     * memory targets the next record() for this node will touch.  A hint
     * only: no decode, no stats, no tracing.
     */
    void prefetch(graph::Handle node) const;

    const Gbwt& backing() const { return gbwt_; }
    /** The attached memory tracer (null when not tracing). */
    util::MemTracer* tracer() const { return tracer_; }
    const CacheStats& stats() const { return stats_; }
    /** Entries cached in the current epoch. */
    size_t size() const { return entriesUsed_; }
    size_t capacity() const { return slots_.size(); }
    bool cachingEnabled() const { return cachingEnabled_; }
    /** Generation counter; bumped by every clear() (tests/diagnostics). */
    uint64_t epoch() const { return epoch_; }

    /** Approximate resident bytes (table plus decoded-record storage). */
    size_t footprintBytes() const;

    /**
     * Start a new generation: O(1).  All cached entries become stale (the
     * next lookup of any node decodes again, as a freshly constructed
     * cache would), statistics reset, and a table grown past the initial
     * capacity snaps back to it — but the slot array and decoded-record
     * storage are retained, so no memory is freed or zeroed.
     */
    void clear();

  private:
    struct Slot
    {
        uint64_t key = 0;     // handle.packed() + 1; 0 == never written
        uint32_t value = 0;   // index into entries_
        uint32_t epoch = 0;   // generation the slot was written in
    };

    bool
    live(const Slot& slot) const
    {
        return slot.key != 0 && slot.epoch == epoch_;
    }

    /** Find the slot holding key, or the reusable slot where it belongs. */
    size_t probe(uint64_t key);

    /** Double the table and reinsert the live epoch (expensive growth). */
    void rehash();

    const Gbwt& gbwt_;
    util::MemTracer* tracer_;
    bool cachingEnabled_;
    size_t initialSlots_ = 0; // power-of-two slot count clear() restores
    uint32_t epoch_ = 1;      // 0 marks never-written slots
    std::vector<Slot> slots_;
    // Deque keeps record addresses stable across insertions and rehashes,
    // so record() references stay valid while the cache grows.  Entries
    // outlive clear(): [0, entriesUsed_) belong to the current epoch, the
    // rest are retained storage recycled by the next misses.
    std::deque<DecodedRecord> entries_;
    size_t entriesUsed_ = 0;
    DecodedRecord uncached_; // scratch when caching is disabled
    CacheStats stats_;
};

} // namespace mg::gbwt
