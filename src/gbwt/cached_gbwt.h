/**
 * @file
 * CachedGBWT: the decode cache over the compressed GBWT (Section II-B).
 * Visited node records are kept decompressed in an open-addressing hash
 * table so repeated accesses to the same pangenome region skip the varint
 * decode.  The table's *initial capacity* is the paper's headline tuning
 * parameter (Figures 6-8, Table VIII): too small and the table pays
 * repeated expensive rehash growth; too large and probes lose cache
 * locality while the footprint crowds out the L1/L2.
 *
 * Each worker thread owns one CachedGbwt (as in Giraffe), so no locking is
 * needed on the hot path.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gbwt/gbwt.h"

namespace mg::gbwt {

/** Observability counters for tuning studies and tests. */
struct CacheStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t decodes = 0;
    uint64_t rehashes = 0;
    uint64_t probes = 0;

    double
    hitRate() const
    {
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }
};

/**
 * Per-thread decompression cache over an immutable Gbwt.
 *
 * An initial capacity of 0 disables caching entirely (every access decodes
 * from the compressed arena), which is the "no caching structure" baseline
 * of the paper's Figure 6.
 */
class CachedGbwt
{
  public:
    /** Giraffe's default initial capacity (the paper's default of 256). */
    static constexpr size_t kDefaultInitialCapacity = 256;

    /**
     * @param gbwt Backing compressed index (must outlive the cache).
     * @param initial_capacity Initial hash-table slot count (rounded up to
     *        a power of two); 0 disables caching.
     * @param tracer Optional memory-access tracer for the machine model.
     */
    explicit CachedGbwt(const Gbwt& gbwt,
                        size_t initial_capacity = kDefaultInitialCapacity,
                        util::MemTracer* tracer = nullptr);

    /** Record of an oriented node, decoding and caching on first touch. */
    const DecodedRecord& record(graph::Handle node);

    /** State covering all haplotype visits to a node. */
    SearchState find(graph::Handle node);

    /** One haplotype-consistent step. */
    SearchState extend(const SearchState& state, graph::Handle to);

    /** Haplotype-supported continuations of a state. */
    std::vector<SearchState> successorStates(const SearchState& state);

    /** Number of haplotypes through a node. */
    uint64_t nodeCount(graph::Handle node);

    const Gbwt& backing() const { return gbwt_; }
    /** The attached memory tracer (null when not tracing). */
    util::MemTracer* tracer() const { return tracer_; }
    const CacheStats& stats() const { return stats_; }
    size_t size() const { return entries_.size(); }
    size_t capacity() const { return slots_.size(); }
    bool cachingEnabled() const { return cachingEnabled_; }

    /** Approximate resident bytes (table plus decoded records). */
    size_t footprintBytes() const;

    /** Drop all cached records, keeping the current capacity. */
    void clear();

  private:
    struct Slot
    {
        uint64_t key = 0;     // handle.packed() + 1; 0 == empty
        uint32_t value = 0;   // index into entries_
    };

    /** Find the slot holding key, or the empty slot where it belongs. */
    size_t probe(uint64_t key);

    /** Double the table and reinsert everything (the expensive growth). */
    void rehash();

    const Gbwt& gbwt_;
    util::MemTracer* tracer_;
    bool cachingEnabled_;
    std::vector<Slot> slots_;
    // Deque keeps record addresses stable across insertions and rehashes,
    // so record() references stay valid while the cache grows.
    std::deque<DecodedRecord> entries_;
    DecodedRecord uncached_; // scratch when caching is disabled
    CacheStats stats_;
};

} // namespace mg::gbwt
