/**
 * @file
 * The Graph Burrows-Wheeler Transform: a haplotype index over a variation
 * graph (Section II-B of the paper).  Haplotype paths (both orientations)
 * are stored as an FM-index-style structure: one record per oriented node,
 * varint-compressed at rest in a single byte arena and decompressed on
 * access.  "Compressed at rest, decode on demand" is the property the
 * paper's CachedGBWT (gbwt/cached_gbwt.h) exploits and tunes.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gbwt/record.h"
#include "gbwt/search_state.h"
#include "graph/handle.h"
#include "mem/arena.h"
#include "util/cursor.h"
#include "util/mem_tracer.h"
#include "util/prefetch.h"
#include "util/varint.h"

namespace mg::gbwt {

/**
 * Immutable compressed haplotype index.  Build with GbwtBuilder.
 *
 * The query API mirrors the subset of the real GBWT that Giraffe's
 * extension kernel uses: find() to open a state at a node, extend() to walk
 * one edge haplotype-consistently, and successorStates() to enumerate the
 * supported continuations.
 */
class Gbwt
{
  public:
    Gbwt() = default;

    /** Number of oriented-node slots (2 * numNodes + 2). */
    size_t numSlots() const
    {
        return recordOffsets_.empty() ? 0 : recordOffsets_.size() - 1;
    }

    /** Number of indexed oriented paths (2x the haplotype count). */
    uint64_t numPaths() const { return numPaths_; }

    /** Total haplotype visits over all records. */
    uint64_t totalVisits() const { return totalVisits_; }

    /** Size of the compressed record arena in bytes. */
    size_t compressedBytes() const { return arena_.size(); }

    /** True iff the oriented node has at least one haplotype visit. */
    bool hasRecord(graph::Handle node) const;

    /**
     * Decompress the record of an oriented node.  Returns an empty record
     * for unvisited nodes.  `tracer`, when given, observes the compressed
     * bytes read (this is the access pattern CachedGBWT exists to amortize).
     */
    DecodedRecord decodeRecord(graph::Handle node,
                               util::MemTracer* tracer = nullptr) const;

    /**
     * decodeRecord() into an existing record, reusing its vector capacity
     * (the CachedGBWT's warm-entry path; see DecodedRecord::decodeInto).
     */
    void decodeRecordInto(graph::Handle node, DecodedRecord& out,
                          util::MemTracer* tracer = nullptr) const;

    /**
     * Software-prefetch the compressed bytes of a node's record (the next
     * memory the probe/extend loop will decode on a cache miss).  Purely a
     * hint: no decoding, no tracing, safe for any handle.
     */
    void
    prefetchRecord(graph::Handle node) const
    {
        uint64_t slot = node.packed();
        if (slot + 1 >= recordOffsets_.size()) {
            return;
        }
        util::prefetchSpan(arena_.data() + recordOffsets_[slot],
                           recordOffsets_[slot + 1] - recordOffsets_[slot]);
    }

    /** State covering all haplotype visits to an oriented node. */
    SearchState find(graph::Handle node,
                     util::MemTracer* tracer = nullptr) const;

    /** One haplotype-consistent step (decodes state.node's record). */
    SearchState extend(const SearchState& state, graph::Handle to,
                       util::MemTracer* tracer = nullptr) const;

    /** Number of haplotypes through an oriented node. */
    uint64_t nodeCount(graph::Handle node,
                       util::MemTracer* tracer = nullptr) const;

    /**
     * locate(): the oriented-path identifiers of the visits a state
     * covers, ascending and deduplicated.  Oriented path 2h is haplotype
     * h forward, 2h+1 is its reverse complement (builder insertion
     * order).  Backed by a per-node document array kept in a separate
     * arena so the mapping hot path never touches it.
     */
    std::vector<uint32_t> locate(const SearchState& state) const;

    /**
     * Haplotypes (oriented-path ids) containing `walk` as a contiguous
     * subpath: find() on the first handle, extend() along the rest,
     * locate() the surviving range.  Empty if the walk is unsupported.
     */
    std::vector<uint32_t>
    pathsThrough(const std::vector<graph::Handle>& walk) const;

    /** Serialize the whole index. */
    void save(util::ByteWriter& writer) const;

    /** Deserialize; inverse of save().  Malformed images throw
     *  StatusError carrying the cursor's provenance. */
    static Gbwt load(util::ByteCursor& cursor);

    /** Raw spans of the four arenas (MGZ v3 serialization). */
    struct ArenaRefs
    {
        const uint8_t* arena;
        size_t arenaSize;
        const uint64_t* recordOffsets;
        size_t numRecordOffsets;
        const uint8_t* docArena;
        size_t docArenaSize;
        const uint64_t* docOffsets;
        size_t numDocOffsets;
    };
    ArenaRefs arenaRefs() const;

    /** True when the arenas are mmap-backed (MGZ v3 load). */
    bool isMapped() const { return arena_.isMapped(); }

    /** Heap/mapped bytes held across all four arenas. */
    size_t
    footprintBytes() const
    {
        return arena_.bytes() + recordOffsets_.bytes() + docArena_.bytes() +
               docOffsets_.bytes();
    }

    /**
     * Rebind onto arenas inside a mapped MGZ v3 container.  Performs the
     * same structural checks as load() (offset monotonicity, arena-size
     * consistency) against the mapped tables; throws StatusError-free
     * util::Error on inconsistency.
     */
    void bindMapped(std::shared_ptr<mem::MappedFile> file,
                    const ArenaRefs& refs, uint64_t num_paths,
                    uint64_t total_visits);

  private:
    friend class GbwtBuilder;

    /** Byte range of one record inside the arena. */
    std::pair<const uint8_t*, size_t> recordSpan(graph::Handle node) const;

    mem::ArenaView<uint8_t> arena_;   // concatenated compressed records
    mem::ArenaView<uint64_t> recordOffsets_;  // slot -> offset (n+1 ents)
    // Document array: per-visit oriented-path ids, varint-coded per slot,
    // in a separate arena so locate() support costs the hot path nothing.
    mem::ArenaView<uint8_t> docArena_;
    mem::ArenaView<uint64_t> docOffsets_;
    uint64_t numPaths_ = 0;
    uint64_t totalVisits_ = 0;
};

/**
 * Constructs a Gbwt from haplotype paths.  For every added forward path the
 * builder also indexes its reverse complement, so haplotype-consistent
 * search works in both walk directions (the extension kernel extends seeds
 * leftward by walking flipped handles).
 *
 * Construction requires the forward graph to be a DAG (true for the bubble
 * chain pangenomes produced by mg::sim): visit lists are finalized in
 * topological order, giving the standard GBWT visit ordering — path starts
 * first, then visits grouped by predecessor in handle order.
 */
class GbwtBuilder
{
  public:
    /** Register one haplotype walk (forward handles). */
    void addPath(const std::vector<graph::Handle>& steps);

    /** Build the compressed index serially; the builder is consumed. */
    Gbwt build() &&;

    /**
     * Parallel build: paths are scanned in fixed-size batches and records
     * encoded in fixed slot shards over the work-stealing scheduler, with
     * all merge points anchored at batch/shard boundaries — the output is
     * byte-identical for every thread count (0 = hardware concurrency).
     */
    Gbwt build(unsigned threads) &&;

  private:
    std::vector<std::vector<graph::Handle>> paths_;
};

} // namespace mg::gbwt
