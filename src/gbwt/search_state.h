/**
 * @file
 * GBWT search states.  A state identifies a set of haplotype visits to one
 * oriented node as a half-open range into that node's visit list, exactly
 * like the BWT ranges of an FM index (Section II-B of the paper).  States
 * are extended node-by-node during haplotype-consistent graph walks.
 */
#pragma once

#include <cstdint>
#include <string>

#include "graph/handle.h"

namespace mg::gbwt {

/** A range of haplotype visits at one oriented node. */
struct SearchState
{
    graph::Handle node;
    uint64_t start = 0;
    uint64_t end = 0;

    SearchState() = default;
    SearchState(graph::Handle n, uint64_t s, uint64_t e)
        : node(n), start(s), end(e) {}

    /** Number of haplotype visits covered. */
    uint64_t size() const { return end > start ? end - start : 0; }

    bool empty() const { return end <= start; }

    friend bool operator==(const SearchState& a, const SearchState& b)
    {
        return a.node == b.node && a.start == b.start && a.end == b.end;
    }

    std::string
    str() const
    {
        return node.str() + "[" + std::to_string(start) + "," +
               std::to_string(end) + ")";
    }
};

} // namespace mg::gbwt
