/**
 * @file
 * GBWT node records.  Each oriented node owns one record holding
 *  (a) its outgoing edge list — successor handle plus the offset of this
 *      node's visits inside the successor's visit list (the FM-index LF
 *      mapping base), and
 *  (b) a run-length encoded body: for every haplotype visit, the rank of
 *      the outgoing edge that visit follows next.
 *
 * Records are stored varint-compressed in one flat byte arena (see
 * gbwt/gbwt.h) and decompressed on access; DecodedRecord is the in-memory
 * decoded form that CachedGBWT keeps warm (the paper's key software cache).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/handle.h"
#include "gbwt/search_state.h"
#include "util/cursor.h"
#include "util/varint.h"

namespace mg::gbwt {

/** Sentinel edge rank meaning "no such edge". */
inline constexpr uint32_t kNoEdge = UINT32_MAX;

/** One outgoing edge of a record. */
struct RecordEdge
{
    /** Successor oriented node; invalid handle == path-end marker. */
    graph::Handle successor;
    /** Offset of this node's visits within the successor's visit list. */
    uint64_t offset = 0;
};

/** One run of the RLE body: `length` consecutive visits taking `edgeRank`. */
struct RecordRun
{
    uint32_t edgeRank = 0;
    uint32_t length = 0;
};

/**
 * Decoded (query-ready) form of a node record.
 */
class DecodedRecord
{
  public:
    DecodedRecord() = default;
    DecodedRecord(std::vector<RecordEdge> edges, std::vector<RecordRun> runs,
                  uint64_t num_visits)
        : edges_(std::move(edges)), runs_(std::move(runs)),
          numVisits_(num_visits)
    {}

    bool empty() const { return numVisits_ == 0; }
    uint64_t numVisits() const { return numVisits_; }
    const std::vector<RecordEdge>& edges() const { return edges_; }
    const std::vector<RecordRun>& runs() const { return runs_; }

    /** Rank of the edge to `successor`, or kNoEdge. */
    uint32_t edgeRank(graph::Handle successor) const;

    /**
     * Number of visits in body positions [0, pos) that follow edge `rank`
     * (the FM-index rank query; linear scan over the runs, which are few
     * for bubble-chain pangenomes).
     */
    uint64_t countBefore(uint64_t pos, uint32_t rank) const;

    /**
     * LF mapping: map a visit range at this node through the edge to
     * `successor`.  Returns an empty state if the edge does not exist or no
     * visit in the range follows it.
     */
    SearchState extend(const SearchState& state,
                       graph::Handle successor) const;

    /**
     * All non-empty successor states of `state`, excluding the path-end
     * marker — i.e. the haplotype-supported ways to keep walking.  This is
     * the query the extension kernel issues at every graph step.
     */
    std::vector<SearchState> successorStates(const SearchState& state) const;

    /**
     * successorStates() appended into a caller-owned buffer (not cleared).
     * The extension kernel reuses one buffer across all steps of a mapping
     * run, so the steady-state query allocates nothing.
     */
    void successorStatesInto(const SearchState& state,
                             std::vector<SearchState>& out) const;

    /** Approximate decoded footprint in bytes (for cache accounting). */
    size_t footprintBytes() const;

    /** Serialize into a compressed byte stream. */
    void encode(util::ByteWriter& writer) const;

    /** Inverse of encode().  Bounds- and consistency-checked: malformed
     *  records throw StatusError with the cursor's provenance. */
    static DecodedRecord decode(util::ByteCursor& cursor);

    /**
     * decode() into an existing record, reusing its edge/run vector
     * capacity — the CachedGBWT's epoch reset keeps decoded-record storage
     * alive across reads precisely so this path stops allocating once the
     * per-thread cache is warm.
     */
    static void decodeInto(util::ByteCursor& cursor, DecodedRecord& out);

  private:
    std::vector<RecordEdge> edges_; // sorted by successor handle
    std::vector<RecordRun> runs_;
    uint64_t numVisits_ = 0;
};

} // namespace mg::gbwt
