/**
 * @file
 * GBWT construction.  Visit lists are finalized in topological order of the
 * path-step relation, yielding the canonical GBWT ordering: path starts
 * first, then incoming visits grouped by predecessor.  Because groups stay
 * contiguous and preserve the predecessor's visit order, LF mapping with
 * per-edge offsets is exact (tests verify extension against raw path
 * replay).
 *
 * Construction is parallel with deterministic output: paths are scanned in
 * *fixed-size* batches (batch membership never depends on the thread
 * count), the visit-order DP runs serially (its output is a pure function
 * of the path set — visit ordering is defined by path order and
 * predecessor-handle order, not by topological tie-breaking), and records
 * are encoded in *fixed-size* slot shards whose byte streams concatenate in
 * shard order.  The resulting index is byte-identical for 1, 4, or 64
 * build threads, which is what lets MGZ v3 containers be reproducible
 * artifacts (mmapv3 determinism tests pin this).
 */
#include "gbwt/gbwt.h"

#include <algorithm>
#include <thread>

#include "sched/scheduler.h"
#include "util/common.h"

namespace mg::gbwt {

namespace {

/** Paths per phase-1 scan batch (fixed: batching must not depend on the
 *  thread count or the merge order would).  */
constexpr size_t kPathBatch = 16;

/** Oriented-node slots per phase-3 encode shard. */
constexpr size_t kSlotShard = 2048;

/** A visit waiting at a slot for its predecessor group to be placed. */
struct PendingVisit
{
    uint64_t pred;
    uint32_t path;
    uint32_t step;
};

/** Run work(i) for i in [0, count), over `threads` workers. */
void
runParallel(size_t count, unsigned threads,
            const std::function<void(size_t)>& work)
{
    if (count == 0) {
        return;
    }
    if (threads <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i) {
            work(i);
        }
        return;
    }
    auto scheduler = sched::makeScheduler(sched::SchedulerKind::WorkStealing);
    scheduler->run(count, 1, std::min<size_t>(threads, count),
                   [&](size_t, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                           work(i);
                       }
                   });
}

} // namespace

void
GbwtBuilder::addPath(const std::vector<graph::Handle>& steps)
{
    MG_CHECK(!steps.empty(), "GBWT paths must be non-empty");
    for (graph::Handle step : steps) {
        MG_CHECK(step.valid(), "GBWT paths must use valid handles");
        MG_CHECK(!step.isReverse(),
                 "add forward walks only; the builder derives the reverse");
    }
    paths_.push_back(steps);
    // Reverse-complement walk: flipped handles in reverse order.
    std::vector<graph::Handle> reverse;
    reverse.reserve(steps.size());
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        reverse.push_back(it->flip());
    }
    paths_.push_back(std::move(reverse));
}

Gbwt
GbwtBuilder::build() &&
{
    return std::move(*this).build(1);
}

Gbwt
GbwtBuilder::build(unsigned threads) &&
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    Gbwt gbwt;
    gbwt.numPaths_ = paths_.size();
    if (paths_.empty()) {
        gbwt.recordOffsets_.owned().assign(1, 0);
        gbwt.docOffsets_.owned().assign(1, 0);
        return gbwt;
    }

    // ---- Phase 1 (parallel): scan fixed path batches for the distinct
    // step relation (v -> w), the occurring slots, and the slot range.
    struct BatchScan
    {
        std::vector<std::pair<uint64_t, uint64_t>> edges;
        std::vector<uint64_t> slots;
        uint64_t maxPacked = 0;
    };
    const size_t num_batches = (paths_.size() + kPathBatch - 1) / kPathBatch;
    std::vector<BatchScan> scans(num_batches);
    runParallel(num_batches, threads, [&](size_t b) {
        BatchScan& scan = scans[b];
        const size_t lo = b * kPathBatch;
        const size_t hi = std::min(paths_.size(), lo + kPathBatch);
        for (size_t p = lo; p < hi; ++p) {
            const auto& path = paths_[p];
            for (size_t i = 0; i < path.size(); ++i) {
                uint64_t v = path[i].packed();
                scan.maxPacked = std::max(scan.maxPacked, v);
                scan.slots.push_back(v);
                if (i + 1 < path.size()) {
                    scan.edges.emplace_back(v, path[i + 1].packed());
                }
            }
        }
        std::sort(scan.edges.begin(), scan.edges.end());
        scan.edges.erase(
            std::unique(scan.edges.begin(), scan.edges.end()),
            scan.edges.end());
        std::sort(scan.slots.begin(), scan.slots.end());
        scan.slots.erase(
            std::unique(scan.slots.begin(), scan.slots.end()),
            scan.slots.end());
    });

    uint64_t max_packed = 0;
    std::vector<std::pair<uint64_t, uint64_t>> edges;
    std::vector<uint64_t> present;
    for (const BatchScan& scan : scans) {
        max_packed = std::max(max_packed, scan.maxPacked);
        edges.insert(edges.end(), scan.edges.begin(), scan.edges.end());
        present.insert(present.end(), scan.slots.begin(), scan.slots.end());
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    std::sort(present.begin(), present.end());
    present.erase(std::unique(present.begin(), present.end()),
                  present.end());
    const size_t num_slots = max_packed + 1;

    // CSR successor lists + in-degrees of the step relation (edges are
    // sorted by source, so successor runs are contiguous).
    std::vector<uint64_t> succ_start(num_slots + 1, 0);
    std::vector<uint32_t> in_degree(num_slots, 0);
    for (const auto& [v, w] : edges) {
        ++succ_start[v + 1];
        ++in_degree[w];
    }
    for (size_t s = 0; s < num_slots; ++s) {
        succ_start[s + 1] += succ_start[s];
    }

    // ---- Topological order (Kahn over occurring slots).  The *order* of
    // ties is irrelevant to the output: visit lists depend only on path
    // order and predecessor-handle order, never on which ready slot pops
    // first.
    std::vector<uint64_t> frontier;
    for (uint64_t v : present) {
        if (in_degree[v] == 0) {
            frontier.push_back(v);
        }
    }
    std::vector<uint64_t> topo;
    topo.reserve(present.size());
    while (!frontier.empty()) {
        uint64_t v = frontier.back();
        frontier.pop_back();
        topo.push_back(v);
        for (uint64_t e = succ_start[v]; e < succ_start[v + 1]; ++e) {
            uint64_t w = edges[e].second;
            if (--in_degree[w] == 0) {
                frontier.push_back(w);
            }
        }
    }
    MG_CHECK(topo.size() == present.size(),
             "GBWT construction requires acyclic haplotype walks");

    // ---- Phase 2 (serial): visit-order DP.  visits[slot] holds the
    // ordered next-handle per visit (0 = path end); docs[slot] the
    // oriented-path id per visit (locate()'s document array).
    std::vector<std::vector<uint64_t>> visits(num_slots);
    std::vector<std::vector<uint32_t>> docs(num_slots);
    std::vector<std::vector<PendingVisit>> pending(num_slots);
    std::vector<std::vector<uint32_t>> starts(num_slots);
    for (uint32_t p = 0; p < paths_.size(); ++p) {
        starts[paths_[p].front().packed()].push_back(p);
    }
    // edge_group_offset[i] = start of edges[i].first's visit group inside
    // edges[i].second's list — the LF-mapping offset stored in records.
    std::vector<uint64_t> edge_group_offset(edges.size(), 0);
    auto edge_index = [&](uint64_t v, uint64_t w) -> size_t {
        auto it = std::lower_bound(edges.begin(), edges.end(),
                                   std::make_pair(v, w));
        MG_ASSERT(it != edges.end() && *it == std::make_pair(v, w));
        return static_cast<size_t>(it - edges.begin());
    };

    auto next_of = [&](uint32_t path, uint32_t step) -> uint64_t {
        const auto& steps = paths_[path];
        return step + 1 < steps.size() ? steps[step + 1].packed() : 0;
    };

    for (uint64_t w : topo) {
        auto& list = visits[w];
        auto& doc_list = docs[w];
        auto emit = [&](uint32_t path, uint32_t step) {
            uint64_t next = next_of(path, step);
            list.push_back(next);
            doc_list.push_back(path);
            if (next != 0) {
                pending[next].push_back(
                    PendingVisit{w, path, static_cast<uint32_t>(step + 1)});
            }
        };
        for (uint32_t p : starts[w]) {
            emit(p, 0);
        }
        auto& queued = pending[w];
        if (!queued.empty()) {
            // Groups ordered by predecessor handle; stable sort keeps each
            // predecessor's visit order (appends were contiguous per pred).
            std::stable_sort(queued.begin(), queued.end(),
                             [](const PendingVisit& a,
                                const PendingVisit& b) {
                                 return a.pred < b.pred;
                             });
            for (size_t i = 0; i < queued.size(); ++i) {
                if (i == 0 || queued[i].pred != queued[i - 1].pred) {
                    edge_group_offset[edge_index(queued[i].pred, w)] =
                        list.size();
                }
                emit(queued[i].path, queued[i].step);
            }
            queued.clear();
            queued.shrink_to_fit();
        }
        gbwt.totalVisits_ += list.size();
    }

    // ---- Phase 3 (parallel): encode records + document arrays in fixed
    // slot shards; per-slot sizes prefix-sum into the final offset tables
    // and the shard streams concatenate in shard order.
    const size_t num_shards = (num_slots + kSlotShard - 1) / kSlotShard;
    struct ShardOut
    {
        std::vector<uint8_t> recordBytes;
        std::vector<uint8_t> docBytes;
        std::vector<uint64_t> recordSizes;  // per slot in shard
        std::vector<uint64_t> docSizes;
    };
    std::vector<ShardOut> shards(num_shards);
    runParallel(num_shards, threads, [&](size_t s) {
        ShardOut& out = shards[s];
        const uint64_t lo = s * kSlotShard;
        const uint64_t hi =
            std::min<uint64_t>(num_slots, lo + kSlotShard);
        util::ByteWriter writer;
        util::ByteWriter doc_writer;
        std::vector<uint64_t> distinct;
        for (uint64_t slot = lo; slot < hi; ++slot) {
            const size_t rec_before = writer.size();
            const size_t doc_before = doc_writer.size();
            const std::vector<uint64_t>& nexts = visits[slot];
            if (!nexts.empty()) {
                // Edge list: sorted distinct next handles (0 == end
                // marker sorts first).
                distinct.assign(nexts.begin(), nexts.end());
                std::sort(distinct.begin(), distinct.end());
                distinct.erase(
                    std::unique(distinct.begin(), distinct.end()),
                    distinct.end());
                std::vector<RecordEdge> record_edges;
                record_edges.reserve(distinct.size());
                for (uint64_t next : distinct) {
                    RecordEdge edge;
                    edge.successor = graph::Handle::fromPacked(next);
                    edge.offset =
                        next == 0
                            ? 0
                            : edge_group_offset[edge_index(slot, next)];
                    record_edges.push_back(edge);
                }
                // RLE body over edge ranks.
                std::vector<RecordRun> runs;
                for (uint64_t next : nexts) {
                    auto rank = static_cast<uint32_t>(
                        std::lower_bound(distinct.begin(), distinct.end(),
                                         next) -
                        distinct.begin());
                    if (!runs.empty() && runs.back().edgeRank == rank) {
                        ++runs.back().length;
                    } else {
                        runs.push_back(RecordRun{rank, 1});
                    }
                }
                DecodedRecord record(std::move(record_edges),
                                     std::move(runs), nexts.size());
                record.encode(writer);
                for (uint32_t path : docs[slot]) {
                    doc_writer.putVarint(path);
                }
            }
            out.recordSizes.push_back(writer.size() - rec_before);
            out.docSizes.push_back(doc_writer.size() - doc_before);
        }
        out.recordBytes = writer.takeBytes();
        out.docBytes = doc_writer.takeBytes();
    });

    auto& record_offsets = gbwt.recordOffsets_.owned();
    auto& doc_offsets = gbwt.docOffsets_.owned();
    auto& arena = gbwt.arena_.owned();
    auto& doc_arena = gbwt.docArena_.owned();
    record_offsets.reserve(num_slots + 1);
    doc_offsets.reserve(num_slots + 1);
    record_offsets.push_back(0);
    doc_offsets.push_back(0);
    size_t arena_total = 0;
    size_t doc_total = 0;
    for (const ShardOut& out : shards) {
        arena_total += out.recordBytes.size();
        doc_total += out.docBytes.size();
    }
    arena.reserve(arena_total);
    doc_arena.reserve(doc_total);
    for (const ShardOut& out : shards) {
        for (uint64_t size : out.recordSizes) {
            record_offsets.push_back(record_offsets.back() + size);
        }
        for (uint64_t size : out.docSizes) {
            doc_offsets.push_back(doc_offsets.back() + size);
        }
        arena.insert(arena.end(), out.recordBytes.begin(),
                     out.recordBytes.end());
        doc_arena.insert(doc_arena.end(), out.docBytes.begin(),
                         out.docBytes.end());
    }
    MG_ASSERT(record_offsets.size() == num_slots + 1);
    MG_ASSERT(record_offsets.back() == arena.size());
    MG_ASSERT(doc_offsets.back() == doc_arena.size());
    return gbwt;
}

} // namespace mg::gbwt
