/**
 * @file
 * GBWT construction.  Visit lists are finalized in topological order of the
 * path-step relation, yielding the canonical GBWT ordering: path starts
 * first, then incoming visits grouped by predecessor.  Because groups stay
 * contiguous and preserve the predecessor's visit order, LF mapping with
 * per-edge offsets is exact (tests verify extension against raw path
 * replay).
 */
#include "gbwt/gbwt.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/common.h"

namespace mg::gbwt {

namespace {

/** (path index, step index) pending visit. */
struct PendingVisit
{
    uint32_t path;
    uint32_t step;
};

} // namespace

void
GbwtBuilder::addPath(const std::vector<graph::Handle>& steps)
{
    MG_CHECK(!steps.empty(), "GBWT paths must be non-empty");
    for (graph::Handle step : steps) {
        MG_CHECK(step.valid(), "GBWT paths must use valid handles");
        MG_CHECK(!step.isReverse(),
                 "add forward walks only; the builder derives the reverse");
    }
    paths_.push_back(steps);
    // Reverse-complement walk: flipped handles in reverse order.
    std::vector<graph::Handle> reverse;
    reverse.reserve(steps.size());
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        reverse.push_back(it->flip());
    }
    paths_.push_back(std::move(reverse));
}

Gbwt
GbwtBuilder::build() &&
{
    Gbwt gbwt;
    gbwt.numPaths_ = paths_.size();
    if (paths_.empty()) {
        gbwt.recordOffsets_.assign(1, 0);
        gbwt.docOffsets_.assign(1, 0);
        return gbwt;
    }

    // ---- Topological order of the observed path-step relation. ----
    std::unordered_map<uint64_t, size_t> in_degree;
    std::unordered_map<uint64_t, std::vector<uint64_t>> succ_nodes;
    uint64_t max_packed = 0;
    for (const auto& path : paths_) {
        for (size_t i = 0; i < path.size(); ++i) {
            uint64_t v = path[i].packed();
            max_packed = std::max(max_packed, v);
            in_degree.try_emplace(v, 0);
            if (i + 1 < path.size()) {
                uint64_t w = path[i + 1].packed();
                auto& succ = succ_nodes[v];
                if (std::find(succ.begin(), succ.end(), w) == succ.end()) {
                    succ.push_back(w);
                    ++in_degree.try_emplace(w, 0).first->second;
                }
            }
        }
    }
    std::vector<uint64_t> frontier;
    for (const auto& [node, degree] : in_degree) {
        if (degree == 0) {
            frontier.push_back(node);
        }
    }
    std::vector<uint64_t> topo;
    topo.reserve(in_degree.size());
    while (!frontier.empty()) {
        uint64_t v = frontier.back();
        frontier.pop_back();
        topo.push_back(v);
        auto it = succ_nodes.find(v);
        if (it == succ_nodes.end()) {
            continue;
        }
        for (uint64_t w : it->second) {
            if (--in_degree[w] == 0) {
                frontier.push_back(w);
            }
        }
    }
    MG_CHECK(topo.size() == in_degree.size(),
             "GBWT construction requires acyclic haplotype walks");

    // ---- Build visit lists in topological order. ----
    // visits[slot] = ordered next-handle (packed; 0 = path end) per visit.
    std::unordered_map<uint64_t, std::vector<uint64_t>> visits;
    // docs[slot] = oriented-path id per visit (the document array that
    // backs locate()).
    std::unordered_map<uint64_t, std::vector<uint32_t>> docs;
    // pending[w][v] = visits arriving at w from predecessor v, in v's order.
    std::unordered_map<uint64_t, std::map<uint64_t,
        std::vector<PendingVisit>>> pending;
    // edge offset (v -> w) = group start of v's visits inside w's list.
    std::unordered_map<uint64_t,
        std::unordered_map<uint64_t, uint64_t>> edge_offset;
    // starts[w] = paths beginning at w, in path order.
    std::unordered_map<uint64_t, std::vector<uint32_t>> starts;
    for (uint32_t p = 0; p < paths_.size(); ++p) {
        starts[paths_[p].front().packed()].push_back(p);
    }

    auto next_of = [&](uint32_t path, uint32_t step) -> uint64_t {
        const auto& steps = paths_[path];
        return step + 1 < steps.size() ? steps[step + 1].packed() : 0;
    };

    for (uint64_t w : topo) {
        auto& list = visits[w];
        auto& doc_list = docs[w];
        auto emit = [&](uint32_t path, uint32_t step) {
            uint64_t next = next_of(path, step);
            list.push_back(next);
            doc_list.push_back(path);
            if (next != 0) {
                pending[next][w].push_back(
                    PendingVisit{path, static_cast<uint32_t>(step + 1)});
            }
        };
        if (auto it = starts.find(w); it != starts.end()) {
            for (uint32_t p : it->second) {
                emit(p, 0);
            }
        }
        if (auto it = pending.find(w); it != pending.end()) {
            for (auto& [pred, group] : it->second) {
                edge_offset[pred][w] = list.size();
                for (const PendingVisit& visit : group) {
                    emit(visit.path, visit.step);
                }
            }
            pending.erase(it);
        }
        gbwt.totalVisits_ += list.size();
    }

    // ---- Encode records slot by slot. ----
    size_t num_slots = max_packed + 1;
    gbwt.recordOffsets_.assign(num_slots + 1, 0);
    util::ByteWriter writer;
    for (uint64_t slot = 0; slot < num_slots; ++slot) {
        gbwt.recordOffsets_[slot] = writer.size();
        auto vit = visits.find(slot);
        if (vit == visits.end() || vit->second.empty()) {
            continue;
        }
        const std::vector<uint64_t>& nexts = vit->second;

        // Edge list: sorted distinct next handles (0 == end marker first).
        std::vector<uint64_t> distinct(nexts);
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        std::vector<RecordEdge> edges;
        edges.reserve(distinct.size());
        std::unordered_map<uint64_t, uint32_t> rank_of;
        for (uint64_t next : distinct) {
            RecordEdge edge;
            edge.successor = graph::Handle::fromPacked(next);
            edge.offset = next == 0 ? 0 : edge_offset[slot][next];
            rank_of[next] = static_cast<uint32_t>(edges.size());
            edges.push_back(edge);
        }

        // RLE body over edge ranks.
        std::vector<RecordRun> runs;
        for (uint64_t next : nexts) {
            uint32_t rank = rank_of[next];
            if (!runs.empty() && runs.back().edgeRank == rank) {
                ++runs.back().length;
            } else {
                runs.push_back(RecordRun{rank, 1});
            }
        }

        DecodedRecord record(std::move(edges), std::move(runs),
                             nexts.size());
        record.encode(writer);
    }
    gbwt.recordOffsets_[num_slots] = writer.size();
    gbwt.arena_ = writer.takeBytes();

    // ---- Encode the document array, slot-parallel to the records. ----
    gbwt.docOffsets_.assign(num_slots + 1, 0);
    util::ByteWriter doc_writer;
    for (uint64_t slot = 0; slot < num_slots; ++slot) {
        gbwt.docOffsets_[slot] = doc_writer.size();
        auto dit = docs.find(slot);
        if (dit == docs.end()) {
            continue;
        }
        for (uint32_t path : dit->second) {
            doc_writer.putVarint(path);
        }
    }
    gbwt.docOffsets_[num_slots] = doc_writer.size();
    gbwt.docArena_ = doc_writer.takeBytes();
    return gbwt;
}

} // namespace mg::gbwt
