#include "gbwt/record.h"

#include <algorithm>

#include "fault/fault.h"
#include "util/common.h"

namespace mg::gbwt {

uint32_t
DecodedRecord::edgeRank(graph::Handle successor) const
{
    // Edge lists are tiny (bubble graphs have out-degree ~2); linear scan
    // beats binary search at this size and touches memory predictably.
    for (size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i].successor == successor) {
            return static_cast<uint32_t>(i);
        }
    }
    return kNoEdge;
}

uint64_t
DecodedRecord::countBefore(uint64_t pos, uint32_t rank) const
{
    uint64_t count = 0;
    uint64_t covered = 0;
    for (const RecordRun& run : runs_) {
        if (covered >= pos) {
            break;
        }
        uint64_t take = std::min<uint64_t>(run.length, pos - covered);
        if (run.edgeRank == rank) {
            count += take;
        }
        covered += run.length;
    }
    return count;
}

SearchState
DecodedRecord::extend(const SearchState& state, graph::Handle successor) const
{
    MG_ASSERT(state.end <= numVisits_);
    uint32_t rank = edgeRank(successor);
    if (rank == kNoEdge || state.empty()) {
        return SearchState(successor, 0, 0);
    }
    uint64_t base = edges_[rank].offset;
    uint64_t lo = base + countBefore(state.start, rank);
    uint64_t hi = base + countBefore(state.end, rank);
    return SearchState(successor, lo, hi);
}

std::vector<SearchState>
DecodedRecord::successorStates(const SearchState& state) const
{
    std::vector<SearchState> out;
    successorStatesInto(state, out);
    return out;
}

void
DecodedRecord::successorStatesInto(const SearchState& state,
                                   std::vector<SearchState>& out) const
{
    if (state.empty()) {
        return;
    }
    MG_ASSERT(state.end <= numVisits_);
    const size_t num_edges = edges_.size();
    if (num_edges == 0) {
        return;
    }

    // Chain nodes (out-degree 1) are the overwhelmingly common case in a
    // bubble graph, and their LF mapping is closed-form: every run
    // references the only edge rank, so the visits before state.start are
    // exactly state.start and the range width carries over unchanged.  No
    // run scan at all.
    if (num_edges == 1) {
        if (edges_[0].successor.valid()) {
            const uint64_t base = edges_[0].offset + state.start;
            out.emplace_back(edges_[0].successor, base,
                             base + (state.end - state.start));
        }
        return;
    }

    // One-pass LF mapping for all edges at once.  The per-edge extend()
    // formulation rescans the run body once per edge per bound — O(E*R)
    // for the hottest query the extension kernel issues.  A single scan
    // accumulates, per edge rank, the visits before state.start (`lo`,
    // the rank offset) and the visits inside [start, end) (`in`, the
    // range width) — exactly countBefore(start) and
    // countBefore(end) - countBefore(start) — then emits the same states
    // in the same edge order.  Out-degrees beyond the stack buffers mean
    // a record far outside the bubble-chain regime; take the simple path.
    constexpr size_t kMaxFast = 32;
    if (num_edges > kMaxFast) {
        for (const RecordEdge& edge : edges_) {
            if (!edge.successor.valid()) {
                continue; // path-end marker
            }
            SearchState next = extend(state, edge.successor);
            if (!next.empty()) {
                out.push_back(next);
            }
        }
        return;
    }

    // Zero only the lanes in use: the full 32-lane clear is 512 bytes of
    // stores per call for a typical out-degree of 2.
    uint64_t lo[kMaxFast];
    uint64_t in[kMaxFast];
    for (size_t i = 0; i < num_edges; ++i) {
        lo[i] = 0;
        in[i] = 0;
    }
    uint64_t covered = 0;
    for (const RecordRun& run : runs_) {
        if (covered >= state.end) {
            break;
        }
        const uint64_t run_end = covered + run.length;
        if (run.edgeRank < num_edges) {
            if (covered < state.start) {
                lo[run.edgeRank] +=
                    std::min<uint64_t>(run_end, state.start) - covered;
            }
            if (run_end > state.start) {
                const uint64_t from =
                    std::max<uint64_t>(covered, state.start);
                const uint64_t to = std::min<uint64_t>(run_end, state.end);
                if (to > from) {
                    in[run.edgeRank] += to - from;
                }
            }
        }
        covered = run_end;
    }
    for (size_t i = 0; i < num_edges; ++i) {
        if (in[i] == 0 || !edges_[i].successor.valid()) {
            continue; // unvisited edge or path-end marker
        }
        const uint64_t base = edges_[i].offset + lo[i];
        out.emplace_back(edges_[i].successor, base, base + in[i]);
    }
}

size_t
DecodedRecord::footprintBytes() const
{
    return sizeof(DecodedRecord) + edges_.size() * sizeof(RecordEdge) +
           runs_.size() * sizeof(RecordRun);
}

void
DecodedRecord::encode(util::ByteWriter& writer) const
{
    writer.putVarint(edges_.size());
    uint64_t prev_packed = 0;
    for (const RecordEdge& edge : edges_) {
        uint64_t packed = edge.successor.packed();
        // Edges are sorted by successor, so deltas are small non-negatives.
        writer.putVarint(packed - prev_packed);
        prev_packed = packed;
        writer.putVarint(edge.offset);
    }
    writer.putVarint(runs_.size());
    for (const RecordRun& run : runs_) {
        writer.putVarint(run.edgeRank);
        writer.putVarint(run.length);
    }
}

DecodedRecord
DecodedRecord::decode(util::ByteCursor& cursor)
{
    DecodedRecord record;
    decodeInto(cursor, record);
    return record;
}

void
DecodedRecord::decodeInto(util::ByteCursor& cursor, DecodedRecord& out)
{
    // Fault point: a bit-flipped record surviving the container checksum,
    // or an allocation failure while decompressing under memory pressure.
    fault::inject("gbwt.record.decode");

    out.edges_.clear();
    out.runs_.clear();
    out.numVisits_ = 0;

    uint64_t num_edges = cursor.getVarint();
    // Every edge takes at least two bytes; bounding the count before the
    // reserve keeps a corrupted varint from requesting terabytes.
    cursor.check(num_edges <= cursor.remaining(), util::StatusCode::Corrupt,
                 "record edge count exceeds remaining payload");
    out.edges_.reserve(num_edges);
    uint64_t packed = 0;
    for (uint64_t i = 0; i < num_edges; ++i) {
        packed += cursor.getVarint();
        RecordEdge edge;
        edge.successor = graph::Handle::fromPacked(packed);
        edge.offset = cursor.getVarint();
        out.edges_.push_back(edge);
    }
    uint64_t num_runs = cursor.getVarint();
    cursor.check(num_runs <= cursor.remaining(), util::StatusCode::Corrupt,
                 "record run count exceeds remaining payload");
    out.runs_.reserve(num_runs);
    uint64_t visits = 0;
    for (uint64_t i = 0; i < num_runs; ++i) {
        uint64_t rank = cursor.getVarint();
        uint64_t length = cursor.getVarint();
        cursor.check(rank < num_edges || num_edges == 0,
                     util::StatusCode::Corrupt,
                     "record run references edge rank out of range");
        cursor.check(length <= UINT32_MAX, util::StatusCode::Corrupt,
                     "record run length overflows");
        RecordRun run;
        run.edgeRank = static_cast<uint32_t>(rank);
        run.length = static_cast<uint32_t>(length);
        visits += run.length;
        out.runs_.push_back(run);
    }
    out.numVisits_ = visits;
}

} // namespace mg::gbwt
