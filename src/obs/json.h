/**
 * @file
 * Minimal JSON emit/parse for the observability layer.  Every run summary,
 * metrics snapshot, and trace file in this repo is JSON; before mg::obs each
 * writer hand-rolled escaping and comma placement (and each got a subtly
 * different dialect).  JsonWriter centralises that: a push/pop structural
 * API whose output is always syntactically valid, with one escape routine.
 *
 * The companion parser is a strict recursive-descent reader covering the
 * JSON we emit (objects, arrays, strings, finite numbers, bools, null).  It
 * exists so mg_verify and the tests can validate snapshot files without an
 * external dependency; it is not a general-purpose JSON library (no
 * \uXXXX surrogate pairs, no duplicate-key policy beyond last-wins lookup).
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mg::obs {

/**
 * Streaming JSON emitter.  Call begin/end for containers, key() before each
 * object member, value() for leaves; commas and indentation are inserted
 * automatically.  Structural misuse (key outside an object, unbalanced
 * end) trips MG_ASSERT — writers are always repo code, never user input.
 */
class JsonWriter
{
  public:
    /** @param pretty  two-space indentation and newlines when true. */
    explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Member name inside an object; must precede its value. */
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text);
    JsonWriter& value(double number);
    JsonWriter& value(uint64_t number);
    JsonWriter& value(int64_t number);
    JsonWriter& value(int number);
    JsonWriter& value(unsigned number);
    JsonWriter& value(bool flag);
    JsonWriter& null();

    /** key(name) + value(v) in one call. */
    template <typename T>
    JsonWriter&
    field(std::string_view name, T&& v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** Finished document; asserts all containers are closed. */
    const std::string& str() const;

    /** Write the finished document to a file (throws util::Error). */
    void writeFile(const std::string& path) const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(std::string_view text);

  private:
    enum class Frame : uint8_t
    {
        Object,
        Array
    };

    void separate(bool is_key);
    void indent();

    bool pretty_;
    std::string out_;
    std::vector<Frame> stack_;
    std::vector<bool> hasMembers_;
    bool pendingKey_ = false;
};

namespace json {

/** Parsed JSON value (tagged union over owned containers). */
struct Value
{
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Value> items;
    std::vector<std::pair<std::string, Value>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup (last occurrence wins); nullptr if absent. */
    const Value* find(std::string_view name) const;

    /** Number as uint64 (asserts isNumber()). */
    uint64_t
    asUint() const
    {
        return static_cast<uint64_t>(number);
    }
};

/**
 * Parse a complete JSON document.  Throws util::Error naming the byte
 * offset on malformed input or trailing garbage.
 */
Value parse(std::string_view text, const std::string& origin);

} // namespace json

} // namespace mg::obs
