#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/common.h"

namespace mg::obs {

// --------------------------------------------------------------- JsonWriter

JsonWriter&
JsonWriter::beginObject()
{
    separate(false);
    out_ += '{';
    stack_.push_back(Frame::Object);
    hasMembers_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    MG_ASSERT(!stack_.empty() && stack_.back() == Frame::Object);
    MG_ASSERT(!pendingKey_);
    bool had = hasMembers_.back();
    stack_.pop_back();
    hasMembers_.pop_back();
    if (had && pretty_) {
        out_ += '\n';
        indent();
    }
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separate(false);
    out_ += '[';
    stack_.push_back(Frame::Array);
    hasMembers_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    MG_ASSERT(!stack_.empty() && stack_.back() == Frame::Array);
    bool had = hasMembers_.back();
    stack_.pop_back();
    hasMembers_.pop_back();
    if (had && pretty_) {
        out_ += '\n';
        indent();
    }
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view name)
{
    MG_ASSERT(!stack_.empty() && stack_.back() == Frame::Object);
    MG_ASSERT(!pendingKey_);
    separate(true);
    out_ += '"';
    out_ += escape(name);
    out_ += pretty_ ? "\": " : "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view text)
{
    separate(false);
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string_view(text));
}

JsonWriter&
JsonWriter::value(double number)
{
    separate(false);
    if (!std::isfinite(number)) {
        // JSON has no Inf/NaN; null keeps the document loadable.
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(uint64_t number)
{
    separate(false);
    out_ += std::to_string(number);
    return *this;
}

JsonWriter&
JsonWriter::value(int64_t number)
{
    separate(false);
    out_ += std::to_string(number);
    return *this;
}

JsonWriter&
JsonWriter::value(int number)
{
    return value(static_cast<int64_t>(number));
}

JsonWriter&
JsonWriter::value(unsigned number)
{
    return value(static_cast<uint64_t>(number));
}

JsonWriter&
JsonWriter::value(bool flag)
{
    separate(false);
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    separate(false);
    out_ += "null";
    return *this;
}

const std::string&
JsonWriter::str() const
{
    MG_ASSERT(stack_.empty());
    return out_;
}

void
JsonWriter::writeFile(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    MG_CHECK(out.good(), "cannot open for writing: ", path);
    out << str() << '\n';
    out.flush();
    MG_CHECK(out.good(), "write failed: ", path);
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate(bool is_key)
{
    if (pendingKey_) {
        MG_ASSERT(!is_key);
        pendingKey_ = false;
        return; // value follows its key with no separator of its own
    }
    if (stack_.empty()) {
        return;
    }
    // A bare value is only legal directly inside an array.
    MG_ASSERT(is_key || stack_.back() == Frame::Array);
    if (hasMembers_.back()) {
        out_ += ',';
    }
    hasMembers_.back() = true;
    if (pretty_) {
        out_ += '\n';
        indent();
    }
}

void
JsonWriter::indent()
{
    out_.append(stack_.size() * 2, ' ');
}

// ------------------------------------------------------------------ parser

namespace json {

const Value*
Value::find(std::string_view name) const
{
    const Value* hit = nullptr;
    for (const auto& [key, value] : members) {
        if (key == name) {
            hit = &value;
        }
    }
    return hit;
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, const std::string& origin)
        : text_(text), origin_(origin)
    {}

    Value
    document()
    {
        Value v = parseValue();
        skipSpace();
        MG_CHECK(pos_ == text_.size(), origin_,
                 ": trailing garbage at byte ", pos_);
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char* what)
    {
        MG_CHECK(false, origin_, ": ", what, " at byte ", pos_);
        __builtin_unreachable();
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail("unexpected character");
        }
        ++pos_;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            return false;
        }
        pos_ += word.size();
        return true;
    }

    Value
    parseValue()
    {
        skipSpace();
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': {
            Value v;
            v.kind = Value::Kind::String;
            v.text = parseString();
            return v;
        }
        case 't': {
            Value v;
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            if (!consumeWord("true")) {
                fail("bad literal");
            }
            return v;
        }
        case 'f': {
            Value v;
            v.kind = Value::Kind::Bool;
            if (!consumeWord("false")) {
                fail("bad literal");
            }
            return v;
        }
        case 'n': {
            if (!consumeWord("null")) {
                fail("bad literal");
            }
            return Value{};
        }
        default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            v.members.emplace_back(std::move(key), parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_ + static_cast<size_t>(i)];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code += static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code += static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code += static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad \\u escape");
                    }
                }
                pos_ += 4;
                // Our emitter only produces \u00XX for control bytes;
                // encode the BMP code point as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("bad escape");
            }
        }
    }

    Value
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        MG_CHECK(pos_ > start, origin_, ": bad number at byte ", start);
        Value v;
        v.kind = Value::Kind::Number;
        try {
            v.number = std::stod(std::string(text_.substr(
                start, pos_ - start)));
        } catch (const std::exception&) {
            pos_ = start;
            fail("bad number");
        }
        return v;
    }

    std::string_view text_;
    const std::string& origin_;
    size_t pos_ = 0;
};

} // namespace

Value
parse(std::string_view text, const std::string& origin)
{
    return Parser(text, origin).document();
}

} // namespace json

} // namespace mg::obs
