#include "obs/hub.h"

namespace mg::obs {

Hub::Hub(size_t workers, size_t flight_ring_size)
    : Hub(workers, std::vector<std::string>{}, flight_ring_size)
{}

Hub::Hub(size_t workers, const std::vector<std::string>& serve_tenants,
         size_t flight_ring_size)
    : flight_(workers, flight_ring_size)
{
    map_.reads = registry_.counter("mg_map_reads_total",
                                   "Reads entering the mapping funnel");
    map_.seeds = registry_.counter("mg_map_seeds_total",
                                   "Minimizer seeds fed to clustering");
    map_.clustersFormed =
        registry_.counter("mg_map_clusters_formed_total",
                          "Seed clusters formed");
    map_.clustersProcessed =
        registry_.counter("mg_map_clusters_processed_total",
                          "Seed clusters scored by process_until_threshold_c");
    map_.extensionsAttempted =
        registry_.counter("mg_map_extensions_attempted_total",
                          "Seed extensions started");
    map_.extensionsAborted =
        registry_.counter("mg_map_extensions_aborted_total{reason=\"budget\"}",
                          "Seed extensions cut short by the budget");
    map_.extensionsPrefiltered = registry_.counter(
        "mg_map_extensions_aborted_total{reason=\"prefilter\"}",
        "Chosen seeds killed by the score prefilter before extension");
    map_.extensionsEmitted =
        registry_.counter("mg_map_extensions_emitted_total",
                          "Extensions surviving to the result set");
    map_.rescueAttempts =
        registry_.counter("mg_map_rescue_attempts_total",
                          "Paired-end mate rescue attempts");
    map_.rescueHits = registry_.counter("mg_map_rescue_hits_total",
                                        "Mate rescues that produced an "
                                        "alignment");
    map_.degradedDeadline =
        registry_.counter("mg_map_degraded_total{reason=\"deadline\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.degradedStepCap =
        registry_.counter("mg_map_degraded_total{reason=\"step_cap\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.degradedLookupCap =
        registry_.counter("mg_map_degraded_total{reason=\"lookup_cap\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.degradedWatchdog =
        registry_.counter("mg_map_degraded_total{reason=\"watchdog\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.readLatency =
        registry_.histogram("mg_map_read_latency_ns",
                            "Per-read mapping latency");
    map_.gbwtLookups = registry_.counter("mg_gbwt_lookups_total",
                                         "CachedGbwt record lookups");
    map_.gbwtHits = registry_.counter("mg_gbwt_hits_total",
                                      "CachedGbwt cache hits");
    map_.gbwtDecodes = registry_.counter("mg_gbwt_decodes_total",
                                         "GBWT record decodes (misses)");
    map_.gbwtRehashes = registry_.counter("mg_gbwt_rehashes_total",
                                          "CachedGbwt table rehashes");
    map_.gbwtProbes = registry_.counter("mg_gbwt_probes_total",
                                        "CachedGbwt probe steps");
    map_.gbwtRecycles =
        registry_.counter("mg_gbwt_recycles_total",
                          "Cache entries recycled across epochs instead "
                          "of allocated");

    sched_.batches = registry_.counter("mg_sched_batches_total",
                                       "Work batches completed");
    sched_.steals = registry_.counter("mg_sched_steals_total",
                                      "Batches executed by a thread other "
                                      "than their producer");
    sched_.retries = registry_.counter("mg_sched_retries_total",
                                       "Failed batches retried by "
                                       "runGuarded");
    sched_.quarantined =
        registry_.counter("mg_sched_quarantined_total",
                          "Items quarantined after exhausting retries");
    sched_.batchFailures =
        registry_.counter("mg_sched_batch_failures_total",
                          "Batch executions that threw");
    sched_.watchdogCancels =
        registry_.counter("mg_sched_watchdog_cancels_total",
                          "Batches cancelled by the watchdog");
    sched_.batchLatency =
        registry_.histogram("mg_sched_batch_latency_ns",
                            "Per-batch wall time");
    sched_.queueDepthPeak =
        registry_.gauge("mg_sched_queue_depth_peak",
                        "Peak depth of the batch handoff queue");

    checkpoint_.flushes =
        registry_.counter("mg_checkpoint_flushes_total",
                          "Checkpoint shards flushed durably");
    checkpoint_.flushBytes =
        registry_.counter("mg_checkpoint_flush_bytes_total",
                          "Bytes written by checkpoint flushes");
    checkpoint_.flushNanos =
        registry_.counter("mg_checkpoint_flush_ns_total",
                          "Wall time spent in checkpoint flushes");

    serve_.requests =
        registry_.counter("mg_serve_requests_total",
                          "Frames decoded into mapping requests");
    serve_.badFrames =
        registry_.counter("mg_serve_bad_frames_total",
                          "Frames rejected at the protocol layer");
    serve_.drains = registry_.counter("mg_serve_drains_total",
                                      "Graceful drains started");
    serve_.drainShed =
        registry_.counter("mg_serve_drain_shed_total",
                          "Queued requests shed at the drain deadline");
    serve_.drainForced =
        registry_.counter("mg_serve_drain_forced_total",
                          "In-flight requests force-degraded at the "
                          "drain deadline");
    serve_.queueDepth = registry_.gauge("mg_serve_queue_depth_peak",
                                        "Peak request-queue depth");
    serve_.reloads = registry_.counter("mg_serve_reloads_total",
                                       "Hot swaps published");
    serve_.reloadsRejected =
        registry_.counter("mg_serve_reloads_rejected_total",
                          "Hot swaps rejected by validation");
    serve_.generation =
        registry_.gauge("mg_serve_generation",
                        "Currently published pangenome generation");
    serve_.generationsRetired =
        registry_.counter("mg_serve_generations_retired_total",
                          "Old generations fully unmapped");
    serve_.reloadLatency =
        registry_.histogram("mg_serve_reload_latency_ns",
                            "Wall time of successful swaps");
    for (size_t s = 0; s < kSpanStages; ++s) {
        serve_.stageNanos[s] = registry_.histogram(
            "mg_serve_stage_ns{" +
                promLabel("stage",
                          spanStageName(static_cast<SpanStage>(s))) +
                "}",
            "Per-stage time of traced requests");
    }
    serve_.tenants = serve_tenants;
    serve_.perTenant.reserve(serve_tenants.size());
    for (const std::string& tenant : serve_tenants) {
        ServeTenantMetricIds ids;
        auto named = [&tenant](const char* stem) {
            return std::string(stem) + "{" + promLabel("tenant", tenant) +
                   "}";
        };
        ids.accepted = registry_.counter(
            named("mg_serve_accepted_total"),
            "Requests admitted past admission control");
        ids.shed = registry_.counter(
            named("mg_serve_shed_total"),
            "Requests rejected with RETRY_AFTER");
        ids.completed = registry_.counter(
            named("mg_serve_completed_total"), "Requests answered Ok");
        ids.degraded = registry_.counter(
            named("mg_serve_degraded_total"),
            "Ok responses containing degraded reads");
        ids.errors = registry_.counter(named("mg_serve_errors_total"),
                                       "Requests answered Error");
        ids.deadlineShed = registry_.counter(
            named("mg_serve_deadline_shed_total"),
            "Queued requests shed past their client deadline");
        ids.latency = registry_.histogram(
            named("mg_serve_request_latency_ns"),
            "Admission-to-response latency");
        serve_.perTenant.push_back(ids);
    }
}

} // namespace mg::obs
