#include "obs/hub.h"

namespace mg::obs {

Hub::Hub(size_t workers, size_t flight_ring_size)
    : flight_(workers, flight_ring_size)
{
    map_.reads = registry_.counter("mg_map_reads_total",
                                   "Reads entering the mapping funnel");
    map_.seeds = registry_.counter("mg_map_seeds_total",
                                   "Minimizer seeds fed to clustering");
    map_.clustersFormed =
        registry_.counter("mg_map_clusters_formed_total",
                          "Seed clusters formed");
    map_.clustersProcessed =
        registry_.counter("mg_map_clusters_processed_total",
                          "Seed clusters scored by process_until_threshold_c");
    map_.extensionsAttempted =
        registry_.counter("mg_map_extensions_attempted_total",
                          "Seed extensions started");
    map_.extensionsAborted =
        registry_.counter("mg_map_extensions_aborted_total",
                          "Seed extensions cut short by the budget");
    map_.extensionsEmitted =
        registry_.counter("mg_map_extensions_emitted_total",
                          "Extensions surviving to the result set");
    map_.rescueAttempts =
        registry_.counter("mg_map_rescue_attempts_total",
                          "Paired-end mate rescue attempts");
    map_.rescueHits = registry_.counter("mg_map_rescue_hits_total",
                                        "Mate rescues that produced an "
                                        "alignment");
    map_.degradedDeadline =
        registry_.counter("mg_map_degraded_total{reason=\"deadline\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.degradedStepCap =
        registry_.counter("mg_map_degraded_total{reason=\"step_cap\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.degradedLookupCap =
        registry_.counter("mg_map_degraded_total{reason=\"lookup_cap\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.degradedWatchdog =
        registry_.counter("mg_map_degraded_total{reason=\"watchdog\"}",
                          "Reads degraded (dg:Z) by budget or watchdog");
    map_.readLatency =
        registry_.histogram("mg_map_read_latency_ns",
                            "Per-read mapping latency");
    map_.gbwtLookups = registry_.counter("mg_gbwt_lookups_total",
                                         "CachedGbwt record lookups");
    map_.gbwtHits = registry_.counter("mg_gbwt_hits_total",
                                      "CachedGbwt cache hits");
    map_.gbwtDecodes = registry_.counter("mg_gbwt_decodes_total",
                                         "GBWT record decodes (misses)");
    map_.gbwtRehashes = registry_.counter("mg_gbwt_rehashes_total",
                                          "CachedGbwt table rehashes");
    map_.gbwtProbes = registry_.counter("mg_gbwt_probes_total",
                                        "CachedGbwt probe steps");
    map_.gbwtRecycles =
        registry_.counter("mg_gbwt_recycles_total",
                          "Cache entries recycled across epochs instead "
                          "of allocated");

    sched_.batches = registry_.counter("mg_sched_batches_total",
                                       "Work batches completed");
    sched_.steals = registry_.counter("mg_sched_steals_total",
                                      "Batches executed by a thread other "
                                      "than their producer");
    sched_.retries = registry_.counter("mg_sched_retries_total",
                                       "Failed batches retried by "
                                       "runGuarded");
    sched_.quarantined =
        registry_.counter("mg_sched_quarantined_total",
                          "Items quarantined after exhausting retries");
    sched_.batchFailures =
        registry_.counter("mg_sched_batch_failures_total",
                          "Batch executions that threw");
    sched_.watchdogCancels =
        registry_.counter("mg_sched_watchdog_cancels_total",
                          "Batches cancelled by the watchdog");
    sched_.batchLatency =
        registry_.histogram("mg_sched_batch_latency_ns",
                            "Per-batch wall time");
    sched_.queueDepthPeak =
        registry_.gauge("mg_sched_queue_depth_peak",
                        "Peak depth of the batch handoff queue");

    checkpoint_.flushes =
        registry_.counter("mg_checkpoint_flushes_total",
                          "Checkpoint shards flushed durably");
    checkpoint_.flushBytes =
        registry_.counter("mg_checkpoint_flush_bytes_total",
                          "Bytes written by checkpoint flushes");
    checkpoint_.flushNanos =
        registry_.counter("mg_checkpoint_flush_ns_total",
                          "Wall time spent in checkpoint flushes");
}

} // namespace mg::obs
