#include "obs/request_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"
#include "util/common.h"

namespace mg::obs {

const char*
spanStageName(SpanStage stage)
{
    switch (stage) {
    case SpanStage::Accept: return "accept";
    case SpanStage::Decode: return "decode";
    case SpanStage::QueueWait: return "queue_wait";
    case SpanStage::GenerationPin: return "generation_pin";
    case SpanStage::Seed: return "seed";
    case SpanStage::Cluster: return "cluster";
    case SpanStage::Extend: return "extend";
    case SpanStage::GafEmit: return "gaf_emit";
    case SpanStage::Write: return "write";
    }
    return "?";
}

std::string
traceIdHex(uint64_t trace_id)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, trace_id);
    return buf;
}

uint64_t
parseTraceIdHex(const std::string& text)
{
    if (text.size() != 18 || text[0] != '0' || text[1] != 'x') {
        return 0;
    }
    uint64_t value = 0;
    for (size_t i = 2; i < text.size(); ++i) {
        char c = text[i];
        uint64_t digit;
        if (c >= '0' && c <= '9') {
            digit = static_cast<uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<uint64_t>(c - 'a') + 10;
        } else {
            return 0;
        }
        value = (value << 4) | digit;
    }
    return value;
}

namespace {

/** splitmix64: the id mixer — full-period, well-distributed, cheap. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

RequestTracer::RequestTracer(Params params) : params_(params)
{
    MG_CHECK(params_.lanes > 0, "request tracer needs at least one lane");
    MG_CHECK(params_.sampleRate >= 0.0 && params_.sampleRate <= 1.0,
             "trace sample rate must be in [0, 1]");
    lanes_.reserve(params_.lanes + 1);
    for (size_t i = 0; i < params_.lanes + 1; ++i) {
        lanes_.push_back(std::make_unique<Lane>());
    }
}

uint64_t
RequestTracer::mint()
{
    uint64_t n = mintCounter_.fetch_add(1, std::memory_order_relaxed);
    uint64_t id = mix64(params_.seed ^ (n + 1));
    return id == 0 ? 1 : id;
}

bool
RequestTracer::sampleHead()
{
    if (params_.sampleRate <= 0.0) {
        return false;
    }
    if (params_.sampleRate >= 1.0) {
        return true;
    }
    uint64_t n = sampleCounter_.fetch_add(1, std::memory_order_relaxed);
    // Deterministic in arrival order for a given seed: hash the arrival
    // index and compare against the rate's fixed-point threshold.
    uint64_t h = mix64(params_.seed ^ ~n);
    const double threshold =
        params_.sampleRate * 18446744073709551616.0; // 2^64
    return static_cast<double>(h) < threshold;
}

void
RequestTracer::commitLocked(Lane& lane, const TraceContext& ctx)
{
    for (const Span& span : ctx.spans) {
        if (lane.spans.size() >= params_.maxSpansPerLane) {
            droppedSpans_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        lane.spans.push_back(StoredSpan{ctx.traceId, span});
    }
}

void
RequestTracer::commit(size_t lane_index, TraceContext&& ctx)
{
    MG_ASSERT(lane_index < lanes_.size());
    if (ctx.traceId == 0) {
        return;
    }
    Lane& lane = *lanes_[lane_index];
    if (lane_index == controlLane()) {
        std::lock_guard<std::mutex> lock(lane.mutex);
        commitLocked(lane, ctx);
    } else {
        commitLocked(lane, ctx);
    }
    committed_.fetch_add(1, std::memory_order_relaxed);
    noteExemplar(ctx);
}

void
RequestTracer::noteExemplar(const TraceContext& ctx)
{
    const uint64_t total =
        ctx.endNanos >= ctx.beginNanos ? ctx.endNanos - ctx.beginNanos : 0;
    std::lock_guard<std::mutex> lock(exemplarMutex_);
    for (const Span& span : ctx.spans) {
        const uint64_t nanos = span.endNanos >= span.beginNanos
                                   ? span.endNanos - span.beginNanos
                                   : 0;
        StageExemplar& best =
            stageExemplars_[static_cast<size_t>(span.stage)];
        if (nanos > best.nanos || best.traceId == 0) {
            best.traceId = ctx.traceId;
            best.nanos = nanos;
        }
    }
    if (params_.exemplars == 0) {
        return;
    }
    if (exemplars_.size() >= params_.exemplars &&
        total <= exemplars_.back().totalNanos) {
        return;
    }
    Exemplar exemplar;
    exemplar.ctx = ctx;
    exemplar.totalNanos = total;
    auto at = std::upper_bound(
        exemplars_.begin(), exemplars_.end(), total,
        [](uint64_t t, const Exemplar& e) { return t > e.totalNanos; });
    exemplars_.insert(at, std::move(exemplar));
    if (exemplars_.size() > params_.exemplars) {
        exemplars_.pop_back();
    }
}

void
RequestTracer::beginInFlight(size_t lane, uint64_t trace_id,
                             uint64_t begin_nanos)
{
    MG_ASSERT(lane < lanes_.size());
    lanes_[lane]->inFlightBegin.store(begin_nanos,
                                      std::memory_order_relaxed);
    lanes_[lane]->inFlightId.store(trace_id, std::memory_order_release);
}

void
RequestTracer::endInFlight(size_t lane)
{
    MG_ASSERT(lane < lanes_.size());
    lanes_[lane]->inFlightId.store(0, std::memory_order_release);
}

std::vector<RequestTracer::InFlightEntry>
RequestTracer::inFlight() const
{
    std::vector<InFlightEntry> out;
    for (size_t i = 0; i < lanes_.size(); ++i) {
        uint64_t id = lanes_[i]->inFlightId.load(std::memory_order_acquire);
        if (id == 0) {
            continue;
        }
        InFlightEntry entry;
        entry.lane = i;
        entry.traceId = id;
        entry.beginNanos =
            lanes_[i]->inFlightBegin.load(std::memory_order_relaxed);
        out.push_back(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const InFlightEntry& a, const InFlightEntry& b) {
                  return a.beginNanos < b.beginNanos;
              });
    return out;
}

std::vector<RequestTracer::Exemplar>
RequestTracer::exemplars() const
{
    std::lock_guard<std::mutex> lock(exemplarMutex_);
    return exemplars_;
}

std::array<RequestTracer::StageExemplar, kSpanStages>
RequestTracer::stageExemplars() const
{
    std::lock_guard<std::mutex> lock(exemplarMutex_);
    return stageExemplars_;
}

uint64_t
RequestTracer::committedTotal() const
{
    return committed_.load(std::memory_order_relaxed);
}

uint64_t
RequestTracer::droppedSpans() const
{
    return droppedSpans_.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------ Chrome trace

void
RequestTracer::writeChromeTrace(const std::string& path,
                                const std::string& process_name) const
{
    // Gather every committed span (writers must have stopped).
    std::vector<StoredSpan> all;
    for (const std::unique_ptr<Lane>& lane : lanes_) {
        all.insert(all.end(), lane->spans.begin(), lane->spans.end());
    }
    uint64_t origin = UINT64_MAX;
    for (const StoredSpan& stored : all) {
        origin = std::min(origin, stored.span.beginNanos);
    }
    if (all.empty()) {
        origin = 0;
    }
    auto micros = [origin](uint64_t nanos) {
        return static_cast<double>(nanos - origin) / 1000.0;
    };

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    w.beginObject();
    w.field("ph", "M").field("name", "process_name").field("pid", 1);
    w.key("args").beginObject().field("name", process_name).endObject();
    w.endObject();
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
        w.beginObject();
        w.field("ph", "M").field("name", "thread_name").field("pid", 1);
        w.field("tid", static_cast<uint64_t>(lane + 1));
        w.key("args").beginObject();
        w.field("name", lane == params_.lanes
                            ? std::string("reader")
                            : "worker " + std::to_string(lane));
        w.endObject();
        w.endObject();
    }

    for (const StoredSpan& stored : all) {
        const Span& span = stored.span;
        w.beginObject();
        w.field("ph", "X");
        w.field("name", spanStageName(span.stage));
        w.field("cat", "request");
        w.field("pid", 1);
        w.field("tid", static_cast<uint64_t>(span.lane + 1));
        w.field("ts", micros(span.beginNanos));
        w.field("dur", static_cast<double>(span.endNanos -
                                           span.beginNanos) /
                           1000.0);
        w.key("args").beginObject();
        w.field("trace", traceIdHex(stored.traceId));
        w.endObject();
        w.endObject();
    }

    // Flow arrows: for every trace whose spans sit on more than one lane,
    // start the flow at the end of its last reader-lane span and finish at
    // the begin of its first span on each other lane.
    std::vector<StoredSpan> sorted = all;
    std::sort(sorted.begin(), sorted.end(),
              [](const StoredSpan& a, const StoredSpan& b) {
                  if (a.traceId != b.traceId) {
                      return a.traceId < b.traceId;
                  }
                  return a.span.beginNanos < b.span.beginNanos;
              });
    size_t i = 0;
    while (i < sorted.size()) {
        size_t j = i;
        while (j < sorted.size() &&
               sorted[j].traceId == sorted[i].traceId) {
            ++j;
        }
        const StoredSpan* source = nullptr; // last reader-lane span
        for (size_t k = i; k < j; ++k) {
            if (sorted[k].span.lane == params_.lanes) {
                source = &sorted[k];
            }
        }
        if (source != nullptr) {
            bool started = false;
            for (size_t k = i; k < j; ++k) {
                const Span& span = sorted[k].span;
                if (span.lane == params_.lanes ||
                    span.beginNanos < source->span.endNanos) {
                    continue;
                }
                if (!started) {
                    w.beginObject();
                    w.field("ph", "s").field("name", "request");
                    w.field("cat", "flow");
                    w.field("id", traceIdHex(sorted[i].traceId));
                    w.field("pid", 1);
                    w.field("tid",
                            static_cast<uint64_t>(source->span.lane + 1));
                    w.field("ts", micros(source->span.endNanos));
                    w.endObject();
                    started = true;
                }
                w.beginObject();
                w.field("ph", "f").field("bp", "e");
                w.field("name", "request").field("cat", "flow");
                w.field("id", traceIdHex(sorted[k].traceId));
                w.field("pid", 1);
                w.field("tid", static_cast<uint64_t>(span.lane + 1));
                w.field("ts", micros(span.beginNanos));
                w.endObject();
                break; // one arrow per trace: reader -> first worker span
            }
        }
        i = j;
    }

    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    w.writeFile(path);
}

// ------------------------------------------------------------ mgtrace dump

void
writeTraceDump(const std::string& path,
               const RequestTracer::Exemplar& exemplar,
               const std::vector<FlightEntry>& flight)
{
    const TraceContext& ctx = exemplar.ctx;
    std::vector<Span> spans = ctx.spans;
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
        if (a.beginNanos != b.beginNanos) {
            return a.beginNanos < b.beginNanos;
        }
        return a.endNanos > b.endNanos;
    });

    JsonWriter w;
    w.beginObject();
    w.field("minigiraffe_trace", 1);
    w.field("trace_id", traceIdHex(ctx.traceId));
    w.field("total_ns", exemplar.totalNanos);
    w.field("begin_ns", ctx.beginNanos);
    w.field("end_ns", ctx.endNanos);
    w.field("tenant", ctx.tenant);
    w.field("generation", ctx.generation);
    w.field("disposition",
            ctx.disposition.empty() ? std::string("ok") : ctx.disposition);
    w.key("spans").beginArray();
    for (const Span& span : spans) {
        w.beginObject();
        w.field("stage", spanStageName(span.stage));
        w.field("lane", static_cast<uint64_t>(span.lane));
        w.field("begin_ns", span.beginNanos);
        w.field("end_ns", span.endNanos);
        w.endObject();
    }
    w.endArray();
    w.key("flight").beginArray();
    for (const FlightEntry& entry : flight) {
        w.beginObject();
        w.field("read_index", entry.readIndex);
        w.field("stage", stageName(entry.stage));
        w.field("stage_enter_ns", entry.stageEnterNanos);
        w.field("trace_id", traceIdHex(entry.traceId));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.writeFile(path);
}

} // namespace mg::obs
