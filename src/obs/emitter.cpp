#include "obs/emitter.h"

#include <chrono>
#include <fstream>

#include "util/common.h"

namespace mg::obs {

namespace {

bool
endsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

MetricsEmitter::MetricsEmitter(const Registry& registry, std::string path,
                               double interval_seconds)
    : registry_(registry), path_(std::move(path)),
      intervalSeconds_(interval_seconds),
      prometheus_(endsWith(path_, ".prom"))
{
    MG_CHECK(!path_.empty(), "metrics output path must not be empty");
    MG_CHECK(interval_seconds >= 0.0,
             "metrics interval must be non-negative, got ",
             interval_seconds);
}

MetricsEmitter::~MetricsEmitter()
{
    stop();
}

void
MetricsEmitter::start()
{
    if (intervalSeconds_ <= 0.0) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
        return;
    }
    stopping_ = false;
    running_ = true;
    thread_ = std::thread([this] { threadMain(); });
}

void
MetricsEmitter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_) {
            return;
        }
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
}

void
MetricsEmitter::threadMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto interval = std::chrono::duration<double>(intervalSeconds_);
    while (!stopping_) {
        if (cv_.wait_for(lock, interval, [this] { return stopping_; })) {
            break;
        }
        // Snapshot and write outside the lock: the registry has its own
        // mutex and a slow disk must not block stop().
        lock.unlock();
        tick();
        lock.lock();
    }
}

void
MetricsEmitter::tick()
{
    Snapshot snap = registry_.snapshot();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshots_.push_back(std::move(snap));
    }
    writeOut();
}

void
MetricsEmitter::writeOut()
{
    std::vector<Snapshot> copy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        copy = snapshots_;
    }
    if (copy.empty()) {
        return;
    }
    std::string text = prometheus_ ? toPrometheus(copy.back())
                                   : toJson(copy);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    MG_CHECK(out.good(), "cannot open metrics output: ", path_);
    out << text;
    if (!prometheus_) {
        out << '\n';
    }
    out.flush();
    MG_CHECK(out.good(), "metrics write failed: ", path_);
}

Snapshot
MetricsEmitter::finalize(const std::vector<MetricValue>& extras,
                         const std::function<void(Snapshot&)>& annotate)
{
    stop();
    Snapshot snap = registry_.snapshot();
    for (const MetricValue& extra : extras) {
        snap.metrics.push_back(extra);
    }
    if (annotate) {
        annotate(snap);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshots_.push_back(snap);
    }
    writeOut();
    return snap;
}

size_t
MetricsEmitter::snapshotCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshots_.size();
}

} // namespace mg::obs
