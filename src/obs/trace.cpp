#include "obs/trace.h"

#include <algorithm>
#include <set>

#include "obs/json.h"

namespace mg::obs {

void
writeChromeTrace(const std::string& path, const perf::Profiler& profiler,
                 const std::vector<TraceInstant>& instants,
                 const std::string& process_name)
{
    // Rebase timestamps to the earliest event so the viewer opens at t=0.
    uint64_t origin = UINT64_MAX;
    std::set<size_t> threads;
    profiler.forEachRecord(
        [&](size_t thread, const perf::RegionRecord& rec) {
            origin = std::min(origin, rec.startNanos);
            threads.insert(thread);
        });
    for (const TraceInstant& instant : instants) {
        origin = std::min(origin, instant.atNanos);
        threads.insert(instant.thread);
    }
    if (origin == UINT64_MAX) {
        origin = 0;
    }
    auto micros = [origin](uint64_t nanos) {
        return static_cast<double>(nanos - origin) * 1e-3;
    };

    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.key("traceEvents").beginArray();

    w.beginObject();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", uint64_t{1});
    w.key("args").beginObject().field("name", process_name).endObject();
    w.endObject();
    for (size_t thread : threads) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", uint64_t{1});
        w.field("tid", static_cast<uint64_t>(thread));
        w.key("args")
            .beginObject()
            .field("name", "worker " + std::to_string(thread))
            .endObject();
        w.endObject();
    }

    const std::vector<std::string> region_names = profiler.regionNames();
    profiler.forEachRecord(
        [&](size_t thread, const perf::RegionRecord& rec) {
            w.beginObject();
            w.field("name", region_names[rec.region]);
            w.field("cat", "region");
            w.field("ph", "X");
            w.field("pid", uint64_t{1});
            w.field("tid", static_cast<uint64_t>(thread));
            w.field("ts", micros(rec.startNanos));
            w.field("dur",
                    static_cast<double>(rec.endNanos - rec.startNanos) *
                        1e-3);
            w.endObject();
        });

    for (const TraceInstant& instant : instants) {
        w.beginObject();
        w.field("name", instant.name);
        w.field("cat", "event");
        w.field("ph", "i");
        w.field("s", "t"); // thread-scoped instant
        w.field("pid", uint64_t{1});
        w.field("tid", static_cast<uint64_t>(instant.thread));
        w.field("ts", micros(instant.atNanos));
        w.endObject();
    }

    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    w.writeFile(path);
}

} // namespace mg::obs
