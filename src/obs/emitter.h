/**
 * @file
 * Metrics emitter: turns Registry snapshots into files.  Two modes share
 * one object — end-of-run (finalize() only) and periodic (start() spawns
 * a thread that snapshots every interval and rewrites the output file, so
 * a long mapping run can be watched live with `watch cat metrics.json`).
 *
 * Output format follows the file extension: ".prom" writes the Prometheus
 * text exposition of the latest snapshot (Prometheus scrapes a current
 * state, not a history), anything else writes the JSON snapshot series so
 * per-interval deltas survive for postmortem rate analysis.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mg::obs {

class MetricsEmitter
{
  public:
    /**
     * @param interval_seconds  0 disables the periodic thread; the file
     *                          is written once by finalize().
     */
    MetricsEmitter(const Registry& registry, std::string path,
                   double interval_seconds = 0.0);
    ~MetricsEmitter();

    MetricsEmitter(const MetricsEmitter&) = delete;
    MetricsEmitter& operator=(const MetricsEmitter&) = delete;

    /** Spawn the periodic thread (no-op when interval is 0). */
    void start();

    /** Stop the periodic thread without a final write. */
    void stop();

    /**
     * Take the final snapshot, append `extras` (label-bearing counters
     * only known at end of run, e.g. fault-site fire counts), apply
     * `annotate` (e.g. stamping trace-id exemplars onto histograms),
     * stop the thread, and write the file.  Returns the final snapshot.
     */
    Snapshot
    finalize(const std::vector<MetricValue>& extras = {},
             const std::function<void(Snapshot&)>& annotate = {});

    /** Snapshots taken so far (periodic ticks + final). */
    size_t snapshotCount() const;

    bool prometheus() const { return prometheus_; }

  private:
    void tick();
    void writeOut();
    void threadMain();

    const Registry& registry_;
    std::string path_;
    double intervalSeconds_;
    bool prometheus_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool running_ = false;
    std::vector<Snapshot> snapshots_;
    std::thread thread_;
};

} // namespace mg::obs
