#include "obs/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::obs {

const char*
metricKindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

void
Registry::AtomicHistogram::merge(const stats::LatencyHistogram& h)
{
    const auto& raw = h.rawBuckets();
    for (int b = 0; b < stats::LatencyHistogram::kBuckets; ++b) {
        if (raw[static_cast<size_t>(b)] != 0) {
            buckets[b].fetch_add(raw[static_cast<size_t>(b)],
                                 std::memory_order_relaxed);
        }
    }
    count.fetch_add(h.count(), std::memory_order_relaxed);
    sumNanos.fetch_add(h.sumNanos(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Snapshot

Snapshot
Snapshot::delta(const Snapshot& prev) const
{
    Snapshot out;
    out.atNanos = atNanos;
    out.metrics.reserve(metrics.size());
    for (const MetricValue& cur : metrics) {
        MetricValue d = cur;
        const MetricValue* old = prev.find(cur.name);
        if (old != nullptr && old->kind == cur.kind) {
            switch (cur.kind) {
            case MetricKind::Counter:
                d.value = cur.value >= old->value ? cur.value - old->value
                                                  : cur.value;
                break;
            case MetricKind::Gauge:
                break; // level, not a rate: keep current value
            case MetricKind::Histogram: {
                std::array<uint64_t, stats::LatencyHistogram::kBuckets>
                    buckets{};
                const auto& a = cur.hist.rawBuckets();
                const auto& b = old->hist.rawBuckets();
                for (size_t i = 0; i < buckets.size(); ++i) {
                    buckets[i] = a[i] >= b[i] ? a[i] - b[i] : a[i];
                }
                d.hist = stats::LatencyHistogram::fromRaw(
                    buckets,
                    cur.hist.count() >= old->hist.count()
                        ? cur.hist.count() - old->hist.count()
                        : cur.hist.count(),
                    cur.hist.sumNanos() >= old->hist.sumNanos()
                        ? cur.hist.sumNanos() - old->hist.sumNanos()
                        : cur.hist.sumNanos());
                break;
            }
            }
        }
        out.metrics.push_back(std::move(d));
    }
    return out;
}

const MetricValue*
Snapshot::find(std::string_view name) const
{
    for (const MetricValue& m : metrics) {
        if (m.name == name) {
            return &m;
        }
    }
    return nullptr;
}

uint64_t
Snapshot::valueOf(std::string_view name) const
{
    const MetricValue* m = find(name);
    return m == nullptr ? 0 : m->value;
}

void
Snapshot::addCounter(std::string name, std::string help, uint64_t value)
{
    MetricValue m;
    m.name = std::move(name);
    m.help = std::move(help);
    m.kind = MetricKind::Counter;
    m.value = value;
    metrics.push_back(std::move(m));
}

void
Snapshot::annotateExemplar(std::string_view name, std::string exemplar)
{
    for (MetricValue& m : metrics) {
        if (m.name == name) {
            m.exemplar = std::move(exemplar);
            return;
        }
    }
}

// ---------------------------------------------------------------- Registry

uint32_t
Registry::registerMetric(std::string name, std::string help,
                         MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    MG_CHECK(!frozen_, "metric '", name,
             "' registered after the first registerThread(); all metrics "
             "must be registered at startup");
    for (const Meta& meta : metas_) {
        MG_CHECK(meta.name != name, "duplicate metric name: ", name);
    }
    uint32_t slot =
        static_cast<uint32_t>(kind == MetricKind::Histogram
                                  ? numHistograms_++
                                  : numScalars_++);
    metas_.push_back(Meta{std::move(name), std::move(help), kind, slot});
    return slot;
}

CounterId
Registry::counter(std::string name, std::string help)
{
    return CounterId{registerMetric(std::move(name), std::move(help),
                                    MetricKind::Counter)};
}

GaugeId
Registry::gauge(std::string name, std::string help)
{
    return GaugeId{registerMetric(std::move(name), std::move(help),
                                  MetricKind::Gauge)};
}

HistogramId
Registry::histogram(std::string name, std::string help)
{
    return HistogramId{registerMetric(std::move(name), std::move(help),
                                      MetricKind::Histogram)};
}

Registry::ThreadSlab*
Registry::registerThread(size_t thread_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    frozen_ = true;
    if (thread_index >= slabs_.size()) {
        slabs_.resize(thread_index + 1);
    }
    if (!slabs_[thread_index]) {
        slabs_[thread_index] =
            std::make_unique<ThreadSlab>(numScalars_, numHistograms_);
    }
    return slabs_[thread_index].get();
}

bool
Registry::frozen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return frozen_;
}

size_t
Registry::numMetrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metas_.size();
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.atNanos = util::nowNanos();
    snap.metrics.reserve(metas_.size());
    for (const Meta& meta : metas_) {
        MetricValue m;
        m.name = meta.name;
        m.help = meta.help;
        m.kind = meta.kind;
        if (meta.kind == MetricKind::Histogram) {
            std::array<uint64_t, stats::LatencyHistogram::kBuckets>
                buckets{};
            uint64_t count = 0;
            uint64_t sum = 0;
            for (const auto& slab : slabs_) {
                if (!slab) {
                    continue;
                }
                const AtomicHistogram& h = slab->histogram(meta.slot);
                for (size_t b = 0; b < buckets.size(); ++b) {
                    buckets[b] +=
                        h.buckets[b].load(std::memory_order_relaxed);
                }
                count += h.count.load(std::memory_order_relaxed);
                sum += h.sumNanos.load(std::memory_order_relaxed);
            }
            m.hist = stats::LatencyHistogram::fromRaw(buckets, count, sum);
        } else {
            for (const auto& slab : slabs_) {
                if (!slab) {
                    continue;
                }
                uint64_t v = slab->scalar(meta.slot);
                if (meta.kind == MetricKind::Gauge) {
                    m.value = std::max(m.value, v);
                } else {
                    m.value += v;
                }
            }
        }
        snap.metrics.push_back(std::move(m));
    }
    return snap;
}

// --------------------------------------------------------------- exporters

namespace {

/** Split "base{labels}" into base and the labels text (may be empty). */
void
splitLabels(const std::string& name, std::string& base,
            std::string& labels)
{
    size_t brace = name.find('{');
    if (brace == std::string::npos) {
        base = name;
        labels.clear();
        return;
    }
    base = name.substr(0, brace);
    MG_ASSERT(name.back() == '}');
    labels = name.substr(brace + 1, name.size() - brace - 2);
}

void
appendPromLine(std::string& out, const std::string& base,
               const std::string& labels, const char* suffix,
               const std::string& extra_label, uint64_t value)
{
    out += base;
    out += suffix;
    if (!labels.empty() || !extra_label.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra_label.empty()) {
            out += ',';
        }
        out += extra_label;
        out += '}';
    }
    out += ' ';
    out += std::to_string(value);
    out += '\n';
}

/** HELP text escaping per the exposition format: backslash and newline. */
std::string
escapeHelp(const std::string& help)
{
    std::string out;
    out.reserve(help.size());
    for (char c : help) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
promEscapeLabelValue(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '"') {
            out += "\\\"";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

std::string
promLabel(std::string_view key, std::string_view value)
{
    std::string out(key);
    out += "=\"";
    out += promEscapeLabelValue(value);
    out += '"';
    return out;
}

std::string
toPrometheus(const Snapshot& snapshot)
{
    std::string out;
    // The exposition format requires all series of one family to appear
    // as a single group under one HELP/TYPE header.  Registration order
    // interleaves families (per-tenant metrics register tenant by
    // tenant), so group by base name first — first-appearance order —
    // instead of trusting snapshot order.
    std::vector<std::string> family_order;
    std::unordered_map<std::string, std::vector<const MetricValue*>>
        families;
    for (const MetricValue& m : snapshot.metrics) {
        std::string base;
        std::string labels;
        splitLabels(m.name, base, labels);
        auto it = families.find(base);
        if (it == families.end()) {
            family_order.push_back(base);
            it = families.emplace(base, std::vector<const MetricValue*>{})
                     .first;
        }
        it->second.push_back(&m);
    }
    auto emitSeries = [&out](const MetricValue& m, const std::string& base,
                             const std::string& labels) {
        if (m.kind != MetricKind::Histogram) {
            appendPromLine(out, base, labels, "", "", m.value);
            return;
        }
        const auto& buckets = m.hist.rawBuckets();
        int top = stats::LatencyHistogram::kBuckets - 1;
        while (top > 0 && buckets[static_cast<size_t>(top)] == 0) {
            --top;
        }
        uint64_t cumulative = 0;
        for (int b = 0; b <= top; ++b) {
            cumulative += buckets[static_cast<size_t>(b)];
            if (b == stats::LatencyHistogram::kBuckets - 1) {
                break; // the last bucket is unbounded; covered by +Inf
            }
            appendPromLine(
                out, base, labels, "_bucket",
                "le=\"" +
                    std::to_string(
                        stats::LatencyHistogram::bucketUpperNanos(b)) +
                    "\"",
                cumulative);
        }
        appendPromLine(out, base, labels, "_bucket", "le=\"+Inf\"",
                       m.hist.count());
        appendPromLine(out, base, labels, "_sum", "", m.hist.sumNanos());
        appendPromLine(out, base, labels, "_count", "", m.hist.count());
    };
    for (const std::string& family : family_order) {
        bool header_done = false;
        for (const MetricValue* series : families[family]) {
            const MetricValue& m = *series;
            std::string base;
            std::string labels;
            splitLabels(m.name, base, labels);
            if (!header_done) {
                if (!m.help.empty()) {
                    out +=
                        "# HELP " + base + " " + escapeHelp(m.help) + "\n";
                }
                out += "# TYPE " + base + " ";
                out += metricKindName(m.kind);
                out += '\n';
                header_done = true;
            }
            emitSeries(m, base, labels);
        }
    }
    return out;
}

namespace {

void
appendSnapshotJson(JsonWriter& w, const Snapshot& snap)
{
    w.beginObject();
    w.field("at_ns", snap.atNanos);
    w.key("metrics").beginArray();
    for (const MetricValue& m : snap.metrics) {
        w.beginObject();
        w.field("name", m.name);
        w.field("kind", metricKindName(m.kind));
        if (m.kind == MetricKind::Histogram) {
            w.field("count", m.hist.count());
            w.field("sum_ns", m.hist.sumNanos());
            w.key("buckets").beginArray();
            const auto& buckets = m.hist.rawBuckets();
            for (size_t b = 0; b < buckets.size(); ++b) {
                if (buckets[b] == 0) {
                    continue;
                }
                w.beginArray();
                w.value(static_cast<uint64_t>(b));
                w.value(buckets[b]);
                w.endArray();
            }
            w.endArray();
        } else {
            w.field("value", m.value);
        }
        if (!m.exemplar.empty()) {
            w.field("exemplar", m.exemplar);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

std::string
toJson(const std::vector<Snapshot>& snapshots)
{
    JsonWriter w;
    w.beginObject();
    w.field("minigiraffe_metrics", uint64_t{1});
    w.key("snapshots").beginArray();
    for (const Snapshot& snap : snapshots) {
        appendSnapshotJson(w, snap);
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace mg::obs
