/**
 * @file
 * Chrome trace-event export: turns the profiler's in-memory region log
 * plus run-level instant events (watchdog cancellations, quarantines)
 * into a JSON Array-format trace that chrome://tracing and Perfetto load
 * directly.  This is the paper's Fig. 2 per-thread timeline as an
 * interactive artifact instead of a static plot.
 *
 * Schema notes: one "X" (complete) event per region record with ts/dur in
 * microseconds relative to the earliest record (Perfetto's UI prefers
 * small timestamps), one "i" (instant) event per supplied TraceInstant,
 * and "M" thread_name metadata so workers are labelled.  Everything runs
 * in pid 1 — this is a single-process trace.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/profiler.h"

namespace mg::obs {

/** A point event to overlay on the timeline (e.g. a watchdog cancel). */
struct TraceInstant
{
    std::string name;
    size_t thread = 0;
    uint64_t atNanos = 0;
};

/**
 * Write the merged trace to `path`.  Throws util::Error on I/O failure.
 * `process_name` labels pid 1 in the trace viewer.
 */
void writeChromeTrace(const std::string& path,
                      const perf::Profiler& profiler,
                      const std::vector<TraceInstant>& instants,
                      const std::string& process_name = "minigiraffe");

} // namespace mg::obs
