/**
 * @file
 * End-to-end request tracing for the serving stack.  Every traced request
 * carries a 64-bit trace id (minted by the client, or by the daemon for
 * untagged requests that win the head-sampling coin flip) and accumulates
 * timestamped spans — accept, decode, queue-wait, generation-pin, the
 * mapping stages (seed/cluster/extend/gaf-emit, aggregated across the
 * request's reads), and the response write — in a TraceContext that rides
 * the request through reader and worker threads.
 *
 * The hot path records spans into the request's own context (plain vector,
 * no synchronization); a finished context is committed once per request
 * into a per-worker lane buffer (single-writer append, lock only on the
 * shared control lane).  On top of head sampling, a tail-based "always
 * keep the slowest N" exemplar ring retains full span trees for the worst
 * requests even at 1% sampling, and a per-stage slowest-exemplar table
 * pairs each stage histogram with the trace id that dominated it.
 *
 * Exports: a Chrome-trace JSON (one track per worker plus a reader track,
 * flow arrows following a trace id across threads — loads in Perfetto),
 * and per-exemplar `.mgtrace` dumps validated by mg_verify.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace mg::obs {

/** Stage of a request's life covered by one span. */
enum class SpanStage : uint8_t
{
    Accept = 0,    // frame read off the socket
    Decode,        // wire decode
    QueueWait,     // admitted -> popped by a worker
    GenerationPin, // index generation pin (publish-window wait)
    Seed,          // minimizer seeding, aggregated over the reads
    Cluster,       // seed clustering, aggregated
    Extend,        // extension scoring loop, aggregated
    GafEmit,       // alignment post-process + GAF formatting, aggregated
    Write,         // response encode + socket write
};

constexpr size_t kSpanStages = 9;

const char* spanStageName(SpanStage stage);

/** One timed span on one display track ("lane"). */
struct Span
{
    SpanStage stage = SpanStage::Accept;
    uint32_t lane = 0;
    uint64_t beginNanos = 0;
    uint64_t endNanos = 0;
};

/**
 * Per-request accumulator for the mapping stages.  The mapper adds
 * seed/cluster/extend nanoseconds read by read; the session adds gaf-emit.
 * Observation only: attaching one must not change mapping output.
 */
struct StageAccumulator
{
    std::array<uint64_t, kSpanStages> nanos{};

    void
    add(SpanStage stage, uint64_t ns)
    {
        nanos[static_cast<size_t>(stage)] += ns;
    }
};

/** A traced request's identity and span list, carried with the request. */
struct TraceContext
{
    uint64_t traceId = 0;
    uint64_t beginNanos = 0;
    uint64_t endNanos = 0;
    uint64_t generation = 0;
    std::string tenant;
    /** Final verdict: ok / retry_after / deadline_shed / drain_shed /
     *  error / shutting_down. */
    std::string disposition;
    std::vector<Span> spans;

    void
    span(SpanStage stage, uint32_t lane, uint64_t begin_nanos,
         uint64_t end_nanos)
    {
        spans.push_back(Span{stage, lane, begin_nanos, end_nanos});
    }
};

/** "0x" + lowercase hex, the one rendering of a trace id everywhere. */
std::string traceIdHex(uint64_t trace_id);

/** Inverse of traceIdHex; 0 when the text is not a valid hex id. */
uint64_t parseTraceIdHex(const std::string& text);

class RequestTracer
{
  public:
    struct Params
    {
        /** Worker lanes; one extra shared control lane is added for
         *  reader-thread commits (sheds and errors that never reach a
         *  worker). */
        size_t lanes = 1;
        /** Head-sampling probability for untagged requests, [0, 1]. */
        double sampleRate = 0.0;
        /** Slowest-N exemplar ring size. */
        size_t exemplars = 8;
        /** Per-lane committed-span capacity; spans past it are counted
         *  as dropped, bounding memory on long runs. */
        size_t maxSpansPerLane = 1 << 16;
        /** Mixes into minted ids so concurrent daemons do not collide. */
        uint64_t seed = 0x9E3779B97F4A7C15ull;
    };

    explicit RequestTracer(Params params);

    const Params& params() const { return params_; }

    /** Lane index reader threads commit on (mutex-guarded). */
    size_t controlLane() const { return params_.lanes; }

    /** Mint a nonzero, well-mixed trace id (thread-safe). */
    uint64_t mint();

    /** Head-sampling coin flip for an untagged request (thread-safe,
     *  deterministic in arrival order for a given seed). */
    bool sampleHead();

    /**
     * Commit a finished request's spans.  `lane` must be the calling
     * thread's own lane (single-writer append) or controlLane() (any
     * thread, serialized internally).  Also feeds the slowest-N exemplar
     * ring and the per-stage exemplar table.
     */
    void commit(size_t lane, TraceContext&& ctx);

    // ---------------------------------------------------- live introspection

    /** Mark `lane` as serving `trace_id` since `begin_nanos` (atomics;
     *  only the lane's owner writes). */
    void beginInFlight(size_t lane, uint64_t trace_id, uint64_t begin_nanos);
    void endInFlight(size_t lane);

    struct InFlightEntry
    {
        size_t lane = 0;
        uint64_t traceId = 0;
        uint64_t beginNanos = 0;
    };

    /** Currently in-flight traced requests, oldest first. */
    std::vector<InFlightEntry> inFlight() const;

    // ------------------------------------------------------------- exemplars

    struct Exemplar
    {
        TraceContext ctx;
        uint64_t totalNanos = 0;
    };

    /** Slowest-first copy of the exemplar ring. */
    std::vector<Exemplar> exemplars() const;

    struct StageExemplar
    {
        uint64_t traceId = 0;
        uint64_t nanos = 0;
    };

    /** Slowest trace id seen per stage (traceId 0 when none yet). */
    std::array<StageExemplar, kSpanStages> stageExemplars() const;

    // ------------------------------------------------------------ accounting

    uint64_t committedTotal() const;
    uint64_t droppedSpans() const;

    // --------------------------------------------------------------- exports

    /**
     * Chrome-trace JSON of every committed span: one track per worker
     * plus the reader/control track, flow arrows ("s"/"f" pairs keyed by
     * trace id) wherever a request's spans cross lanes.  Call after the
     * span writers have stopped (the daemon exports post-join).
     */
    void writeChromeTrace(const std::string& path,
                          const std::string& process_name) const;

  private:
    struct StoredSpan
    {
        uint64_t traceId = 0;
        Span span;
    };

    struct Lane
    {
        std::vector<StoredSpan> spans;
        std::mutex mutex; // taken only for the shared control lane
        alignas(64) std::atomic<uint64_t> inFlightId{0};
        std::atomic<uint64_t> inFlightBegin{0};
    };

    void commitLocked(Lane& lane, const TraceContext& ctx);
    void noteExemplar(const TraceContext& ctx);

    Params params_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::atomic<uint64_t> mintCounter_{0};
    std::atomic<uint64_t> sampleCounter_{0};
    std::atomic<uint64_t> committed_{0};
    std::atomic<uint64_t> droppedSpans_{0};

    mutable std::mutex exemplarMutex_;
    std::vector<Exemplar> exemplars_; // slowest-first, bounded
    std::array<StageExemplar, kSpanStages> stageExemplars_{};
};

/**
 * Write one slow-request `.mgtrace` dump: the span tree, the request's
 * disposition, and the flight-recorder context captured at dump time.
 * Validated by `mg_verify`.
 */
void writeTraceDump(const std::string& path,
                    const RequestTracer::Exemplar& exemplar,
                    const std::vector<FlightEntry>& flight);

} // namespace mg::obs
