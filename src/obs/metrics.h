/**
 * @file
 * Live metrics registry: named counters/gauges/histograms registered once
 * at startup, incremented lock-free on the hot path, and aggregated into
 * point-in-time snapshots that export as Prometheus text or JSON.
 *
 * Concurrency model — the part that has to be exactly right:
 *  - Registration (counter()/gauge()/histogram()) happens on one thread
 *    before workers start and is frozen at the first registerThread();
 *    registering later throws.  This is what makes the hot path safe: the
 *    metric -> cell layout never changes while workers run.
 *  - Each worker owns a ThreadSlab of relaxed std::atomic<uint64_t> cells.
 *    Exactly one thread writes a slab (single-writer), so increments are
 *    plain relaxed fetch_add with no contention; the atomics exist so the
 *    emitter thread can read mid-run without a data race (TSan-clean).
 *  - Scalar cells are cache-line padded and histograms are cache-line
 *    aligned, so two metrics never share a line and the emitter's reads
 *    never bounce a worker's line between cores mid-batch.
 *  - snapshot() sums cells across slabs under the same mutex that guards
 *    slab creation; it is called from the emitter thread or at end of run,
 *    never on the mapping path.
 *
 * Counters only increase; gauges hold a level (aggregated across slabs by
 * max, which is what peak-style gauges want); histograms reuse
 * stats::LatencyHistogram's log2-bucket scheme so snapshot values merge
 * with the rest of the stats layer.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stats/latency.h"

namespace mg::obs {

enum class MetricKind : uint8_t
{
    Counter,
    Gauge,
    Histogram
};

/** Kind name as used in the JSON snapshot schema. */
const char* metricKindName(MetricKind kind);

/** Typed handles; the slot indexes the slab's cell array directly. */
struct CounterId
{
    uint32_t slot = UINT32_MAX;
};
struct GaugeId
{
    uint32_t slot = UINT32_MAX;
};
struct HistogramId
{
    uint32_t slot = UINT32_MAX;
};

/** One metric's aggregated value at snapshot time. */
struct MetricValue
{
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Counter;
    uint64_t value = 0;             // counter / gauge
    stats::LatencyHistogram hist;   // histogram
    /** Optional trace-id exemplar ("0x…"), carried into the JSON
     *  snapshot so a histogram can name the request that dominated it. */
    std::string exemplar;
};

/** Point-in-time aggregation over all thread slabs. */
struct Snapshot
{
    uint64_t atNanos = 0;
    std::vector<MetricValue> metrics; // registration order

    /**
     * This snapshot minus an earlier one: counters and histograms
     * subtract, gauges keep their current level.  Used by the periodic
     * emitter to report per-interval rates.
     */
    Snapshot delta(const Snapshot& prev) const;

    /** Lookup by full name; nullptr if absent. */
    const MetricValue* find(std::string_view name) const;

    /** Convenience: counter/gauge value by name, 0 if absent. */
    uint64_t valueOf(std::string_view name) const;

    /**
     * Append an end-of-run extra (e.g. per-site fault counts whose set of
     * labels is only known after the run).
     */
    void addCounter(std::string name, std::string help, uint64_t value);

    /** Attach a trace-id exemplar to the named metric (no-op if absent). */
    void annotateExemplar(std::string_view name, std::string exemplar);
};

class Registry
{
  public:
    /** Cache-line padded cell: one scalar metric on one thread. */
    struct alignas(64) PaddedCell
    {
        std::atomic<uint64_t> value{0};
    };

    /**
     * One histogram on one thread, bucket scheme identical to
     * stats::LatencyHistogram.  Contiguous buckets are fine: the owning
     * worker is the only writer and the struct starts on its own line.
     */
    struct alignas(64) AtomicHistogram
    {
        std::atomic<uint64_t> buckets[stats::LatencyHistogram::kBuckets]{};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sumNanos{0};

        void
        observe(uint64_t nanos)
        {
            uint64_t n = nanos;
            int bucket = 0;
            while (n > 1 && bucket < stats::LatencyHistogram::kBuckets - 1) {
                n >>= 1;
                ++bucket;
            }
            buckets[bucket].fetch_add(1, std::memory_order_relaxed);
            count.fetch_add(1, std::memory_order_relaxed);
            sumNanos.fetch_add(nanos, std::memory_order_relaxed);
        }

        /** Fold a finished stats histogram in (end-of-run roll-ups). */
        void merge(const stats::LatencyHistogram& h);
    };

    /** One worker's private cells; single writer, any-thread readers. */
    class ThreadSlab
    {
      public:
        ThreadSlab(size_t scalars, size_t histograms)
            : scalars_(scalars), histograms_(histograms)
        {}

        void
        add(CounterId id, uint64_t delta = 1)
        {
            scalars_[id.slot].value.fetch_add(delta,
                                              std::memory_order_relaxed);
        }

        void
        set(GaugeId id, uint64_t value)
        {
            scalars_[id.slot].value.store(value, std::memory_order_relaxed);
        }

        /** Raise the gauge to at least `value` (peak tracking). */
        void
        raise(GaugeId id, uint64_t value)
        {
            std::atomic<uint64_t>& cell = scalars_[id.slot].value;
            uint64_t seen = cell.load(std::memory_order_relaxed);
            while (seen < value && !cell.compare_exchange_weak(
                                       seen, value,
                                       std::memory_order_relaxed)) {
            }
        }

        void
        observe(HistogramId id, uint64_t nanos)
        {
            histograms_[id.slot].observe(nanos);
        }

        void
        mergeHistogram(HistogramId id, const stats::LatencyHistogram& h)
        {
            histograms_[id.slot].merge(h);
        }

        uint64_t
        scalar(uint32_t slot) const
        {
            return scalars_[slot].value.load(std::memory_order_relaxed);
        }

        const AtomicHistogram&
        histogram(uint32_t slot) const
        {
            return histograms_[slot];
        }

      private:
        std::vector<PaddedCell> scalars_;
        std::vector<AtomicHistogram> histograms_;
    };

    /**
     * Register a metric.  Throws util::Error once any thread slab exists
     * (layout is frozen) or when the name is already taken.
     */
    CounterId counter(std::string name, std::string help);
    GaugeId gauge(std::string name, std::string help);
    HistogramId histogram(std::string name, std::string help);

    /**
     * Create (or fetch) the slab for a worker thread slot.  First call
     * freezes registration.
     */
    ThreadSlab* registerThread(size_t thread_index);

    /** True once registerThread() has been called. */
    bool frozen() const;

    size_t numMetrics() const;

    /** Aggregate all slabs; safe concurrently with worker increments. */
    Snapshot snapshot() const;

  private:
    struct Meta
    {
        std::string name;
        std::string help;
        MetricKind kind;
        uint32_t slot;
    };

    uint32_t registerMetric(std::string name, std::string help,
                            MetricKind kind);

    mutable std::mutex mutex_;
    std::vector<Meta> metas_;
    size_t numScalars_ = 0;
    size_t numHistograms_ = 0;
    bool frozen_ = false;
    std::vector<std::unique_ptr<ThreadSlab>> slabs_;
};

/**
 * Escape a label value per the Prometheus text-format spec: backslash,
 * double quote, and newline become \\, \" and \n.
 */
std::string promEscapeLabelValue(std::string_view value);

/**
 * Bake one label into a metric name suffix: `key="value"` with the value
 * escaped.  Registration sites compose these so exposition never has to
 * re-parse (or guess at) embedded quoting.
 */
std::string promLabel(std::string_view key, std::string_view value);

/**
 * Prometheus text exposition of one snapshot.  Histogram buckets are
 * cumulative with `le` bounds in nanoseconds (metric names carry a _ns
 * suffix to make the unit explicit).  Names may embed labels
 * ("name{site=\"x\"}"); HELP/TYPE lines use the base name, with HELP
 * text escaped per the spec (backslash and newline).
 */
std::string toPrometheus(const Snapshot& snapshot);

/**
 * JSON document holding a series of snapshots:
 * {"minigiraffe_metrics":1,"snapshots":[{"at_ns":...,"metrics":[...]}]}.
 * Counters/gauges carry "value"; histograms carry "count", "sum_ns" and
 * sparse "buckets" as [bucket_index, count] pairs.
 */
std::string toJson(const std::vector<Snapshot>& snapshots);

} // namespace mg::obs
