/**
 * @file
 * Observability hub: one object an app constructs when any telemetry flag
 * is set, bundling the metrics Registry (with every repo metric already
 * registered, so the layout freezes correctly before workers start), the
 * FlightRecorder, and the typed metric-id structs each subsystem needs.
 * Passing `Hub*` (nullable) through run() entry points is the wiring
 * convention: a null hub means telemetry is off and the hot path pays one
 * pointer test.
 *
 * Metric naming scheme (see DESIGN.md §3g): `mg_<area>_<noun>_total` for
 * counters, `mg_<area>_<noun>_ns` for nanosecond histograms/durations,
 * bare `mg_<area>_<noun>` for gauges; fixed label sets are baked into the
 * name ("mg_map_degraded_total{reason=\"deadline\"}") so the hot path
 * never formats labels.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include <array>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace mg::obs {

/** Mapper funnel + GBWT cache ids (incremented via MapperState). */
struct MapMetricIds
{
    CounterId reads;
    CounterId seeds;
    CounterId clustersFormed;
    CounterId clustersProcessed;
    CounterId extensionsAttempted;
    CounterId extensionsAborted;
    CounterId extensionsPrefiltered;
    CounterId extensionsEmitted;
    CounterId rescueAttempts;
    CounterId rescueHits;
    CounterId degradedDeadline;
    CounterId degradedStepCap;
    CounterId degradedLookupCap;
    CounterId degradedWatchdog;
    HistogramId readLatency;
    CounterId gbwtLookups;
    CounterId gbwtHits;
    CounterId gbwtDecodes;
    CounterId gbwtRehashes;
    CounterId gbwtProbes;
    CounterId gbwtRecycles;
};

/** Scheduler / failure-isolation ids (mostly folded in at end of run). */
struct SchedMetricIds
{
    CounterId batches;
    CounterId steals;
    CounterId retries;
    CounterId quarantined;
    CounterId batchFailures;
    CounterId watchdogCancels;
    HistogramId batchLatency;
    GaugeId queueDepthPeak;
};

/** Checkpoint writer ids. */
struct CheckpointMetricIds
{
    CounterId flushes;
    CounterId flushBytes;
    CounterId flushNanos;
};

/** Serving-plane ids for one tenant (label baked into the name). */
struct ServeTenantMetricIds
{
    /** Requests admitted past admission control. */
    CounterId accepted;
    /** Requests rejected with RETRY_AFTER (backpressure). */
    CounterId shed;
    /** Requests answered Ok. */
    CounterId completed;
    /** Ok responses containing at least one dg:Z-degraded read. */
    CounterId degraded;
    /** Requests answered Error (malformed, mapping failure, dead peer). */
    CounterId errors;
    /** Queued requests shed because their client deadline could no
     *  longer be met (DEADLINE_SHED). */
    CounterId deadlineShed;
    /** Admission-to-response latency (the SLO histogram). */
    HistogramId latency;
};

/** Daemon-wide serving ids plus the per-tenant sets. */
struct ServeMetricIds
{
    /** Tenant names, index-aligned with perTenant. */
    std::vector<std::string> tenants;
    std::vector<ServeTenantMetricIds> perTenant;
    /** Frames decoded into requests (before admission). */
    CounterId requests;
    /** Frames rejected at the protocol layer (magic/CRC/decode). */
    CounterId badFrames;
    /** Graceful drains started. */
    CounterId drains;
    /** Queued requests shed at the drain deadline (ShuttingDown). */
    CounterId drainShed;
    /** Requests force-degraded past the drain deadline. */
    CounterId drainForced;
    /** Peak request-queue depth (max-aggregated gauge). */
    GaugeId queueDepth;
    /** Hot swaps published (successful RELOADs). */
    CounterId reloads;
    /** RELOADs rejected by validation (old index kept serving). */
    CounterId reloadsRejected;
    /** Currently published pangenome generation (max-aggregated gauge). */
    GaugeId generation;
    /** Old generations fully retired (last pinned request completed,
     *  arenas unmapped). */
    CounterId generationsRetired;
    /** Wall time of successful swaps, load-to-publish. */
    HistogramId reloadLatency;
    /** Per-stage request time, one labelled histogram per SpanStage
     *  (`mg_serve_stage_ns{stage="..."}`), fed by traced requests. */
    std::array<HistogramId, kSpanStages> stageNanos;
};

class Hub
{
  public:
    explicit Hub(size_t workers,
                 size_t flight_ring_size =
                     FlightRecorder::kDefaultRingSize);

    /**
     * Hub for a serving daemon: additionally registers the serving-plane
     * metrics, one labelled set per tenant name, before the layout
     * freezes.  Tenant order is preserved; serve().perTenant is
     * index-aligned with `serve_tenants`.
     */
    Hub(size_t workers, const std::vector<std::string>& serve_tenants,
        size_t flight_ring_size = FlightRecorder::kDefaultRingSize);

    Registry& registry() { return registry_; }
    const Registry& registry() const { return registry_; }
    FlightRecorder& flight() { return flight_; }
    const FlightRecorder& flight() const { return flight_; }

    const MapMetricIds& map() const { return map_; }
    const SchedMetricIds& sched() const { return sched_; }
    const CheckpointMetricIds& checkpoint() const { return checkpoint_; }
    const ServeMetricIds& serve() const { return serve_; }

    /** Shorthand for registry().registerThread(worker). */
    Registry::ThreadSlab*
    slab(size_t worker)
    {
        return registry_.registerThread(worker);
    }

  private:
    Registry registry_;
    FlightRecorder flight_;
    MapMetricIds map_;
    SchedMetricIds sched_;
    CheckpointMetricIds checkpoint_;
    ServeMetricIds serve_;
};

} // namespace mg::obs
