/**
 * @file
 * Observability hub: one object an app constructs when any telemetry flag
 * is set, bundling the metrics Registry (with every repo metric already
 * registered, so the layout freezes correctly before workers start), the
 * FlightRecorder, and the typed metric-id structs each subsystem needs.
 * Passing `Hub*` (nullable) through run() entry points is the wiring
 * convention: a null hub means telemetry is off and the hot path pays one
 * pointer test.
 *
 * Metric naming scheme (see DESIGN.md §3g): `mg_<area>_<noun>_total` for
 * counters, `mg_<area>_<noun>_ns` for nanosecond histograms/durations,
 * bare `mg_<area>_<noun>` for gauges; fixed label sets are baked into the
 * name ("mg_map_degraded_total{reason=\"deadline\"}") so the hot path
 * never formats labels.
 */
#pragma once

#include <cstddef>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mg::obs {

/** Mapper funnel + GBWT cache ids (incremented via MapperState). */
struct MapMetricIds
{
    CounterId reads;
    CounterId seeds;
    CounterId clustersFormed;
    CounterId clustersProcessed;
    CounterId extensionsAttempted;
    CounterId extensionsAborted;
    CounterId extensionsEmitted;
    CounterId rescueAttempts;
    CounterId rescueHits;
    CounterId degradedDeadline;
    CounterId degradedStepCap;
    CounterId degradedLookupCap;
    CounterId degradedWatchdog;
    HistogramId readLatency;
    CounterId gbwtLookups;
    CounterId gbwtHits;
    CounterId gbwtDecodes;
    CounterId gbwtRehashes;
    CounterId gbwtProbes;
    CounterId gbwtRecycles;
};

/** Scheduler / failure-isolation ids (mostly folded in at end of run). */
struct SchedMetricIds
{
    CounterId batches;
    CounterId steals;
    CounterId retries;
    CounterId quarantined;
    CounterId batchFailures;
    CounterId watchdogCancels;
    HistogramId batchLatency;
    GaugeId queueDepthPeak;
};

/** Checkpoint writer ids. */
struct CheckpointMetricIds
{
    CounterId flushes;
    CounterId flushBytes;
    CounterId flushNanos;
};

class Hub
{
  public:
    explicit Hub(size_t workers,
                 size_t flight_ring_size =
                     FlightRecorder::kDefaultRingSize);

    Registry& registry() { return registry_; }
    const Registry& registry() const { return registry_; }
    FlightRecorder& flight() { return flight_; }
    const FlightRecorder& flight() const { return flight_; }

    const MapMetricIds& map() const { return map_; }
    const SchedMetricIds& sched() const { return sched_; }
    const CheckpointMetricIds& checkpoint() const { return checkpoint_; }

    /** Shorthand for registry().registerThread(worker). */
    Registry::ThreadSlab*
    slab(size_t worker)
    {
        return registry_.registerThread(worker);
    }

  private:
    Registry registry_;
    FlightRecorder flight_;
    MapMetricIds map_;
    SchedMetricIds sched_;
    CheckpointMetricIds checkpoint_;
};

} // namespace mg::obs
