#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <ctime>
#include <unistd.h>

#include "stats/latency.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::obs {

const char*
stageName(ReadStage stage)
{
    switch (stage) {
    case ReadStage::Idle: return "idle";
    case ReadStage::Start: return "start";
    case ReadStage::Cluster: return "cluster";
    case ReadStage::Process: return "process";
    case ReadStage::Extend: return "extend";
    case ReadStage::Rescue: return "rescue";
    case ReadStage::Done: return "done";
    }
    return "?";
}

void
FlightRecorder::Ring::begin(uint64_t read_index)
{
    uint64_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head % slots_.size()];
    slot.readIndex.store(read_index, std::memory_order_relaxed);
    slot.enterNanos.store(util::nowNanos(), std::memory_order_relaxed);
    slot.traceId.store(currentTrace_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    slot.stage.store(static_cast<uint8_t>(ReadStage::Start),
                     std::memory_order_relaxed);
    head_.store(head + 1, std::memory_order_release);
}

void
FlightRecorder::Ring::stage(ReadStage s)
{
    uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == 0) {
        return; // stage() before any begin(): nothing to attribute
    }
    Slot& slot = slots_[(head - 1) % slots_.size()];
    slot.enterNanos.store(util::nowNanos(), std::memory_order_relaxed);
    slot.stage.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
}

std::vector<FlightEntry>
FlightRecorder::Ring::snapshot() const
{
    std::vector<FlightEntry> out;
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t n = head < slots_.size() ? head : slots_.size();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        FlightEntry entry = decodeSlot((head - 1 - i) % slots_.size());
        if (entry.stage == ReadStage::Idle) {
            continue;
        }
        out.push_back(entry);
    }
    return out;
}

FlightRecorder::FlightRecorder(size_t workers, size_t ring_size)
{
    MG_CHECK(workers > 0, "flight recorder needs at least one worker");
    MG_CHECK(ring_size > 0, "flight recorder ring size must be positive");
    rings_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
        rings_.push_back(std::make_unique<Ring>(ring_size));
    }
}

std::string
formatFlightEntries(const std::vector<FlightEntry>& entries,
                    uint64_t now_nanos)
{
    std::string out;
    for (const FlightEntry& entry : entries) {
        uint64_t age = now_nanos >= entry.stageEnterNanos
                           ? now_nanos - entry.stageEnterNanos
                           : 0;
        out += "    read ";
        out += std::to_string(entry.readIndex);
        out += " stage=";
        out += stageName(entry.stage);
        if (entry.traceId != 0) {
            char trace[32];
            std::snprintf(trace, sizeof(trace), " trace=0x%016llx",
                          static_cast<unsigned long long>(entry.traceId));
            out += trace;
        }
        out += entry.stage == ReadStage::Done ? " finished " : " for ";
        out += stats::formatNanos(static_cast<double>(age));
        out += entry.stage == ReadStage::Done ? " ago\n" : "\n";
    }
    return out;
}

std::string
FlightRecorder::report(
    uint64_t now_nanos,
    const std::function<std::string(uint64_t)>& read_name) const
{
    std::string out = "flight recorder (newest first):\n";
    for (size_t w = 0; w < rings_.size(); ++w) {
        std::vector<FlightEntry> entries = snapshot(w);
        if (entries.empty()) {
            continue;
        }
        out += "  worker " + std::to_string(w) + ":\n";
        if (!read_name) {
            out += formatFlightEntries(entries, now_nanos);
            continue;
        }
        for (const FlightEntry& entry : entries) {
            std::string line =
                formatFlightEntries({ entry }, now_nanos);
            if (!line.empty() && line.back() == '\n') {
                line.pop_back();
            }
            out += line + " (" + read_name(entry.readIndex) + ")\n";
        }
    }
    return out;
}

// ----------------------------------------------------------- crash handler

namespace {

std::atomic<const FlightRecorder*> g_crash_recorder{nullptr};

/** write(2) the whole buffer; best effort, async-signal-safe.  Retries
 *  EINTR and short writes like io::writeFull (not usable here: obs sits
 *  below io in the library layering). */
void
rawWrite(const char* text, size_t len)
{
    size_t done = 0;
    while (done < len) {
        ssize_t n = ::write(STDERR_FILENO, text + done, len - done);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            return;
        }
        done += static_cast<size_t>(n);
    }
}

void
rawWrite(const char* text)
{
    size_t len = 0;
    while (text[len] != '\0') {
        ++len;
    }
    rawWrite(text, len);
}

/** Hand-rolled decimal formatting (no snprintf in a signal handler). */
void
rawWriteUint(uint64_t value)
{
    char buf[24];
    size_t pos = sizeof(buf);
    do {
        buf[--pos] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0);
    rawWrite(buf + pos, sizeof(buf) - pos);
}

/** Hand-rolled 0x-prefixed hex (trace ids in the crash dump). */
void
rawWriteHex(uint64_t value)
{
    char buf[18] = {'0', 'x'};
    for (int i = 0; i < 16; ++i) {
        uint64_t nibble = (value >> (60 - 4 * i)) & 0xF;
        buf[2 + i] = static_cast<char>(
            nibble < 10 ? '0' + nibble : 'a' + (nibble - 10));
    }
    rawWrite(buf, sizeof(buf));
}

void
crashHandler(int sig)
{
    const FlightRecorder* recorder =
        g_crash_recorder.load(std::memory_order_acquire);
    if (recorder != nullptr) {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        uint64_t now = static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
                       static_cast<uint64_t>(ts.tv_nsec);
        rawWrite("minigiraffe: fatal signal ");
        rawWriteUint(static_cast<uint64_t>(sig));
        rawWrite(", flight recorder (newest first):\n");
        for (size_t w = 0; w < recorder->workers(); ++w) {
            const FlightRecorder::Ring* ring = recorder->ring(w);
            uint64_t head = ring->head();
            uint64_t n =
                head < ring->size() ? head : ring->size();
            for (uint64_t i = 0; i < n; ++i) {
                FlightEntry entry =
                    ring->decodeSlot((head - 1 - i) % ring->size());
                if (entry.stage == ReadStage::Idle) {
                    continue;
                }
                rawWrite("  worker ");
                rawWriteUint(w);
                rawWrite(" read ");
                rawWriteUint(entry.readIndex);
                if (entry.traceId != 0) {
                    rawWrite(" trace ");
                    rawWriteHex(entry.traceId);
                }
                rawWrite(" stage ");
                rawWrite(stageName(entry.stage));
                rawWrite(" entered ");
                rawWriteUint(now >= entry.stageEnterNanos
                                 ? (now - entry.stageEnterNanos) / 1000000
                                 : 0);
                rawWrite(" ms ago\n");
            }
        }
    }
    // Restore default disposition and re-raise so the exit status (and
    // core dump, where enabled) is the same as without the handler.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

constexpr int kCrashSignals[] = { SIGSEGV, SIGBUS, SIGFPE, SIGABRT };

} // namespace

void
installCrashHandler(const FlightRecorder* recorder)
{
    g_crash_recorder.store(recorder, std::memory_order_release);
    for (int sig : kCrashSignals) {
        std::signal(sig, recorder == nullptr ? SIG_DFL : &crashHandler);
    }
}

} // namespace mg::obs
