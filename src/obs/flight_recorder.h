/**
 * @file
 * Flight recorder: a fixed-size per-worker ring of the last N reads each
 * worker touched — read index, pipeline stage, and the time the stage was
 * entered.  End-of-run summaries say *how much* work degraded; the flight
 * recorder says *which reads were on the operating table* when a watchdog
 * cancellation, runGuarded quarantine, or fatal signal hit, turning "a
 * batch stalled" into "read 48123 sat in extend for 9.7 s".
 *
 * Hot-path cost is three relaxed atomic stores per stage change.  Every
 * slot field is an atomic with single-writer semantics (only the owning
 * worker writes its ring) so the watchdog thread and the crash handler can
 * read a ring mid-flight without a data race.  A reader can observe a slot
 * mid-update (index from the new read, stage from the old); that torn view
 * is acceptable for a diagnostic dump and never corrupts memory.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mg::obs {

/** Pipeline stage a read is in, coarse on purpose (one store per change). */
enum class ReadStage : uint8_t
{
    Idle = 0,    // slot never used
    Start,       // read picked up, before clustering
    Cluster,     // cluster_seeds
    Process,     // process_until_threshold_c scoring loop
    Extend,      // extension kernel
    Rescue,      // mate rescue
    Done         // mapping finished
};

const char* stageName(ReadStage stage);

/** One ring slot decoded for a report. */
struct FlightEntry
{
    uint64_t readIndex = 0;
    ReadStage stage = ReadStage::Idle;
    uint64_t stageEnterNanos = 0;
    /** Request trace id the read belonged to (0 = untraced). */
    uint64_t traceId = 0;
};

class FlightRecorder
{
  public:
    static constexpr size_t kDefaultRingSize = 16;

    /** One worker's ring; the worker is the only writer. */
    class Ring
    {
      public:
        explicit Ring(size_t size) : slots_(size) {}

        /** Start tracking a read: claims the next slot. */
        void begin(uint64_t read_index);

        /**
         * Attribute subsequent begin() calls to a request trace id
         * (0 = untraced).  Set once per request by the serving layer so
         * stall and crash dumps name the trace, not just the read.
         */
        void
        setTrace(uint64_t trace_id)
        {
            currentTrace_.store(trace_id, std::memory_order_relaxed);
        }

        /** Record a stage change for the read begin() last claimed. */
        void stage(ReadStage s);

        /** Mark the current read finished. */
        void done() { stage(ReadStage::Done); }

        size_t size() const { return slots_.size(); }

        /** Newest-first decoded entries; skips never-used slots. */
        std::vector<FlightEntry> snapshot() const;

        /**
         * Allocation-free slot access for the crash handler (async-
         * signal-safe).  `head()` is the total begin() count; slot i of
         * the newest-first order is decodeSlot((head() - 1 - i) % size()).
         */
        uint64_t
        head() const
        {
            return head_.load(std::memory_order_acquire);
        }

        FlightEntry
        decodeSlot(uint64_t slot_index) const
        {
            const Slot& slot = slots_[slot_index];
            FlightEntry entry;
            entry.readIndex =
                slot.readIndex.load(std::memory_order_relaxed);
            entry.stage = static_cast<ReadStage>(
                slot.stage.load(std::memory_order_relaxed));
            entry.stageEnterNanos =
                slot.enterNanos.load(std::memory_order_relaxed);
            entry.traceId = slot.traceId.load(std::memory_order_relaxed);
            return entry;
        }

      private:
        struct Slot
        {
            std::atomic<uint64_t> readIndex{0};
            std::atomic<uint8_t> stage{
                static_cast<uint8_t>(ReadStage::Idle)};
            std::atomic<uint64_t> enterNanos{0};
            std::atomic<uint64_t> traceId{0};
        };

        std::vector<Slot> slots_;
        std::atomic<uint64_t> head_{0};         // total begin() calls
        std::atomic<uint64_t> currentTrace_{0}; // stamped into begin()
    };

    explicit FlightRecorder(size_t workers,
                            size_t ring_size = kDefaultRingSize);

    Ring* ring(size_t worker) { return rings_[worker].get(); }
    const Ring* ring(size_t worker) const { return rings_[worker].get(); }
    size_t workers() const { return rings_.size(); }

    /** Newest-first entries of one worker's ring. */
    std::vector<FlightEntry>
    snapshot(size_t worker) const
    {
        return rings_[worker]->snapshot();
    }

    /**
     * Human-readable multi-worker report.  `now_nanos` anchors the "in
     * stage for" ages; `read_name` (optional) maps a read index to its
     * FASTQ name.
     */
    std::string
    report(uint64_t now_nanos,
           const std::function<std::string(uint64_t)>& read_name = {}) const;

  private:
    std::vector<std::unique_ptr<Ring>> rings_;
};

/** Render one worker's snapshot (shared by report() and dump sites). */
std::string formatFlightEntries(const std::vector<FlightEntry>& entries,
                                uint64_t now_nanos);

/**
 * Install SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump the recorder
 * to stderr with async-signal-safe calls only (write + clock_gettime),
 * then re-raise with the default disposition.  Pass nullptr to uninstall.
 * One recorder at a time, process-wide.
 */
void installCrashHandler(const FlightRecorder* recorder);

} // namespace mg::obs
