/**
 * @file
 * mem::ArenaView — the zero-copy substrate under the big immutable arrays
 * (packed sequence words, GBWT record bytes, minimizer tables, distance
 * arrays).  A view is either *owned* (a std::vector built on the heap, the
 * classic parse path) or *mapped* (a typed span into a read-only mmap of an
 * MGZ v3 container, kept alive by a shared MappedFile handle).  Consumers
 * read through data()/size()/operator[] and never know the difference; the
 * build/parse paths mutate through owned()/adopt(), which are only legal in
 * owned mode.
 *
 * The mapped mode is what makes "N mapper processes share one page-cache
 * copy" work: every process maps the same file MAP_SHARED|PROT_READ, so the
 * kernel backs all of them with a single set of physical pages.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/common.h"

namespace mg::mem {

/** Page-cache access-pattern hints forwarded to madvise(2). */
enum class Advice : uint8_t
{
    Normal,    ///< reset to default readahead
    Random,    ///< expect random access; disable readahead
    WillNeed,  ///< start faulting the range in now
};

/**
 * A read-only memory-mapped file (RAII).  Opened O_RDONLY and mapped
 * PROT_READ | MAP_SHARED so concurrent processes mapping the same
 * container deduplicate in the page cache.  Held by shared_ptr: every
 * ArenaView bound into the mapping keeps the mapping alive.
 */
class MappedFile
{
  public:
    /** Map `path` read-only; throws util::Error on open/map failure. */
    static std::shared_ptr<MappedFile> open(const std::string& path);

    ~MappedFile();
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    const uint8_t* data() const { return data_; }
    size_t size() const { return size_; }
    const std::string& path() const { return path_; }

    /** madvise the whole mapping. */
    void advise(Advice advice) const;

    /** madvise a sub-range (byte offsets; rounded out to page bounds). */
    void advise(size_t offset, size_t length, Advice advice) const;

    /**
     * Bytes of the mapping currently resident in the page cache
     * (mincore(2) scan).  This is the "what does this process actually
     * touch" number inspect_pangenome reports against size().
     */
    size_t residentBytes() const;

    /** System page size used for alignment checks. */
    static size_t pageSize();

  private:
    MappedFile() = default;

    uint8_t* data_ = nullptr;
    size_t size_ = 0;
    std::string path_;
};

/**
 * Dual-backing typed array view.  Default-constructed views are owned and
 * empty, so existing code that built vectors in place keeps working by
 * swapping the member type and touching mutations only.
 */
template <typename T>
class ArenaView
{
  public:
    ArenaView() = default;

    /** True when backed by a MappedFile instead of heap storage. */
    bool isMapped() const { return file_ != nullptr; }

    const T*
    data() const
    {
        return file_ ? mapped_ : owned_.data();
    }

    size_t size() const { return file_ ? mappedSize_ : owned_.size(); }
    bool empty() const { return size() == 0; }

    const T& operator[](size_t i) const { return data()[i]; }
    const T& back() const { return data()[size() - 1]; }
    const T* begin() const { return data(); }
    const T* end() const { return data() + size(); }

    /** Bytes of payload held (either backing). */
    size_t bytes() const { return size() * sizeof(T); }

    /** Bytes reserved: vector capacity when owned, span bytes mapped. */
    size_t
    reservedBytes() const
    {
        return file_ ? mappedSize_ * sizeof(T)
                     : owned_.capacity() * sizeof(T);
    }

    /**
     * Mutable access to the heap backing for the build/parse paths.
     * Illegal on a mapped view (programming error, not input error).
     */
    std::vector<T>&
    owned()
    {
        MG_ASSERT(file_ == nullptr);
        return owned_;
    }

    /** Replace the heap backing wholesale (builder output handoff). */
    void
    adopt(std::vector<T>&& values)
    {
        MG_ASSERT(file_ == nullptr);
        owned_ = std::move(values);
    }

    /**
     * Bind to `count` elements at `ptr` inside `file`'s mapping.  The
     * caller (the v3 loader) has already validated alignment and bounds;
     * this just records the span and takes a keepalive reference.
     */
    void
    bind(std::shared_ptr<MappedFile> file, const T* ptr, size_t count)
    {
        MG_ASSERT(file != nullptr);
        owned_.clear();
        owned_.shrink_to_fit();
        file_ = std::move(file);
        mapped_ = ptr;
        mappedSize_ = count;
    }

    /** madvise just this view's span (no-op for owned views). */
    void
    advise(Advice advice) const
    {
        if (!file_) {
            return;
        }
        const auto* base = reinterpret_cast<const uint8_t*>(mapped_);
        file_->advise(static_cast<size_t>(base - file_->data()), bytes(),
                      advice);
    }

  private:
    std::vector<T> owned_;
    std::shared_ptr<MappedFile> file_;
    const T* mapped_ = nullptr;
    size_t mappedSize_ = 0;
};

/** Element-wise equality across any backing mix (test convenience). */
template <typename T>
bool
operator==(const ArenaView<T>& a, const ArenaView<T>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) {
            return false;
        }
    }
    return true;
}

template <typename T>
bool
operator==(const ArenaView<T>& a, const std::vector<T>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) {
            return false;
        }
    }
    return true;
}

} // namespace mg::mem
