#include "mem/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mg::mem {

namespace {

int
adviceFlag(Advice advice)
{
    switch (advice) {
    case Advice::Random:
        return MADV_RANDOM;
    case Advice::WillNeed:
        return MADV_WILLNEED;
    case Advice::Normal:
        break;
    }
    return MADV_NORMAL;
}

} // namespace

std::shared_ptr<MappedFile>
MappedFile::open(const std::string& path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    util::require(fd >= 0, "mmap open failed: ", path, ": ",
                  std::strerror(errno));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        throw util::Error(util::cat("mmap fstat failed: ", path, ": ",
                                    std::strerror(err)));
    }
    auto file = std::shared_ptr<MappedFile>(new MappedFile());
    file->path_ = path;
    file->size_ = static_cast<size_t>(st.st_size);
    if (file->size_ == 0) {
        ::close(fd);
        throw util::Error(util::cat("mmap refused: empty file: ", path));
    }
    // MAP_SHARED + PROT_READ: concurrent mappers of the same container
    // share one set of page-cache pages (the fleet memory model).
    void* addr =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
    int maperr = errno;
    ::close(fd);  // the mapping holds its own reference to the file
    util::require(addr != MAP_FAILED, "mmap failed: ", path, ": ",
                  std::strerror(maperr));
    file->data_ = static_cast<uint8_t*>(addr);
    return file;
}

MappedFile::~MappedFile()
{
    if (data_ != nullptr) {
        ::munmap(data_, size_);
    }
}

void
MappedFile::advise(Advice advice) const
{
    advise(0, size_, advice);
}

void
MappedFile::advise(size_t offset, size_t length, Advice advice) const
{
    if (length == 0 || offset >= size_) {
        return;
    }
    const size_t page = pageSize();
    size_t begin = offset / page * page;
    size_t end = offset + std::min(length, size_ - offset);
    // Advice is best-effort; ignore failures (e.g. old kernels).
    (void)::madvise(data_ + begin, end - begin, adviceFlag(advice));
}

size_t
MappedFile::residentBytes() const
{
    const size_t page = pageSize();
    const size_t pages = (size_ + page - 1) / page;
    std::vector<unsigned char> vec(pages);
    if (::mincore(data_, size_, vec.data()) != 0) {
        return 0;
    }
    size_t resident = 0;
    for (unsigned char bit : vec) {
        resident += (bit & 1u) ? page : 0;
    }
    return std::min(resident, size_);
}

size_t
MappedFile::pageSize()
{
    static const size_t page =
        static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    return page;
}

} // namespace mg::mem
