#include "stats/bootstrap.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "util/common.h"
#include "util/rng.h"

namespace mg::stats {

namespace {

std::vector<double>
resample(const std::vector<double>& sample, util::Rng& rng)
{
    std::vector<double> out;
    out.reserve(sample.size());
    for (size_t i = 0; i < sample.size(); ++i) {
        out.push_back(sample[rng.uniform(sample.size())]);
    }
    return out;
}

ConfidenceInterval
percentiles(std::vector<double>& estimates, double confidence,
            double point)
{
    std::sort(estimates.begin(), estimates.end());
    double alpha = (1.0 - confidence) / 2.0;
    auto at = [&](double q) {
        size_t index = static_cast<size_t>(
            q * static_cast<double>(estimates.size() - 1) + 0.5);
        return estimates[std::min(index, estimates.size() - 1)];
    };
    ConfidenceInterval ci;
    ci.lower = at(alpha);
    ci.upper = at(1.0 - alpha);
    ci.pointEstimate = point;
    return ci;
}

} // namespace

ConfidenceInterval
bootstrapCi(const std::vector<double>& sample,
            const std::function<double(const std::vector<double>&)>&
                statistic,
            double confidence, size_t resamples, uint64_t seed)
{
    MG_CHECK(sample.size() >= 2, "bootstrap needs at least two samples");
    MG_CHECK(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0, 1)");
    MG_CHECK(resamples >= 100, "use at least 100 resamples");

    util::Rng rng(seed);
    std::vector<double> estimates;
    estimates.reserve(resamples);
    for (size_t i = 0; i < resamples; ++i) {
        std::vector<double> draw = resample(sample, rng);
        estimates.push_back(statistic(draw));
    }
    return percentiles(estimates, confidence, statistic(sample));
}

ConfidenceInterval
bootstrapRelativeDifference(const std::vector<double>& a,
                            const std::vector<double>& b,
                            double confidence, size_t resamples,
                            uint64_t seed)
{
    MG_CHECK(a.size() >= 2 && b.size() >= 2,
             "bootstrap needs at least two samples per group");
    util::Rng rng(seed);
    std::vector<double> estimates;
    estimates.reserve(resamples);
    for (size_t i = 0; i < resamples; ++i) {
        double mean_a = mean(resample(a, rng));
        double mean_b = mean(resample(b, rng));
        MG_CHECK(mean_b != 0.0, "degenerate bootstrap denominator");
        estimates.push_back(mean_a / mean_b - 1.0);
    }
    return percentiles(estimates, confidence, mean(a) / mean(b) - 1.0);
}

} // namespace mg::stats
