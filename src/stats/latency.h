/**
 * @file
 * Per-read latency histogram with tail percentiles.  The mapping kernel's
 * per-read work is heavy-tailed (a few seed-dense reads run orders of
 * magnitude longer than the median), so the mean hides exactly the reads
 * the resilience layer exists to bound; p99/p999 are the numbers that
 * matter for a deadline-bounded service.
 *
 * Log2-bucketed: bucket b counts samples in [2^(b-1), 2^b) nanoseconds,
 * so record() is a handful of instructions with no allocation (the hot
 * mapping loop records every read) and percentiles interpolate linearly
 * inside a bucket — at worst 2x resolution error on the tail, which is
 * ample for a summary line, at a fixed 520-byte footprint that merges
 * across worker threads with 64 additions.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace mg::stats {

/** Fixed-size log2 histogram of nanosecond durations. */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 64;

    /** Count one sample (0 ns lands in bucket 0). */
    void
    record(uint64_t nanos)
    {
        ++buckets_[bucketOf(nanos)];
        ++count_;
        sumNanos_ += nanos;
    }

    /** Fold another histogram in (per-thread roll-ups). */
    void merge(const LatencyHistogram& other);

    uint64_t count() const { return count_; }

    /** Mean in nanoseconds (0 for an empty histogram). */
    double
    meanNanos() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sumNanos_) /
                                 static_cast<double>(count_);
    }

    /**
     * Percentile in nanoseconds, p in [0, 1]; linear interpolation within
     * the containing bucket.  0 for an empty histogram.
     */
    double percentileNanos(double p) const;

    double p50() const { return percentileNanos(0.50); }
    double p99() const { return percentileNanos(0.99); }
    double p999() const { return percentileNanos(0.999); }

    /** Reset to empty. */
    void clear();

    /** Raw log2 buckets (bucket b counts [2^(b-1), 2^b) ns samples). */
    const std::array<uint64_t, kBuckets>& rawBuckets() const
    {
        return buckets_;
    }

    uint64_t sumNanos() const { return sumNanos_; }

    /** Rebuild from raw parts (exporter round-trips, atomic slabs). */
    static LatencyHistogram
    fromRaw(const std::array<uint64_t, kBuckets>& buckets, uint64_t count,
            uint64_t sum_nanos)
    {
        LatencyHistogram h;
        h.buckets_ = buckets;
        h.count_ = count;
        h.sumNanos_ = sum_nanos;
        return h;
    }

    /** Upper bound (ns) of bucket b, matching bucketOf(). */
    static uint64_t
    bucketUpperNanos(int bucket)
    {
        return bucket >= kBuckets - 1 ? UINT64_MAX : (uint64_t{1} << bucket);
    }

  private:
    static int
    bucketOf(uint64_t nanos)
    {
        int bucket = 0;
        while (nanos > 1 && bucket < kBuckets - 1) {
            nanos >>= 1;
            ++bucket;
        }
        return bucket;
    }

    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sumNanos_ = 0;
};

/** Human-friendly duration ("512 ns", "3.2 us", "1.5 ms", "2.1 s"). */
std::string formatNanos(double nanos);

} // namespace mg::stats
