#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace mg::stats {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (double x : xs) {
        sum += x;
    }
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double>& xs)
{
    if (xs.size() < 2) {
        return 0.0;
    }
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) {
        acc += (x - m) * (x - m);
    }
    return acc / static_cast<double>(xs.size());
}

double
stdev(const std::vector<double>& xs)
{
    return std::sqrt(variance(xs));
}

double
geomean(const std::vector<double>& xs)
{
    MG_ASSERT(!xs.empty());
    double logsum = 0.0;
    for (double x : xs) {
        MG_ASSERT(x > 0.0);
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double>& xs)
{
    MG_ASSERT(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double>& xs)
{
    MG_ASSERT(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double
cosineSimilarity(const std::vector<double>& a, const std::vector<double>& b)
{
    MG_ASSERT(a.size() == b.size());
    MG_ASSERT(!a.empty());
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    MG_ASSERT(na > 0.0 && nb > 0.0);
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

double
pearson(const std::vector<double>& a, const std::vector<double>& b)
{
    MG_ASSERT(a.size() == b.size());
    MG_ASSERT(a.size() >= 2);
    double ma = mean(a);
    double mb = mean(b);
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    MG_ASSERT(va > 0.0 && vb > 0.0);
    return cov / std::sqrt(va * vb);
}

} // namespace mg::stats
