/**
 * @file
 * Bootstrap resampling.  The validation harnesses compare small samples of
 * noisy wall-clock measurements (Table VI runs proxy and parent three
 * times each); percentile-bootstrap confidence intervals state how much
 * of an observed difference is signal.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace mg::stats {

/** A two-sided confidence interval for a statistic. */
struct ConfidenceInterval
{
    double lower = 0.0;
    double upper = 0.0;
    double pointEstimate = 0.0;

    bool
    contains(double value) const
    {
        return value >= lower && value <= upper;
    }
};

/**
 * Percentile bootstrap CI of an arbitrary statistic of one sample.
 * @param sample     Observed values (>= 2).
 * @param statistic  Function of a resampled vector (e.g. the mean).
 * @param confidence Two-sided level in (0, 1), e.g. 0.95.
 * @param resamples  Bootstrap iterations (deterministic in `seed`).
 */
ConfidenceInterval bootstrapCi(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    double confidence = 0.95, size_t resamples = 2000, uint64_t seed = 1);

/**
 * Bootstrap CI of the relative difference mean(a)/mean(b) - 1 between two
 * independent samples (the Table VI "% diff over Giraffe" statistic).
 */
ConfidenceInterval bootstrapRelativeDifference(
    const std::vector<double>& a, const std::vector<double>& b,
    double confidence = 0.95, size_t resamples = 2000, uint64_t seed = 1);

} // namespace mg::stats
