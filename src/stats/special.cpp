#include "stats/special.h"

#include <cmath>

#include "util/common.h"

namespace mg::stats {

namespace {

/**
 * Continued fraction for the incomplete beta function, evaluated with the
 * modified Lentz algorithm (Numerical Recipes-style formulation).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int kMaxIterations = 300;
    constexpr double kEps = 1e-15;
    constexpr double kTiny = 1e-300;

    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kTiny) {
        d = kTiny;
    }
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIterations; ++m) {
        int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) {
            d = kTiny;
        }
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) {
            c = kTiny;
        }
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kTiny) {
            d = kTiny;
        }
        c = 1.0 + aa / c;
        if (std::fabs(c) < kTiny) {
            c = kTiny;
        }
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEps) {
            break;
        }
    }
    return h;
}

} // namespace

double
regularizedIncompleteBeta(double a, double b, double x)
{
    MG_ASSERT(a > 0.0 && b > 0.0);
    MG_ASSERT(x >= 0.0 && x <= 1.0);
    if (x == 0.0) {
        return 0.0;
    }
    if (x == 1.0) {
        return 1.0;
    }
    double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                       a * std::log(x) + b * std::log1p(-x);
    double front = std::exp(log_front);
    // The continued fraction converges rapidly for x < (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * betaContinuedFraction(a, b, x) / a;
    }
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
fDistributionCdf(double f, double d1, double d2)
{
    MG_ASSERT(d1 > 0.0 && d2 > 0.0);
    if (f <= 0.0) {
        return 0.0;
    }
    double x = d1 * f / (d1 * f + d2);
    return regularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double
fDistributionSf(double f, double d1, double d2)
{
    return 1.0 - fDistributionCdf(f, d1, d2);
}

double
tDistributionCdf(double t, double nu)
{
    MG_ASSERT(nu > 0.0);
    double x = nu / (nu + t * t);
    double tail = 0.5 * regularizedIncompleteBeta(nu / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

} // namespace mg::stats
