/**
 * @file
 * Special functions needed to turn ANOVA F statistics into p-values.
 * Implemented from scratch (regularised incomplete beta via Lentz's
 * continued fraction) because the reproduction avoids external numeric
 * libraries.
 */
#pragma once

namespace mg::stats {

/**
 * Regularised incomplete beta function I_x(a, b) for a, b > 0 and
 * x in [0, 1].  Accuracy ~1e-12, sufficient for reporting p-values.
 */
double regularizedIncompleteBeta(double a, double b, double x);

/** CDF of the F distribution with (d1, d2) degrees of freedom at f >= 0. */
double fDistributionCdf(double f, double d1, double d2);

/** Upper tail p-value for an F statistic: P(F_{d1,d2} > f). */
double fDistributionSf(double f, double d1, double d2);

/** CDF of Student's t distribution with nu degrees of freedom. */
double tDistributionCdf(double t, double nu);

} // namespace mg::stats
