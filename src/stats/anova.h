/**
 * @file
 * Fixed-effects main-effect ANOVA over a (typically full-factorial)
 * experiment design.  Section VII-B of the paper runs exactly this analysis
 * on the autotuning sweep: three factors (CachedGBWT capacity, batch size,
 * scheduler) against makespan, reporting a per-factor p-value.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mg::stats {

/** One categorical factor: a name plus the level index of each observation. */
struct Factor
{
    std::string name;
    /** Level index per observation, in [0, numLevels). */
    std::vector<size_t> levels;
    /** Number of distinct levels. */
    size_t numLevels = 0;
};

/** Per-factor ANOVA line. */
struct AnovaEffect
{
    std::string name;
    double sumSquares = 0.0;
    size_t degreesOfFreedom = 0;
    double meanSquare = 0.0;
    double fStatistic = 0.0;
    double pValue = 1.0;
};

/** Full ANOVA table: one line per factor plus the residual. */
struct AnovaResult
{
    std::vector<AnovaEffect> effects;
    double residualSumSquares = 0.0;
    size_t residualDegreesOfFreedom = 0;
    double totalSumSquares = 0.0;
};

/**
 * Main-effects ANOVA: decompose the response's variance into one component
 * per factor (between-level sum of squares) with interactions pooled into
 * the residual.  All factors must have the same number of observations as
 * the response, every factor needs at least two levels, and there must be
 * enough residual degrees of freedom to form an F statistic.
 */
AnovaResult anova(const std::vector<Factor>& factors,
                  const std::vector<double>& response);

/** Render an ANOVA table as fixed-width text for harness output. */
std::string formatAnovaTable(const AnovaResult& result);

} // namespace mg::stats
