#include "stats/anova.h"

#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "stats/special.h"
#include "util/common.h"
#include "util/str.h"

namespace mg::stats {

AnovaResult
anova(const std::vector<Factor>& factors, const std::vector<double>& response)
{
    const size_t n = response.size();
    MG_ASSERT(n >= 3);
    MG_ASSERT(!factors.empty());

    double grand_mean = mean(response);
    AnovaResult result;
    for (double y : response) {
        result.totalSumSquares += (y - grand_mean) * (y - grand_mean);
    }

    size_t effect_df_total = 0;
    double effect_ss_total = 0.0;
    for (const Factor& factor : factors) {
        MG_ASSERT(factor.levels.size() == n);
        MG_ASSERT(factor.numLevels >= 2);

        // Between-level sum of squares for this factor.
        std::vector<double> level_sum(factor.numLevels, 0.0);
        std::vector<size_t> level_count(factor.numLevels, 0);
        for (size_t i = 0; i < n; ++i) {
            size_t level = factor.levels[i];
            MG_ASSERT(level < factor.numLevels);
            level_sum[level] += response[i];
            ++level_count[level];
        }

        AnovaEffect effect;
        effect.name = factor.name;
        for (size_t level = 0; level < factor.numLevels; ++level) {
            MG_ASSERT(level_count[level] > 0);
            double level_mean =
                level_sum[level] / static_cast<double>(level_count[level]);
            effect.sumSquares += static_cast<double>(level_count[level]) *
                                 (level_mean - grand_mean) *
                                 (level_mean - grand_mean);
        }
        effect.degreesOfFreedom = factor.numLevels - 1;
        effect_df_total += effect.degreesOfFreedom;
        effect_ss_total += effect.sumSquares;
        result.effects.push_back(effect);
    }

    MG_ASSERT(n >= effect_df_total + 2);
    result.residualDegreesOfFreedom = n - 1 - effect_df_total;
    result.residualSumSquares = result.totalSumSquares - effect_ss_total;
    // Numerical cancellation can drive a near-perfect fit slightly negative.
    if (result.residualSumSquares < 0.0) {
        result.residualSumSquares = 0.0;
    }
    double residual_ms =
        result.residualSumSquares /
        static_cast<double>(result.residualDegreesOfFreedom);

    for (AnovaEffect& effect : result.effects) {
        effect.meanSquare = effect.sumSquares /
                            static_cast<double>(effect.degreesOfFreedom);
        if (residual_ms <= 0.0) {
            effect.fStatistic = std::numeric_limits<double>::infinity();
            effect.pValue = 0.0;
        } else {
            effect.fStatistic = effect.meanSquare / residual_ms;
            effect.pValue = fDistributionSf(
                effect.fStatistic,
                static_cast<double>(effect.degreesOfFreedom),
                static_cast<double>(result.residualDegreesOfFreedom));
        }
    }
    return result;
}

std::string
formatAnovaTable(const AnovaResult& result)
{
    using util::fixed;
    using util::padLeft;
    using util::padRight;

    std::string out;
    out += padRight("factor", 16) + padLeft("df", 6) + padLeft("sum_sq", 14) +
           padLeft("mean_sq", 14) + padLeft("F", 10) + padLeft("p", 10) + "\n";
    for (const AnovaEffect& e : result.effects) {
        out += padRight(e.name, 16) +
               padLeft(std::to_string(e.degreesOfFreedom), 6) +
               padLeft(fixed(e.sumSquares, 4), 14) +
               padLeft(fixed(e.meanSquare, 4), 14) +
               padLeft(fixed(e.fStatistic, 3), 10) +
               padLeft(fixed(e.pValue, 4), 10) + "\n";
    }
    out += padRight("residual", 16) +
           padLeft(std::to_string(result.residualDegreesOfFreedom), 6) +
           padLeft(fixed(result.residualSumSquares, 4), 14) + "\n";
    return out;
}

} // namespace mg::stats
