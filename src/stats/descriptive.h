/**
 * @file
 * Descriptive statistics used throughout the evaluation harness: means,
 * geometric means (the paper's headline speedup metric), standard
 * deviations, and the cosine similarity score used for the Table V
 * proxy-vs-parent hardware-counter validation.
 */
#pragma once

#include <vector>

namespace mg::stats {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double>& xs);

/** Population variance; 0 for fewer than two samples. */
double variance(const std::vector<double>& xs);

/** Population standard deviation. */
double stdev(const std::vector<double>& xs);

/** Geometric mean; requires all values strictly positive. */
double geomean(const std::vector<double>& xs);

/** Minimum / maximum; require non-empty input. */
double minOf(const std::vector<double>& xs);
double maxOf(const std::vector<double>& xs);

/**
 * Cosine similarity of two equal-length non-zero vectors; 1 means the
 * vectors point the same way.  Used to quantify counter congruence between
 * proxy and parent, following Richards et al. (paper reference [28]).
 */
double cosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/** Pearson correlation coefficient of two equal-length samples. */
double pearson(const std::vector<double>& a, const std::vector<double>& b);

} // namespace mg::stats
