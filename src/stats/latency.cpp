#include "stats/latency.h"

#include <cmath>
#include <cstdio>

namespace mg::stats {

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (int b = 0; b < kBuckets; ++b) {
        buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sumNanos_ += other.sumNanos_;
}

void
LatencyHistogram::clear()
{
    buckets_.fill(0);
    count_ = 0;
    sumNanos_ = 0;
}

double
LatencyHistogram::percentileNanos(double p) const
{
    if (count_ == 0) {
        return 0.0;
    }
    if (p < 0.0) {
        p = 0.0;
    }
    if (p > 1.0) {
        p = 1.0;
    }
    // Rank of the requested sample, 1-based; ceil so p=1 is the max.
    double target = p * static_cast<double>(count_);
    uint64_t rank = static_cast<uint64_t>(std::ceil(target));
    if (rank == 0) {
        rank = 1;
    }
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        if (buckets_[b] == 0) {
            continue;
        }
        if (seen + buckets_[b] >= rank) {
            // Interpolate linearly across the bucket's value range.
            double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
            double hi = std::ldexp(1.0, b);
            double within = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets_[b]);
            return lo + (hi - lo) * within;
        }
        seen += buckets_[b];
    }
    return std::ldexp(1.0, kBuckets - 1); // unreachable with count_ > 0
}

std::string
formatNanos(double nanos)
{
    char buf[32];
    if (nanos < 1e3) {
        std::snprintf(buf, sizeof(buf), "%.0f ns", nanos);
    } else if (nanos < 1e6) {
        std::snprintf(buf, sizeof(buf), "%.1f us", nanos * 1e-3);
    } else if (nanos < 1e9) {
        std::snprintf(buf, sizeof(buf), "%.1f ms", nanos * 1e-6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f s", nanos * 1e-9);
    }
    return buf;
}

} // namespace mg::stats
