/**
 * @file
 * OpenMP dynamic batch scheduler - miniGiraffe's default policy.  Batches
 * are dealt to threads by OpenMP's dynamic schedule, which the paper found
 * to match VG's bespoke scheduler in time and scaling up to 16 threads.
 */
#pragma once

#include "sched/scheduler.h"

namespace mg::sched {

class OmpDynamicScheduler : public Scheduler
{
  public:
    void run(size_t total, size_t batch_size, size_t num_threads,
             const BatchFn& fn) override;

    SchedulerKind kind() const override { return SchedulerKind::OmpDynamic; }
};

} // namespace mg::sched
