/**
 * @file
 * Emulation of VG's in-house batch dispatcher (Section IV-A of the paper):
 * the main thread slices the read stream into batches, hands them to worker
 * threads through a bounded queue, "keeps track of how many threads are
 * busy, and if no more processing resources are available, it processes any
 * queued batches of reads left" itself.
 */
#pragma once

#include "sched/scheduler.h"

namespace mg::sched {

class VgBatchScheduler : public Scheduler
{
  public:
    void run(size_t total, size_t batch_size, size_t num_threads,
             const BatchFn& fn) override;

    SchedulerKind kind() const override { return SchedulerKind::VgBatch; }
};

} // namespace mg::sched
