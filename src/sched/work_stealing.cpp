#include "sched/work_stealing.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "sched/exception_trap.h"
#include "util/common.h"

namespace mg::sched {

namespace {

/** One thread's share of the range, consumed via an atomic cursor. */
struct alignas(64) Share
{
    std::atomic<size_t> cursor{0};
    size_t end = 0;
};

} // namespace

void
WorkStealingScheduler::run(size_t total, size_t batch_size,
                           size_t num_threads, const BatchFn& fn)
{
    MG_CHECK(batch_size > 0, "batch size must be positive");
    MG_CHECK(num_threads > 0, "thread count must be positive");
    if (total == 0) {
        return;
    }

    // Even contiguous split; the first (total % n) shares get one extra.
    std::vector<Share> shares(num_threads);
    size_t base = total / num_threads;
    size_t extra = total % num_threads;
    size_t begin = 0;
    for (size_t i = 0; i < num_threads; ++i) {
        size_t size = base + (i < extra ? 1 : 0);
        shares[i].cursor.store(begin, std::memory_order_relaxed);
        shares[i].end = begin + size;
        begin += size;
    }
    MG_ASSERT(begin == total);

    // Trap per-batch exceptions so a poisoned chunk neither terminates a
    // worker thread nor stops the cursor from handing out later chunks.
    ExceptionTrap trap;
    auto worker = [&](size_t self) {
        // Drain one share in batch-size chunks; the atomic fetch_add hands
        // out disjoint chunks even under concurrent stealing.
        auto drain = [&](size_t victim) {
            Share& share = shares[victim];
            bool did_work = false;
            while (true) {
                if (stopRequested()) {
                    break; // graceful stop: no new chunks
                }
                size_t chunk =
                    share.cursor.fetch_add(batch_size,
                                           std::memory_order_relaxed);
                if (chunk >= share.end) {
                    break;
                }
                size_t end = std::min(share.end, chunk + batch_size);
                trap.guard([&] { fn(self, chunk, end); });
                did_work = true;
                if (stats_ != nullptr && victim != self) {
                    stats_->steals.fetch_add(1,
                                             std::memory_order_relaxed);
                }
            }
            return did_work;
        };
        drain(self);
        // Round-robin stealing, starting from the right neighbor.
        for (size_t hop = 1; hop < num_threads; ++hop) {
            drain((self + hop) % num_threads);
        }
    };

    if (num_threads == 1) {
        worker(0);
        trap.rethrowIfSet();
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
        threads.emplace_back(worker, i);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    trap.rethrowIfSet();
}

} // namespace mg::sched
