#include "sched/vg_batch.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/exception_trap.h"
#include "util/common.h"

namespace mg::sched {

namespace {

/** Bounded batch queue shared between the dispatcher and the workers. */
struct BatchQueue
{
    std::mutex mutex;
    std::condition_variable notEmpty;
    std::condition_variable notFull;
    std::deque<std::pair<size_t, size_t>> batches;
    size_t capacity = 0;
    bool done = false;

    /** Dispatcher side: true if the batch was enqueued, false if full. */
    bool
    tryPush(size_t begin, size_t end, SchedStats* stats)
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (batches.size() >= capacity) {
            return false;
        }
        batches.emplace_back(begin, end);
        if (stats != nullptr) {
            stats->raiseQueueDepth(batches.size());
        }
        notEmpty.notify_one();
        return true;
    }

    /** Worker side: blocks until a batch or shutdown; false on shutdown. */
    bool
    pop(std::pair<size_t, size_t>& batch)
    {
        std::unique_lock<std::mutex> lock(mutex);
        notEmpty.wait(lock, [&] { return done || !batches.empty(); });
        if (batches.empty()) {
            return false;
        }
        batch = batches.front();
        batches.pop_front();
        notFull.notify_one();
        return true;
    }

    void
    shutdown()
    {
        std::unique_lock<std::mutex> lock(mutex);
        done = true;
        notEmpty.notify_all();
    }
};

} // namespace

void
VgBatchScheduler::run(size_t total, size_t batch_size, size_t num_threads,
                      const BatchFn& fn)
{
    MG_CHECK(batch_size > 0, "batch size must be positive");
    MG_CHECK(num_threads > 0, "thread count must be positive");
    if (total == 0) {
        return;
    }
    // A throwing batch must not kill a worker thread (std::terminate) or
    // let the dispatcher skip shutdown (deadlocked join): trap the first
    // exception, keep draining, rethrow once every thread has joined.
    ExceptionTrap trap;

    if (num_threads == 1) {
        // Degenerate case: the main thread maps everything itself.
        for (size_t begin = 0; begin < total; begin += batch_size) {
            if (stopRequested()) {
                break; // graceful stop: no new batches
            }
            size_t end = std::min(total, begin + batch_size);
            trap.guard([&] { fn(0, begin, end); });
        }
        trap.rethrowIfSet();
        return;
    }

    // Main thread occupies context 0; workers use contexts 1..n-1.
    BatchQueue queue;
    queue.capacity = num_threads; // one in-flight batch per context
    std::vector<std::thread> workers;
    workers.reserve(num_threads - 1);
    for (size_t worker = 1; worker < num_threads; ++worker) {
        workers.emplace_back([&queue, &fn, &trap, worker] {
            std::pair<size_t, size_t> batch;
            while (queue.pop(batch)) {
                trap.guard([&] { fn(worker, batch.first, batch.second); });
            }
        });
    }

    for (size_t begin = 0; begin < total; begin += batch_size) {
        if (stopRequested()) {
            break; // graceful stop: dispatch nothing further
        }
        size_t end = std::min(total, begin + batch_size);
        if (!queue.tryPush(begin, end, stats_)) {
            // All workers busy and the queue full: the scheduler thread
            // processes the batch itself, as VG's dispatcher does.
            trap.guard([&] { fn(0, begin, end); });
        }
    }
    queue.shutdown();
    for (std::thread& worker : workers) {
        worker.join();
    }
    trap.rethrowIfSet();
}

} // namespace mg::sched
