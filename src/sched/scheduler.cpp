#include "sched/scheduler.h"

#include "sched/omp_dynamic.h"
#include "sched/vg_batch.h"
#include "sched/static_sched.h"
#include "sched/work_stealing.h"
#include "util/common.h"

namespace mg::sched {

const char*
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::OmpDynamic:
        return "openmp";
      case SchedulerKind::VgBatch:
        return "vg";
      case SchedulerKind::WorkStealing:
        return "steal";
      case SchedulerKind::Static:
        return "static";
    }
    return "unknown";
}

SchedulerKind
schedulerFromName(const std::string& name)
{
    if (name == "openmp") {
        return SchedulerKind::OmpDynamic;
    }
    if (name == "vg") {
        return SchedulerKind::VgBatch;
    }
    if (name == "steal") {
        return SchedulerKind::WorkStealing;
    }
    if (name == "static") {
        return SchedulerKind::Static;
    }
    throw util::Error("unknown scheduler name: " + name +
                      " (valid: openmp, vg, steal, static)");
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::OmpDynamic:
        return std::make_unique<OmpDynamicScheduler>();
      case SchedulerKind::VgBatch:
        return std::make_unique<VgBatchScheduler>();
      case SchedulerKind::WorkStealing:
        return std::make_unique<WorkStealingScheduler>();
      case SchedulerKind::Static:
        return std::make_unique<StaticScheduler>();
    }
    throw util::Error("unknown scheduler kind");
}

} // namespace mg::sched
