#include "sched/omp_dynamic.h"

#include <atomic>

#include <omp.h>

#include "sched/exception_trap.h"
#include "util/common.h"

namespace mg::sched {

void
OmpDynamicScheduler::run(size_t total, size_t batch_size, size_t num_threads,
                         const BatchFn& fn)
{
    MG_CHECK(batch_size > 0, "batch size must be positive");
    MG_CHECK(num_threads > 0, "thread count must be positive");
    if (total == 0) {
        return;
    }
    const int64_t num_batches =
        static_cast<int64_t>((total + batch_size - 1) / batch_size);
    // An exception escaping an OpenMP region is std::terminate; trap the
    // first one, finish the remaining batches, rethrow after the region.
    ExceptionTrap trap;
    // libgomp ships uninstrumented, so TSan cannot observe the join
    // barrier that already orders these writes before the caller's reads
    // (and gomp's pooled workers stay alive past it).  The release
    // increments chain into one release sequence that the acquire load
    // below synchronizes with, restating the barrier in tool-visible
    // atomics; cost is one uncontended RMW per batch.
    std::atomic<int64_t> completed{0};
#pragma omp parallel for schedule(dynamic, 1) \
    num_threads(static_cast<int>(num_threads))
    for (int64_t batch = 0; batch < num_batches; ++batch) {
        // Graceful stop: skip batches not yet started.  The loop itself
        // must still run to completion (OpenMP worksharing forbids
        // breaking out), but skipped iterations are essentially free.
        if (stopRequested()) {
            continue;
        }
        size_t begin = static_cast<size_t>(batch) * batch_size;
        size_t end = std::min(total, begin + batch_size);
        trap.guard([&] {
            fn(static_cast<size_t>(omp_get_thread_num()), begin, end);
        });
        completed.fetch_add(1, std::memory_order_release);
    }
    (void)completed.load(std::memory_order_acquire);
    trap.rethrowIfSet();
}

} // namespace mg::sched
