#include "sched/watchdog.h"

#include <chrono>

namespace mg::sched {

void
Watchdog::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
        return;
    }
    running_ = true;
    events_.clear();
    const uint64_t stall_nanos =
        static_cast<uint64_t>(params_.stallSeconds * 1e9);
    thread_ = std::thread([this, stall_nanos] {
        std::unique_lock<std::mutex> lock(mutex_);
        while (running_) {
            lock.unlock();
            poll(stall_nanos);
            lock.lock();
            // Sleep on the cv so stop() wakes the thread immediately
            // instead of waiting out a full poll period.
            cv_.wait_for(lock,
                         std::chrono::duration<double, std::milli>(
                             params_.pollMillis),
                         [this] { return !running_; });
        }
    });
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_) {
            return;
        }
        running_ = false;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
        thread_.join();
    }
}

void
Watchdog::poll(uint64_t stall_nanos)
{
    const uint64_t now = util::nowNanos();
    for (size_t w = 0; w < board_.size(); ++w) {
        HeartbeatBoard::Slot& slot = board_.slot(w);
        const uint64_t beat = slot.beatNanos.load(std::memory_order_acquire);
        if (beat == 0 || now < beat) {
            continue; // idle, or stamped after our clock read
        }
        const uint64_t age = now - beat;
        if (age < stall_nanos) {
            continue;
        }
        if (slot.token.cancelled()) {
            continue; // already fired for this batch; await re-arm
        }
        slot.token.cancel(resilience::CancelReason::Watchdog);
        WatchdogEvent event;
        event.worker = w;
        event.batchBegin =
            static_cast<size_t>(slot.batchBegin.load(std::memory_order_relaxed));
        event.batchEnd =
            static_cast<size_t>(slot.batchEnd.load(std::memory_order_relaxed));
        event.stalledNanos = age;
        event.atNanos = now;
        if (flight_ != nullptr && w < flight_->workers()) {
            event.flight = flight_->snapshot(w);
        }
        events_.push_back(std::move(event));
    }
}

} // namespace mg::sched
