#include "sched/static_sched.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "sched/exception_trap.h"
#include "util/common.h"

namespace mg::sched {

void
StaticScheduler::run(size_t total, size_t batch_size, size_t num_threads,
                     const BatchFn& fn)
{
    MG_CHECK(batch_size > 0, "batch size must be positive");
    MG_CHECK(num_threads > 0, "thread count must be positive");
    if (total == 0) {
        return;
    }

    // Trap per-batch exceptions: a throwing chunk must not terminate the
    // worker thread carrying the rest of its block.
    ExceptionTrap trap;
    // One contiguous block per thread, still delivered in batch-size
    // chunks so callers see the same granularity as other policies.
    auto worker = [&](size_t self) {
        size_t base = total / num_threads;
        size_t extra = total % num_threads;
        size_t begin = self * base + std::min(self, extra);
        size_t end = begin + base + (self < extra ? 1 : 0);
        for (size_t chunk = begin; chunk < end; chunk += batch_size) {
            if (stopRequested()) {
                break; // graceful stop: no new chunks
            }
            size_t chunk_end = std::min(end, chunk + batch_size);
            trap.guard([&] { fn(self, chunk, chunk_end); });
        }
    };

    if (num_threads == 1) {
        worker(0);
        trap.rethrowIfSet();
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
        threads.emplace_back(worker, i);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    trap.rethrowIfSet();
}

} // namespace mg::sched
