/**
 * @file
 * Parallel batch schedulers.  Giraffe maps reads by handing *batches* of
 * short reads to threads (Section IV-A); the proxy exposes the scheduling
 * policy as a first-class tuning parameter (Section VII-B).  Three policies
 * are provided:
 *
 *  - OmpDynamicScheduler:  OpenMP dynamic scheduling of batches, the
 *    proxy's default (matches the paper's miniGiraffe).
 *  - VgBatchScheduler:     emulation of VG's in-house dispatcher - the main
 *    thread creates batches, tracks busy workers, and processes queued
 *    batches itself when all workers are occupied.
 *  - WorkStealingScheduler: the paper's lightweight C++-threads scheduler -
 *    the range is split evenly, each thread works in batch-size chunks, and
 *    idle threads steal batches round-robin with an atomic
 *    read-modify-write.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace mg::sched {

/**
 * Processes one batch of work items.
 * @param thread  Dense worker index in [0, numThreads); stable per worker so
 *                callers can keep per-thread state (e.g. a CachedGbwt).
 * @param begin   First item of the batch.
 * @param end     One past the last item of the batch.
 */
using BatchFn = std::function<void(size_t thread, size_t begin, size_t end)>;

/** Scheduling policies exposed to the autotuner. */
enum class SchedulerKind
{
    OmpDynamic,
    VgBatch,
    WorkStealing,
    /** Static block split; ablation baseline, not part of the paper's
     *  tuning space. */
    Static,
};

/**
 * Policy-internal telemetry a caller can opt into via bindStats().
 * Written with relaxed atomics off the per-item hot path (stealing and
 * queue pressure are rare events), read after run() returns or live by a
 * metrics emitter.
 */
struct SchedStats
{
    /** Chunks executed by a thread other than their share's owner
     *  (WorkStealingScheduler). */
    std::atomic<uint64_t> steals{0};
    /** Peak depth of the batch handoff queue (VgBatchScheduler). */
    std::atomic<uint64_t> queueDepthPeak{0};

    void
    raiseQueueDepth(uint64_t depth)
    {
        uint64_t seen = queueDepthPeak.load(std::memory_order_relaxed);
        while (seen < depth &&
               !queueDepthPeak.compare_exchange_weak(
                   seen, depth, std::memory_order_relaxed)) {
        }
    }
};

/** Short stable name used in result tables ("openmp", "vg", "steal"). */
const char* schedulerName(SchedulerKind kind);

/** Parse a scheduler name; throws mg::util::Error on unknown names. */
SchedulerKind schedulerFromName(const std::string& name);

/** Abstract batch scheduler. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Run fn over items [0, total) split into batches of batch_size using
     * num_threads worker contexts.  Every item is processed exactly once;
     * the call returns only when all batches completed.
     *
     * If fn throws, the scheduler captures the *first* exception, keeps
     * processing the remaining batches, and rethrows it after all workers
     * joined — an exception never escapes a worker thread (which would be
     * std::terminate).  Callers wanting per-batch failure accounting and
     * quarantine instead of one rethrown exception should use
     * sched::runGuarded (sched/failure.h).
     */
    virtual void run(size_t total, size_t batch_size, size_t num_threads,
                     const BatchFn& fn) = 0;

    virtual SchedulerKind kind() const = 0;
    const char* name() const { return schedulerName(kind()); }

    /**
     * Attach a stats sink (nullptr detaches).  The pointer must stay
     * valid across run(); policies without a matching concept (e.g. no
     * queue) simply leave their fields at zero.
     */
    void bindStats(SchedStats* stats) { stats_ = stats; }

    /**
     * Attach a graceful-stop flag (nullptr detaches).  Once the flag is
     * true, no *new* batch is dispatched; batches already running finish
     * normally (a batch is the unit of graceful stop, matching the apps'
     * SIGTERM contract: finish the current batch, then wind down).  The
     * caller can tell how far the run got from which items its BatchFn
     * actually visited — e.g. the checkpoint manifest's spans.
     */
    void bindStop(const std::atomic<bool>* stop) { stop_ = stop; }

  protected:
    /** True once the bound stop flag (if any) fired. */
    bool
    stopRequested() const
    {
        return stop_ != nullptr && stop_->load(std::memory_order_acquire);
    }

    SchedStats* stats_ = nullptr;
    const std::atomic<bool>* stop_ = nullptr;
};

/** Factory for the policy enum. */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind);

} // namespace mg::sched
