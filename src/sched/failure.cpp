#include "sched/failure.h"

#include <algorithm>
#include <mutex>

#include "fault/fault.h"
#include "util/common.h"

namespace mg::sched {

namespace {

/** The range [begin, end) just failed as a whole: isolate the poisoned
 *  items by bisection, re-running each half on the calling thread. */
void
quarantine(size_t begin, size_t end, const BatchFn& fn,
           FailureReport& report, const std::string& what)
{
    if (end - begin <= 1) {
        report.poisoned.push_back({ begin, what });
        return;
    }
    size_t mid = begin + (end - begin) / 2;
    const std::pair<size_t, size_t> halves[2] = { { begin, mid },
                                                  { mid, end } };
    for (const auto& [b, e] : halves) {
        ++report.retries;
        try {
            fn(0, b, e);
        } catch (const std::exception& err) {
            quarantine(b, e, fn, report, err.what());
        } catch (...) {
            quarantine(b, e, fn, report, "unknown exception");
        }
    }
}

} // namespace

std::string
FailureReport::summary() const
{
    if (ok()) {
        if (watchdogCancels == 0) {
            return "no failures";
        }
        return util::cat("no failures, ", watchdogCancels,
                         " watchdog cancellation",
                         watchdogCancels == 1 ? "" : "s");
    }
    size_t recovered = 0;
    for (const BatchFailure& failure : batches) {
        recovered += failure.recovered ? 1 : 0;
    }
    std::string line =
        util::cat(batches.size(),
                  batches.size() == 1 ? " batch failure ("
                                      : " batch failures (",
                  recovered, " recovered), ", poisoned.size(),
                  " poisoned item", poisoned.size() == 1 ? "" : "s",
                  ", ", retries, retries == 1 ? " retry" : " retries");
    if (watchdogCancels > 0) {
        line += util::cat(", ", watchdogCancels, " watchdog cancellation",
                          watchdogCancels == 1 ? "" : "s");
    }
    return line;
}

FailureReport
runGuarded(Scheduler& scheduler, size_t total, size_t batch_size,
           size_t num_threads, const BatchFn& fn)
{
    FailureReport report;
    std::mutex mutex;
    scheduler.run(total, batch_size, num_threads,
                  [&](size_t thread, size_t begin, size_t end) {
        try {
            // Fault point: a worker dying mid-batch.
            fault::inject("sched.worker");
            fn(thread, begin, end);
        } catch (const std::exception& err) {
            std::lock_guard<std::mutex> lock(mutex);
            report.batches.push_back({ begin, end, err.what(), false });
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            report.batches.push_back(
                { begin, end, "unknown exception", false });
        }
    });

    // Recovery pass, on the calling thread so it needs no scheduler: a
    // failed batch is retried whole first (transient faults — an injected
    // fault with a hit limit, a stall that resolved — clear themselves),
    // then bisected so one poisoned read cannot take its batchmates down.
    for (BatchFailure& failure : report.batches) {
        ++report.retries;
        try {
            fn(0, failure.begin, failure.end);
            failure.recovered = true;
        } catch (const std::exception& err) {
            quarantine(failure.begin, failure.end, fn, report, err.what());
        } catch (...) {
            quarantine(failure.begin, failure.end, fn, report,
                       "unknown exception");
        }
    }
    // Deterministic report: the parallel run records batch failures in
    // completion order, which varies by scheduler and thread interleaving;
    // recovery above visits them in that same recorded order (fn is
    // idempotent per item, so retry order does not affect outcomes).  Sort
    // both lists so identical failures yield byte-identical reports across
    // schedulers and runs.
    std::sort(report.batches.begin(), report.batches.end(),
              [](const BatchFailure& a, const BatchFailure& b) {
                  return a.begin != b.begin ? a.begin < b.begin
                                            : a.end < b.end;
              });
    std::sort(report.poisoned.begin(), report.poisoned.end(),
              [](const ItemFailure& a, const ItemFailure& b) {
                  return a.index < b.index;
              });
    return report;
}

} // namespace mg::sched
