/**
 * @file
 * Guarded scheduling with failure quarantine.  runGuarded wraps a batch
 * function so that a throwing batch does not abort the whole mapping run:
 * the failed range is recorded, every other batch still completes, and a
 * recovery pass afterwards retries each failed batch sequentially — once
 * as a whole, then by bisection — until the poisoned items are isolated.
 * Healthy items of a failed batch are therefore always processed; only
 * items that fail in isolation are reported as poisoned and left for the
 * caller to mark (e.g. as unmapped reads in the GAF output).
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace mg::sched {

/** One batch whose BatchFn invocation threw during the parallel run. */
struct BatchFailure
{
    size_t begin = 0;
    size_t end = 0;
    /** what() of the exception that killed the batch. */
    std::string what;
    /** True when the sequential retry of the whole batch succeeded. */
    bool recovered = false;
};

/** One item that still failed when retried in isolation. */
struct ItemFailure
{
    size_t index = 0;
    std::string what;
};

/** Post-run account of everything that went wrong (and was recovered). */
struct FailureReport
{
    /** Batches that threw during the parallel run, sorted by begin. */
    std::vector<BatchFailure> batches;
    /** Items that failed even in isolation (quarantined), sorted. */
    std::vector<ItemFailure> poisoned;
    /** Sequential re-executions performed during recovery. */
    size_t retries = 0;
    /**
     * Batches the watchdog cancelled (folded in by callers that run a
     * Watchdog alongside the scheduler).  Not a failure: cancelled
     * batches still complete, with their reads tagged degraded.
     */
    size_t watchdogCancels = 0;

    bool ok() const { return batches.empty() && poisoned.empty(); }

    /** Human-readable one-liner ("2 batch failures (1 recovered), ..."). */
    std::string summary() const;
};

/**
 * Run fn over [0, total) through the scheduler, capturing per-batch
 * exceptions instead of propagating them.  Fires the "sched.worker" fault
 * point before each batch.  After the parallel run, failed batches are
 * retried on the calling thread (thread context 0) and bisected down to
 * the poisoned items.  fn must be idempotent per item: recovered items
 * are re-executed.
 */
FailureReport runGuarded(Scheduler& scheduler, size_t total,
                         size_t batch_size, size_t num_threads,
                         const BatchFn& fn);

} // namespace mg::sched
