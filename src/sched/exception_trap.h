/**
 * @file
 * First-exception capture for the scheduler worker loops.  An exception
 * escaping a std::thread body (or an OpenMP region) calls std::terminate;
 * every scheduler therefore guards its BatchFn invocations with a trap,
 * keeps processing the remaining batches, and rethrows the first captured
 * exception once all workers have joined.
 */
#pragma once

#include <exception>
#include <mutex>

namespace mg::sched {

/** Thread-safe holder of the first exception thrown by any batch. */
class ExceptionTrap
{
  public:
    /** Invoke f; on throw, keep the first exception and return false. */
    template <typename Fn>
    bool
    guard(Fn&& f) noexcept
    {
        try {
            f();
            return true;
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_) {
                first_ = std::current_exception();
            }
            return false;
        }
    }

    /** Rethrow the first captured exception, if any. */
    void
    rethrowIfSet()
    {
        std::exception_ptr first;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            first = first_;
        }
        if (first) {
            std::rethrow_exception(first);
        }
    }

  private:
    std::mutex mutex_;
    std::exception_ptr first_;
};

} // namespace mg::sched
