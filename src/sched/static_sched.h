/**
 * @file
 * Static block scheduler: the ablation baseline with zero dispatch
 * machinery — the range is split into one contiguous block per thread up
 * front and nobody rebalances.  Fast when work is uniform, pathological
 * under skew; comparing against it quantifies what dynamic dealing and
 * stealing actually buy.
 */
#pragma once

#include "sched/scheduler.h"

namespace mg::sched {

class StaticScheduler : public Scheduler
{
  public:
    void run(size_t total, size_t batch_size, size_t num_threads,
             const BatchFn& fn) override;

    SchedulerKind kind() const override { return SchedulerKind::Static; }
};

} // namespace mg::sched
