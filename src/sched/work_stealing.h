/**
 * @file
 * The paper's lightweight work-stealing scheduler (Section VII-B): the
 * total workload is split evenly across threads, each thread consumes its
 * share in batch-size chunks, and a thread that runs dry steals batch-size
 * chunks from other threads round-robin using an atomic read-modify-write
 * on the victim's cursor.  Intended to shed the overhead and locality loss
 * of OpenMP's dynamic schedule.
 */
#pragma once

#include "sched/scheduler.h"

namespace mg::sched {

class WorkStealingScheduler : public Scheduler
{
  public:
    void run(size_t total, size_t batch_size, size_t num_threads,
             const BatchFn& fn) override;

    SchedulerKind kind() const override
    {
        return SchedulerKind::WorkStealing;
    }
};

} // namespace mg::sched
