/**
 * @file
 * Watchdog supervision for the batch schedulers.  A mapping worker can
 * stall — a pathological read exploring an enormous walk-state frontier,
 * an injected fault::Stall, a blocked I/O call — and without supervision
 * one stuck worker holds its batch (and, at a join barrier, the whole
 * run) hostage.  The watchdog makes stalls *bounded*:
 *
 *  - HeartbeatBoard   one cache-line-padded slot per worker; the worker
 *                     stamps a monotonic timestamp at every batch start
 *                     and every read, and parks the slot when idle.
 *  - Watchdog         a supervisor thread polling the board; a slot whose
 *                     heartbeat is older than the stall threshold gets its
 *                     CancelToken fired (reason Watchdog) and the event
 *                     recorded.
 *
 * Cancellation is cooperative: the token is the same one ReadBudget
 * checks at extension cancellation points, so the stalled batch drains
 * fast — the current read stops at its next walk-state boundary with its
 * best-so-far alignments, and the batch's remaining reads degrade
 * immediately (their beginRead() samples the fired token).  No read is
 * lost; degraded ones are tagged in the GAF output.  The worker re-arms
 * its token at the next batch boundary via beginBatch().
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "resilience/budget.h"

namespace mg::sched {

/** Watchdog tuning. */
struct WatchdogParams
{
    /** Heartbeat age (seconds) at which a busy worker counts as stalled. */
    double stallSeconds = 5.0;
    /** Supervisor poll period in milliseconds. */
    double pollMillis = 20.0;
};

/** One cancellation the watchdog performed. */
struct WatchdogEvent
{
    size_t worker = 0;
    /** Batch the worker was processing when cancelled. */
    size_t batchBegin = 0;
    size_t batchEnd = 0;
    /** Heartbeat age at cancellation time, nanoseconds. */
    uint64_t stalledNanos = 0;
    /** util::nowNanos() when the cancellation fired (trace overlays). */
    uint64_t atNanos = 0;
    /** The cancelled worker's flight-recorder ring, newest first (empty
     *  when no recorder was attached): the reads on the operating table
     *  when the stall was detected. */
    std::vector<obs::FlightEntry> flight;
};

/**
 * Per-worker heartbeat slots shared between workers and the supervisor.
 * Fixed size for the lifetime of a run; all cross-thread state is atomic
 * (the supervisor never blocks a worker and vice versa).
 */
class HeartbeatBoard
{
  public:
    struct alignas(64) Slot
    {
        /** util::nowNanos() of the last heartbeat; 0 while idle. */
        std::atomic<uint64_t> beatNanos{0};
        /** Batch range being processed (valid while beatNanos != 0). */
        std::atomic<uint64_t> batchBegin{0};
        std::atomic<uint64_t> batchEnd{0};
        /** Fired by the watchdog; checked by the worker's ReadBudget. */
        resilience::CancelToken token;
    };

    explicit HeartbeatBoard(size_t workers) : slots_(workers) {}

    size_t size() const { return slots_.size(); }
    Slot& slot(size_t worker) { return slots_[worker]; }

    /** Worker-side: entering a batch.  Re-arms the token (a cancellation
     *  applies to one batch, not the worker forever) and stamps a beat. */
    void
    beginBatch(size_t worker, size_t begin, size_t end)
    {
        Slot& s = slots_[worker];
        s.batchBegin.store(begin, std::memory_order_relaxed);
        s.batchEnd.store(end, std::memory_order_relaxed);
        s.token.reset();
        s.beatNanos.store(util::nowNanos(), std::memory_order_release);
    }

    /** Worker-side: still alive (call once per read). */
    void
    beat(size_t worker)
    {
        slots_[worker].beatNanos.store(util::nowNanos(),
                                       std::memory_order_release);
    }

    /** Worker-side: batch done, park the slot (idle slots never stall). */
    void
    endBatch(size_t worker)
    {
        slots_[worker].beatNanos.store(0, std::memory_order_release);
    }

  private:
    /** Fixed at construction: Slot holds atomics and cannot move. */
    std::vector<Slot> slots_;
};

/**
 * The supervisor thread.  start() spawns it; stop() (or destruction)
 * joins it.  Events are available after stop().
 */
class Watchdog
{
  public:
    Watchdog(HeartbeatBoard& board, WatchdogParams params)
        : board_(board), params_(params)
    {}

    ~Watchdog() { stop(); }

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    void start();

    /**
     * Snapshot each cancelled worker's ring into its WatchdogEvent.  The
     * recorder must outlive the watchdog; call before start().
     */
    void
    attachFlightRecorder(const obs::FlightRecorder* recorder)
    {
        flight_ = recorder;
    }

    /** Idempotent; joins the supervisor thread. */
    void stop();

    /** Cancellations performed, in detection order.  Call after stop(). */
    const std::vector<WatchdogEvent>& events() const { return events_; }

  private:
    void poll(uint64_t stall_nanos);

    HeartbeatBoard& board_;
    WatchdogParams params_;
    const obs::FlightRecorder* flight_ = nullptr;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool running_ = false;
    std::vector<WatchdogEvent> events_;
};

} // namespace mg::sched
