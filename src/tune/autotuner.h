/**
 * @file
 * The autotuning harness of Section VII-B.  The tuning space is the
 * paper's: scheduler policy x batch size (powers of two, 128..2048) x
 * initial CachedGBWT capacity (256..4096, plus 0 = caching off for the
 * Figure 6 baseline).
 *
 * Measurement strategy on this single-core container (DESIGN.md):
 * for each cache capacity the proxy is *actually run* single-threaded with
 * the memory tracer attached, so capacity effects (rehash storms, table
 * locality, decode savings) are emergent from real execution; per-machine
 * cache counters then feed the cost model, and the scaling model adds the
 * thread/socket/SMT and scheduler/batch terms to produce the machine's
 * full-thread makespan for every configuration.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gbwt/cached_gbwt.h"
#include "giraffe/proxy.h"
#include "machine/scaling_model.h"
#include "stats/anova.h"

namespace mg::tune {

/** One point of the tuning space. */
struct TuneConfig
{
    sched::SchedulerKind scheduler = sched::SchedulerKind::OmpDynamic;
    size_t batchSize = 512;
    size_t cacheCapacity = gbwt::CachedGbwt::kDefaultInitialCapacity;

    /** "openmp/512/256" — stable key for tables. */
    std::string str() const;
};

/** Giraffe's defaults (the paper's baseline configuration). */
TuneConfig defaultConfig();

/** The sweep dimensions. */
struct SweepSpace
{
    std::vector<sched::SchedulerKind> schedulers;
    std::vector<size_t> batchSizes;
    std::vector<size_t> capacities;

    size_t
    size() const
    {
        return schedulers.size() * batchSizes.size() * capacities.size();
    }
};

/** The paper's cross product (Section VII-B). */
SweepSpace paperSweepSpace();

/** Measured profile of the proxy at one cache capacity (single thread). */
struct CapacityProfile
{
    size_t capacity = 0;
    /** Host wall-clock seconds of a clean (untraced) run. */
    double hostSeconds = 0.0;
    /** Host wall-clock seconds of the traced run (tracer overhead incl.). */
    double tracedSeconds = 0.0;
    /**
     * Calibration anchor shared by a sweep: the clean host seconds and the
     * modelled local-intel seconds of the *default-capacity* profile.
     * Deterministic traced cycle counts then carry capacity differences,
     * keeping host timing noise out of the capacity dimension.
     */
    double anchorHostSeconds = 0.0;
    double anchorModelSeconds = 0.0;
    uint64_t numReads = 0;
    machine::WorkCounters work;
    /** Cache counters per Table II machine name. */
    std::map<std::string, machine::CacheCounters> perMachine;
    gbwt::CacheStats cacheStats;
};

/** Makespan of one configuration on one machine. */
struct ConfigResult
{
    TuneConfig config;
    double makespanSeconds = 0.0;
};

/** Scheduler-dependent model constants (dispatch/setup costs). */
machine::SchedulerCost schedulerCost(sched::SchedulerKind kind);

/** The autotuner: measures capacities, models the full cross product. */
class Autotuner
{
  public:
    Autotuner(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
              const index::DistanceIndex& distance,
              const io::SeedCapture& capture,
              map::MapperParams mapper_params = map::MapperParams());

    /**
     * Run the proxy once, single-threaded, at the given capacity with the
     * tracer attached; returns the measured profile.
     */
    CapacityProfile measureCapacity(size_t capacity) const;

    /** Measure every capacity of the space (memoizing duplicates). */
    std::vector<CapacityProfile>
    measureCapacities(const std::vector<size_t>& capacities) const;

    /**
     * Single-thread cost of the profiled kernel on `machine`, calibrated
     * so that the absolute scale comes from the clean host measurement and
     * the cross-machine ratios come from the trace-driven cost model.
     * local-intel acts as the calibration twin (the paper's host machine).
     */
    static machine::CostProfile
    calibratedCost(const machine::MachineConfig& machine,
                   const CapacityProfile& profile);

    /**
     * Model the makespan of one configuration on one machine at the given
     * thread count (the paper uses all available contexts).
     */
    static double modelMakespan(const machine::MachineConfig& machine,
                                const CapacityProfile& profile,
                                const TuneConfig& config, size_t threads);

    /** Full cross-product sweep for one machine at full thread count. */
    std::vector<ConfigResult>
    sweep(const machine::MachineConfig& machine, const SweepSpace& space,
          const std::vector<CapacityProfile>& profiles) const;

    /** Best (minimum-makespan) entry of a sweep. */
    static const ConfigResult& best(const std::vector<ConfigResult>& sweep);

    /** Find a specific configuration's result in a sweep. */
    static const ConfigResult& find(const std::vector<ConfigResult>& sweep,
                                    const TuneConfig& config);

    /** ANOVA over a sweep: factor significance on makespan (§VII-B). */
    static stats::AnovaResult anova(const std::vector<ConfigResult>& sweep);

  private:
    const graph::VariationGraph& graph_;
    const gbwt::Gbwt& gbwt_;
    const index::DistanceIndex& distance_;
    const io::SeedCapture& capture_;
    map::MapperParams mapperParams_;
};

} // namespace mg::tune
