#include "tune/autotuner.h"

#include <algorithm>

#include "machine/tracer.h"
#include "util/common.h"

namespace mg::tune {

std::string
TuneConfig::str() const
{
    return std::string(sched::schedulerName(scheduler)) + "/" +
           std::to_string(batchSize) + "/" + std::to_string(cacheCapacity);
}

TuneConfig
defaultConfig()
{
    // Giraffe defaults: OpenMP scheduling, batch 512, capacity 256.
    return TuneConfig{sched::SchedulerKind::OmpDynamic, 512,
                      gbwt::CachedGbwt::kDefaultInitialCapacity};
}

SweepSpace
paperSweepSpace()
{
    SweepSpace space;
    space.schedulers = {sched::SchedulerKind::OmpDynamic,
                        sched::SchedulerKind::WorkStealing};
    space.batchSizes = {128, 256, 512, 1024, 2048};
    space.capacities = {256, 512, 1024, 2048, 4096};
    return space;
}

machine::SchedulerCost
schedulerCost(sched::SchedulerKind kind)
{
    machine::SchedulerCost cost;
    switch (kind) {
      case sched::SchedulerKind::OmpDynamic:
        // Centralized dynamic queue: a shared-counter CAS per batch plus
        // fork/join barrier costs; the shared counter ping-pongs between
        // all participating cores.
        cost.dispatchMicros = 1.1;
        cost.threadSetupMicros = 6.0;
        cost.contentionMicrosPerThread = 0.030;
        cost.serialDispatch = false;
        cost.imbalanceFactor = 0.5;
        break;
      case sched::SchedulerKind::VgBatch:
        // Main-thread dispatcher: batch creation and queueing serialize;
        // workers contend on the queue lock.
        cost.dispatchMicros = 1.6;
        cost.threadSetupMicros = 12.0;
        cost.contentionMicrosPerThread = 0.015;
        cost.serialDispatch = true;
        cost.imbalanceFactor = 0.5;
        break;
      case sched::SchedulerKind::WorkStealing:
        // Mostly thread-local cursors: one relaxed fetch_add per batch,
        // contention only while stealing; threads are spawned per run.
        cost.dispatchMicros = 0.35;
        cost.threadSetupMicros = 18.0;
        cost.contentionMicrosPerThread = 0.006;
        cost.serialDispatch = false;
        cost.imbalanceFactor = 0.08; // stealing drains the tail
        break;
      case sched::SchedulerKind::Static:
        // No dispatch machinery at all, but nothing absorbs skew: the
        // tail is a whole block, not a batch.
        cost.dispatchMicros = 0.0;
        cost.threadSetupMicros = 18.0;
        cost.contentionMicrosPerThread = 0.0;
        cost.serialDispatch = false;
        cost.imbalanceFactor = 4.0;
        break;
    }
    return cost;
}

Autotuner::Autotuner(const graph::VariationGraph& graph,
                     const gbwt::Gbwt& gbwt,
                     const index::DistanceIndex& distance,
                     const io::SeedCapture& capture,
                     map::MapperParams mapper_params)
    : graph_(graph), gbwt_(gbwt), distance_(distance), capture_(capture),
      mapperParams_(mapper_params)
{}

CapacityProfile
Autotuner::measureCapacity(size_t capacity) const
{
    CapacityProfile profile;
    profile.capacity = capacity;
    profile.numReads = capture_.entries.size();

    giraffe::ProxyParams params;
    params.mapper = mapperParams_;
    params.mapper.gbwtCacheCapacity = capacity;
    params.numThreads = 1;
    giraffe::ProxyRunner runner(graph_, gbwt_, distance_, params);

    // Clean runs first: the wall clock anchors the model's absolute
    // scale; best-of-3 suppresses host scheduling noise.
    giraffe::ProxyOutputs clean = runner.run(capture_);
    profile.hostSeconds = clean.wallSeconds;
    for (int rep = 1; rep < 3; ++rep) {
        profile.hostSeconds =
            std::min(profile.hostSeconds, runner.run(capture_).wallSeconds);
    }

    // Traced run second: per-machine cache counters and instruction work.
    machine::TraceCounter tracer(machine::paperMachines());
    giraffe::ProxyOutputs outputs = runner.run(capture_, nullptr, &tracer);
    profile.tracedSeconds = outputs.wallSeconds;
    profile.work = tracer.work();
    for (size_t m = 0; m < tracer.numMachines(); ++m) {
        profile.perMachine[tracer.hierarchy(m).config().name] =
            tracer.counters(m);
    }
    profile.cacheStats = outputs.cacheStats;
    // Standalone measurement: the profile anchors itself.
    profile.anchorHostSeconds = profile.hostSeconds;
    profile.anchorModelSeconds =
        machine::modelCost(machine::machineByName("local-intel"),
                           profile.work,
                           profile.perMachine.at("local-intel")).seconds;
    return profile;
}

std::vector<CapacityProfile>
Autotuner::measureCapacities(const std::vector<size_t>& capacities) const
{
    std::vector<CapacityProfile> profiles;
    for (size_t capacity : capacities) {
        bool measured = false;
        for (const CapacityProfile& existing : profiles) {
            if (existing.capacity == capacity) {
                profiles.push_back(existing);
                measured = true;
                break;
            }
        }
        if (!measured) {
            profiles.push_back(measureCapacity(capacity));
        }
    }
    // Share one calibration anchor across the sweep: prefer the default
    // capacity's profile, else the first.
    const CapacityProfile* anchor = &profiles.front();
    for (const CapacityProfile& profile : profiles) {
        if (profile.capacity == gbwt::CachedGbwt::kDefaultInitialCapacity) {
            anchor = &profile;
            break;
        }
    }
    double anchor_host = anchor->anchorHostSeconds;
    double anchor_model = anchor->anchorModelSeconds;
    for (CapacityProfile& profile : profiles) {
        profile.anchorHostSeconds = anchor_host;
        profile.anchorModelSeconds = anchor_model;
    }
    return profiles;
}

machine::CostProfile
Autotuner::calibratedCost(const machine::MachineConfig& machine,
                          const CapacityProfile& profile)
{
    auto it = profile.perMachine.find(machine.name);
    MG_CHECK(it != profile.perMachine.end(),
             "profile lacks counters for machine ", machine.name);
    machine::CostProfile cost =
        machine::modelCost(machine, profile.work, it->second);

    // Calibrate absolute time against the sweep's anchor measurement:
    // local-intel at the default capacity is the reference twin; all
    // machine and capacity differences flow through the deterministic
    // modelled cycle ratios, keeping host timing noise out.
    if (profile.anchorModelSeconds > 0.0 &&
        profile.anchorHostSeconds > 0.0) {
        cost.seconds = profile.anchorHostSeconds *
                       (cost.seconds / profile.anchorModelSeconds);
    }
    return cost;
}

double
Autotuner::modelMakespan(const machine::MachineConfig& machine,
                         const CapacityProfile& profile,
                         const TuneConfig& config, size_t threads)
{
    auto it = profile.perMachine.find(machine.name);
    MG_CHECK(it != profile.perMachine.end(),
             "profile lacks counters for machine ", machine.name);
    machine::CostProfile cost = calibratedCost(machine, profile);

    machine::WorkloadShape shape;
    shape.numReads = profile.numReads;
    shape.batchSize = config.batchSize;
    shape.dramBytes = static_cast<double>(it->second.llcMisses) * 64.0;

    return machine::predictedTime(machine, cost, shape,
                                  schedulerCost(config.scheduler), threads);
}

std::vector<ConfigResult>
Autotuner::sweep(const machine::MachineConfig& machine,
                 const SweepSpace& space,
                 const std::vector<CapacityProfile>& profiles) const
{
    auto profile_for = [&](size_t capacity) -> const CapacityProfile& {
        for (const CapacityProfile& profile : profiles) {
            if (profile.capacity == capacity) {
                return profile;
            }
        }
        throw util::Error("no measured profile for capacity " +
                          std::to_string(capacity));
    };

    std::vector<ConfigResult> results;
    results.reserve(space.size());
    for (sched::SchedulerKind scheduler : space.schedulers) {
        for (size_t batch : space.batchSizes) {
            for (size_t capacity : space.capacities) {
                TuneConfig config{scheduler, batch, capacity};
                ConfigResult result;
                result.config = config;
                result.makespanSeconds =
                    modelMakespan(machine, profile_for(capacity), config,
                                  machine.threadContexts());
                results.push_back(result);
            }
        }
    }
    return results;
}

const ConfigResult&
Autotuner::best(const std::vector<ConfigResult>& sweep)
{
    MG_CHECK(!sweep.empty(), "empty sweep");
    const ConfigResult* best = &sweep.front();
    for (const ConfigResult& result : sweep) {
        if (result.makespanSeconds < best->makespanSeconds) {
            best = &result;
        }
    }
    return *best;
}

const ConfigResult&
Autotuner::find(const std::vector<ConfigResult>& sweep,
                const TuneConfig& config)
{
    for (const ConfigResult& result : sweep) {
        if (result.config.scheduler == config.scheduler &&
            result.config.batchSize == config.batchSize &&
            result.config.cacheCapacity == config.cacheCapacity) {
            return result;
        }
    }
    throw util::Error("configuration not in sweep: " + config.str());
}

stats::AnovaResult
Autotuner::anova(const std::vector<ConfigResult>& sweep)
{
    MG_CHECK(sweep.size() >= 8, "sweep too small for ANOVA");

    auto level_of = [](std::vector<size_t>& levels, size_t value,
                       std::vector<size_t>& catalog) {
        for (size_t i = 0; i < catalog.size(); ++i) {
            if (catalog[i] == value) {
                levels.push_back(i);
                return;
            }
        }
        levels.push_back(catalog.size());
        catalog.push_back(value);
    };

    stats::Factor scheduler{"scheduler", {}, 0};
    stats::Factor batches{"batch_size", {}, 0};
    stats::Factor capacity{"cache_capacity", {}, 0};
    std::vector<size_t> sched_catalog;
    std::vector<size_t> batch_catalog;
    std::vector<size_t> capacity_catalog;
    std::vector<double> response;
    for (const ConfigResult& result : sweep) {
        level_of(scheduler.levels,
                 static_cast<size_t>(result.config.scheduler),
                 sched_catalog);
        level_of(batches.levels, result.config.batchSize, batch_catalog);
        level_of(capacity.levels, result.config.cacheCapacity,
                 capacity_catalog);
        response.push_back(result.makespanSeconds);
    }
    scheduler.numLevels = sched_catalog.size();
    batches.numLevels = batch_catalog.size();
    capacity.numLevels = capacity_catalog.size();
    return stats::anova({scheduler, batches, capacity}, response);
}

} // namespace mg::tune
