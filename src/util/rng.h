/**
 * @file
 * Deterministic pseudo-random number generation.  All stochastic components
 * (pangenome generation, read simulation, property tests) draw from this
 * generator so that every experiment in the repository is reproducible from
 * a seed.  The engine is xoshiro256**, seeded through SplitMix64.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace mg::util {

/** xoshiro256** engine with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed) { reseed(seed); }

    /** Re-initialize the state from a seed via SplitMix64 expansion. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) using Lemire's multiply-shift rejection. */
    uint64_t uniform(uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p) { return uniformReal() < p; }

    /** Geometric-ish draw: number of failures before a success with prob p. */
    uint64_t geometric(double p);

    /** One of the four DNA bases, uniformly. */
    char randomBase();

    /** A DNA base different from the given one (for substitution errors). */
    char differentBase(char base);

    /** Random DNA string of the given length. */
    std::string randomDna(size_t length);

    /** Pick an index according to non-negative weights (sum must be > 0). */
    size_t weightedIndex(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            std::swap(items[i - 1], items[uniform(i)]);
        }
    }

  private:
    uint64_t state_[4];
};

} // namespace mg::util
