/**
 * @file
 * Structured error reporting for the decode trust boundary.  A Status
 * carries a machine-readable code plus the provenance of the failure —
 * which file, which container section, and at what byte offset — so a
 * corrupt multi-gigabyte pangenome produces "checksum mismatch in
 * section 'nodes' of graph.mgz at offset 517" instead of a bare what().
 *
 * StatusError derives from mg::util::Error, so every existing
 * catch (const util::Error&) site keeps working; hardened decode paths
 * throw StatusError and callers that care (mg_verify, the fault tests)
 * can downcast to inspect the code and context.
 */
#pragma once

#include <cstdint>
#include <string>

#include "util/common.h"

namespace mg::util {

/** Failure taxonomy used across io, gbwt, and sched failure paths. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    /** Bad argument or configuration from the caller. */
    InvalidArgument,
    /** Input ended before the structure it promised. */
    Truncated,
    /** Structurally invalid input (bad magic, inconsistent counts). */
    Corrupt,
    /** A section checksum did not match its payload. */
    ChecksumMismatch,
    /** The operating system failed a read/write. */
    IoError,
    /** A deliberately injected fault (mg::fault) fired. */
    FaultInjected,
    /** Allocation or similar resource failure. */
    ResourceExhausted,
    /** Invariant violation that should be unreachable. */
    Internal,
};

/** Short stable name ("truncated", "checksum-mismatch", ...). */
const char* statusCodeName(StatusCode code);

/** One failure with its provenance. */
struct Status
{
    StatusCode code = StatusCode::Ok;
    std::string message;
    /** Originating file path; empty for in-memory buffers. */
    std::string file;
    /** Container section being decoded ("nodes", "gbwt", ...); may be
     *  empty. */
    std::string section;
    /** Byte offset of the failure within the file/buffer. */
    uint64_t offset = 0;

    bool ok() const { return code == StatusCode::Ok; }

    /** "truncated: <message> [file=... section=... offset=...]". */
    std::string toString() const;
};

/** Exception carrying a Status; what() is status().toString(). */
class StatusError : public Error
{
  public:
    explicit StatusError(Status status);
    const Status& status() const { return status_; }

  private:
    Status status_;
};

/** Throw the status as a StatusError (must not be Ok). */
[[noreturn]] void throwStatus(Status status);

} // namespace mg::util
