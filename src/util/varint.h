/**
 * @file
 * LEB128-style variable-length integer coding plus a byte-stream reader and
 * writer.  This is the primitive the MGZ container and the compressed GBWT
 * record store are built on: small values (edge ranks, run lengths, delta
 * gaps) dominate those streams, so a byte-oriented varint gives most of the
 * compression the GBZ format gets from its sdsl bit vectors at a fraction of
 * the complexity.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace mg::util {

/** Append v to out as an unsigned LEB128 varint (1..10 bytes). */
void putVarint(std::vector<uint8_t>& out, uint64_t v);

/** ZigZag-encode a signed value so small magnitudes stay small. */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/**
 * Sequential reader over a byte span.  Bounds-checked: reading past the end
 * throws mg::util::Error (corrupt input is a user-facing error).
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
    explicit ByteReader(const std::vector<uint8_t>& bytes)
        : ByteReader(bytes.data(), bytes.size()) {}

    /** Decode one unsigned varint and advance. */
    uint64_t getVarint();
    /** Decode one zigzag-coded signed varint and advance. */
    int64_t getSignedVarint() { return zigzagDecode(getVarint()); }
    /** Read one raw byte and advance. */
    uint8_t getByte();
    /** Read n raw bytes into dst and advance. */
    void getBytes(void* dst, size_t n);
    /** Read a varint-length-prefixed string. */
    std::string getString();

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }
    void seek(size_t pos);

  private:
    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
};

/** Sequential writer producing a byte vector. */
class ByteWriter
{
  public:
    void putVarint(uint64_t v) { mg::util::putVarint(bytes_, v); }
    void putSignedVarint(int64_t v) { putVarint(zigzagEncode(v)); }
    void putByte(uint8_t b) { bytes_.push_back(b); }
    void putBytes(const void* src, size_t n);
    /** Write a varint length prefix followed by the raw characters. */
    void putString(const std::string& s);

    const std::vector<uint8_t>& bytes() const { return bytes_; }
    std::vector<uint8_t> takeBytes() { return std::move(bytes_); }
    size_t size() const { return bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace mg::util
