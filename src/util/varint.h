/**
 * @file
 * LEB128-style variable-length integer coding plus a byte-stream reader and
 * writer.  This is the primitive the MGZ container and the compressed GBWT
 * record store are built on: small values (edge ranks, run lengths, delta
 * gaps) dominate those streams, so a byte-oriented varint gives most of the
 * compression the GBZ format gets from its sdsl bit vectors at a fraction of
 * the complexity.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace mg::util {

/** Append v to out as an unsigned LEB128 varint (1..10 bytes). */
void putVarint(std::vector<uint8_t>& out, uint64_t v);

/** ZigZag-encode a signed value so small magnitudes stay small. */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/**
 * Sequential reader over a byte span.  Bounds-checked: reading past the end
 * throws mg::util::StatusError (corrupt input is a user-facing error) whose
 * Status carries the reader's provenance context (see setContext) plus the
 * byte offset of the violation.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
    explicit ByteReader(const std::vector<uint8_t>& bytes)
        : ByteReader(bytes.data(), bytes.size()) {}

    /**
     * Attach provenance for error reporting.  The file name is kept by
     * reference and must outlive the reader; the section must be a string
     * with static storage (a literal).
     */
    void
    setContext(std::string_view file, const char* section = nullptr)
    {
        ctxFile_ = file;
        ctxSection_ = section;
    }

    /** Update only the section component of the context. */
    void setSection(const char* section) { ctxSection_ = section; }

    /** Decode one unsigned varint and advance. */
    uint64_t getVarint();
    /** Decode one zigzag-coded signed varint and advance. */
    int64_t getSignedVarint() { return zigzagDecode(getVarint()); }
    /** Read one raw byte and advance. */
    uint8_t getByte();
    /** Read n raw bytes into dst and advance. */
    void getBytes(void* dst, size_t n);
    /** Read a varint-length-prefixed string. */
    std::string getString();

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }
    void seek(size_t pos);
    const uint8_t* data() const { return data_; }
    size_t size() const { return size_; }

  protected:
    /** Throw a StatusError at the current position with this reader's
     *  provenance context. */
    [[noreturn]] void fail(StatusCode code, std::string what) const;

  private:
    const uint8_t* data_;
    size_t size_;
    size_t pos_ = 0;
    std::string_view ctxFile_{};
    const char* ctxSection_ = nullptr;
};

/** Sequential writer producing a byte vector. */
class ByteWriter
{
  public:
    void putVarint(uint64_t v) { mg::util::putVarint(bytes_, v); }
    void putSignedVarint(int64_t v) { putVarint(zigzagEncode(v)); }
    void putByte(uint8_t b) { bytes_.push_back(b); }
    void putBytes(const void* src, size_t n);
    /** Write a varint length prefix followed by the raw characters. */
    void putString(const std::string& s);

    const std::vector<uint8_t>& bytes() const { return bytes_; }
    std::vector<uint8_t> takeBytes() { return std::move(bytes_); }
    size_t size() const { return bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace mg::util
