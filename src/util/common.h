/**
 * @file
 * Project-wide error handling and small helpers.
 *
 * Two failure channels, following the simulator convention:
 *  - MG_CHECK / mg::util::require  -> user-facing errors (bad input, bad
 *    configuration); throws mg::util::Error.
 *  - MG_ASSERT                     -> internal invariant violations (a bug in
 *    this library); aborts in all build types.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mg::util {

/** Exception thrown for user-facing errors (bad input files, bad flags). */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/** Build a string from streamable parts: cat("x=", 3, " y=", 4.5). */
template <typename... Args>
std::string
cat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Throw mg::util::Error unless cond holds. */
template <typename... Args>
void
require(bool cond, Args&&... args)
{
    if (!cond) {
        throw Error(cat(std::forward<Args>(args)...));
    }
}

[[noreturn]] inline void
assertFail(const char* expr, const char* file, int line)
{
    std::fprintf(stderr, "MG_ASSERT failed: %s at %s:%d\n", expr, file, line);
    std::abort();
}

} // namespace mg::util

/** Internal invariant check; active in all build types. */
#define MG_ASSERT(expr)                                                      \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::mg::util::assertFail(#expr, __FILE__, __LINE__);               \
        }                                                                    \
    } while (0)

/** User-facing precondition check; throws mg::util::Error with a message. */
#define MG_CHECK(expr, ...)                                                  \
    ::mg::util::require(static_cast<bool>(expr), "check failed: ", #expr,    \
                        " -- ", ::mg::util::cat(__VA_ARGS__))
