#include "util/csv.h"

#include "util/str.h"

namespace mg::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size())
{
    require(out_.good(), "cannot open CSV file for writing: ", path);
    row(header);
}

void
CsvWriter::row(const std::vector<std::string>& fields)
{
    MG_ASSERT(fields.size() == width_);
    std::vector<std::string> escaped;
    escaped.reserve(fields.size());
    for (const auto& f : fields) {
        escaped.push_back(escape(f));
    }
    out_ << join(escaped, ",") << '\n';
}

void
CsvWriter::close()
{
    out_.close();
}

std::string
CsvWriter::escape(const std::string& field)
{
    if (field.find_first_of(",\"\n") == std::string::npos) {
        return field;
    }
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace mg::util
