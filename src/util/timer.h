/**
 * @file
 * Wall-clock timing.  All experiment harnesses report the paper's notion of
 * makespan (end-to-end wall clock), so a steady monotonic clock is used.
 */
#pragma once

#include <chrono>
#include <cstdint>

namespace mg::util {

/** Monotonic nanosecond timestamp (origin unspecified, steady). */
inline uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch()).count());
}

/** Simple start/stop wall timer reporting elapsed seconds. */
class WallTimer
{
  public:
    WallTimer() : start_(nowNanos()) {}

    /** Restart the timer. */
    void reset() { start_ = nowNanos(); }

    /** Seconds since construction or last reset. */
    double seconds() const
    {
        return static_cast<double>(nowNanos() - start_) * 1e-9;
    }

    /** Nanoseconds since construction or last reset. */
    uint64_t nanos() const { return nowNanos() - start_; }

  private:
    uint64_t start_;
};

} // namespace mg::util
