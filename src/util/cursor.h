/**
 * @file
 * ByteCursor: the hardened reader used at the decode trust boundary (MGZ
 * container, seed captures, extension files, GBWT records).  It is a
 * ByteReader whose construction takes the provenance of the bytes — the
 * file they came from — and whose walk is annotated with the container
 * section being decoded, so every bounds violation or structural check
 * surfaces as a StatusError reporting file/section/offset.
 */
#pragma once

#include <string_view>
#include <vector>

#include "util/varint.h"

namespace mg::util {

/** Bounds-checked, provenance-carrying byte reader. */
class ByteCursor : public ByteReader
{
  public:
    ByteCursor(const uint8_t* data, size_t size, std::string_view file = {})
        : ByteReader(data, size)
    {
        setContext(file);
    }

    explicit ByteCursor(const std::vector<uint8_t>& bytes,
                        std::string_view file = {})
        : ByteCursor(bytes.data(), bytes.size(), file)
    {}

    /** Enter a named container section (string literal). */
    void enterSection(const char* section) { setSection(section); }

    /** Throw a StatusError at the current position. */
    [[noreturn]] void
    raise(StatusCode code, std::string what) const
    {
        fail(code, std::move(what));
    }

    /** Contextual precondition: throws a StatusError unless cond holds. */
    template <typename... Args>
    void
    check(bool cond, StatusCode code, Args&&... args) const
    {
        if (!cond) {
            fail(code, cat(std::forward<Args>(args)...));
        }
    }
};

} // namespace mg::util
