/**
 * @file
 * CRC32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/gzip checksum) used
 * to protect the MGZ container's sections against bit flips and
 * truncation.  Table-driven, one byte per step — fast enough that
 * checksumming a section is noise next to decompressing it.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace mg::util {

/** Incremental CRC32 over a stream of chunks. */
class Crc32
{
  public:
    /** Feed size bytes; may be called repeatedly. */
    void update(const void* data, size_t size);

    /** Checksum of everything fed so far (empty input -> 0). */
    uint32_t value() const { return state_ ^ 0xffffffffu; }

    /** Start over. */
    void reset() { state_ = 0xffffffffu; }

  private:
    uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC32 of a buffer. */
uint32_t crc32(const void* data, size_t size);

} // namespace mg::util
