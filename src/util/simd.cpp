#include "util/simd.h"

#include <bit>
#include <cstdio>
#include <mutex>

#include "util/dna.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MG_SIMD_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#define MG_SIMD_NEON 1
#endif

namespace mg::util {

namespace {

/*
 * Bounds safety of the wide loops.  Every packed buffer carries one zero
 * pad word past its last data word (util/dna.h invariant).  A wide step at
 * base position p (word wi = p>>5) loads lo = words[wi .. wi+L-1] and
 * hi = words[wi+1 .. wi+L] for L lanes.  The step runs only while at least
 * 32*L bases remain, so base p + 32*L - 1 exists and its word index
 * (p + 32*L - 1) >> 5 >= wi + L - 1 is a *data* word; the deepest load,
 * words[wi+L], is therefore at worst the pad word.  No load ever leaves
 * the buffer.
 */

/** MatchRunFn adapter for the per-base reference loop (counts nothing —
 *  the scalar baseline reports zero words per extend, as before). */
uint32_t
runScalar(const uint64_t* a, uint64_t abase, const uint64_t* b,
          uint64_t bbase, uint32_t span, uint64_t& /*words_compared*/)
{
    return matchRunScalar(a, abase, b, bbase, span);
}

/** MatchRunFn adapter for the SWAR loop. */
uint32_t
runSwar(const uint64_t* a, uint64_t abase, const uint64_t* b,
        uint64_t bbase, uint32_t span, uint64_t& words_compared)
{
    return matchRunPacked(a, abase, b, bbase, span, words_compared);
}

#if defined(MG_SIMD_X86)

/** AVX2: four 32-base lanes (128 bases) per step, SWAR tail. */
__attribute__((target("avx2"))) uint32_t
runAvx2(const uint64_t* a, uint64_t abase, const uint64_t* b,
        uint64_t bbase, uint32_t span, uint64_t& words_compared)
{
    uint32_t done = 0;
    if (span >= 128) {
        // done advances in 32-base units, so both streams keep a constant
        // intra-word phase: one scalar shift count serves all lanes of
        // every iteration (chunk = (lo >> sh) | ((hi << 1) << (63 - sh)),
        // the branchless shift-carry of util::chunk32, four words wide).
        const __m128i sha =
            _mm_cvtsi32_si128(static_cast<int>((abase & 31u) << 1));
        const __m128i cba = _mm_cvtsi32_si128(
            static_cast<int>(63u - ((abase & 31u) << 1)));
        const __m128i shb =
            _mm_cvtsi32_si128(static_cast<int>((bbase & 31u) << 1));
        const __m128i cbb = _mm_cvtsi32_si128(
            static_cast<int>(63u - ((bbase & 31u) << 1)));
        const __m256i zero = _mm256_setzero_si256();
        while (span - done >= 128) {
            const uint64_t wa = (abase + done) >> 5;
            const uint64_t wb = (bbase + done) >> 5;
            __m256i alo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(a + wa));
            __m256i ahi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(a + wa + 1));
            __m256i blo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(b + wb));
            __m256i bhi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(b + wb + 1));
            __m256i va = _mm256_or_si256(
                _mm256_srl_epi64(alo, sha),
                _mm256_sll_epi64(_mm256_slli_epi64(ahi, 1), cba));
            __m256i vb = _mm256_or_si256(
                _mm256_srl_epi64(blo, shb),
                _mm256_sll_epi64(_mm256_slli_epi64(bhi, 1), cbb));
            __m256i x = _mm256_xor_si256(va, vb);
            words_compared += 4;
            uint32_t eq = static_cast<uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpeq_epi64(x, zero))));
            if (eq != 0xFu) {
                uint32_t lane = static_cast<uint32_t>(
                    std::countr_zero(~eq & 0xFu));
                alignas(32) uint64_t lanes[4];
                _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), x);
                uint32_t diff = static_cast<uint32_t>(
                                    std::countr_zero(lanes[lane])) >> 1;
                return done + lane * 32 + diff;
            }
            done += 128;
        }
    }
    return done + matchRunPacked(a, abase + done, b, bbase + done,
                                 span - done, words_compared);
}

/** AVX-512BW: eight 32-base lanes (256 bases) per step, SWAR tail. */
__attribute__((target("avx512f,avx512bw"))) uint32_t
runAvx512(const uint64_t* a, uint64_t abase, const uint64_t* b,
          uint64_t bbase, uint32_t span, uint64_t& words_compared)
{
    uint32_t done = 0;
    if (span >= 256) {
        const __m128i sha =
            _mm_cvtsi32_si128(static_cast<int>((abase & 31u) << 1));
        const __m128i cba = _mm_cvtsi32_si128(
            static_cast<int>(63u - ((abase & 31u) << 1)));
        const __m128i shb =
            _mm_cvtsi32_si128(static_cast<int>((bbase & 31u) << 1));
        const __m128i cbb = _mm_cvtsi32_si128(
            static_cast<int>(63u - ((bbase & 31u) << 1)));
        while (span - done >= 256) {
            const uint64_t wa = (abase + done) >> 5;
            const uint64_t wb = (bbase + done) >> 5;
            __m512i alo = _mm512_loadu_si512(a + wa);
            __m512i ahi = _mm512_loadu_si512(a + wa + 1);
            __m512i blo = _mm512_loadu_si512(b + wb);
            __m512i bhi = _mm512_loadu_si512(b + wb + 1);
            __m512i va = _mm512_or_si512(
                _mm512_srl_epi64(alo, sha),
                _mm512_sll_epi64(_mm512_slli_epi64(ahi, 1), cba));
            __m512i vb = _mm512_or_si512(
                _mm512_srl_epi64(blo, shb),
                _mm512_sll_epi64(_mm512_slli_epi64(bhi, 1), cbb));
            __m512i x = _mm512_xor_si512(va, vb);
            words_compared += 8;
            __mmask8 ne = _mm512_test_epi64_mask(x, x);
            if (ne != 0) {
                uint32_t lane = static_cast<uint32_t>(
                    std::countr_zero(static_cast<uint32_t>(ne)));
                alignas(64) uint64_t lanes[8];
                _mm512_store_si512(lanes, x);
                uint32_t diff = static_cast<uint32_t>(
                                    std::countr_zero(lanes[lane])) >> 1;
                return done + lane * 32 + diff;
            }
            done += 256;
        }
    }
    return done + matchRunPacked(a, abase + done, b, bbase + done,
                                 span - done, words_compared);
}

#endif // MG_SIMD_X86

#if defined(MG_SIMD_NEON)

/** NEON/ASIMD: two 32-base lanes (64 bases) per step, SWAR tail. */
uint32_t
runNeon(const uint64_t* a, uint64_t abase, const uint64_t* b,
        uint64_t bbase, uint32_t span, uint64_t& words_compared)
{
    uint32_t done = 0;
    if (span >= 64) {
        // vshlq_u64 shifts left by positive counts and right by negative
        // ones, so both halves of the shift-carry use the same intrinsic.
        const int64x2_t sra =
            vdupq_n_s64(-static_cast<int64_t>((abase & 31u) << 1));
        const int64x2_t sla =
            vdupq_n_s64(static_cast<int64_t>(63u - ((abase & 31u) << 1)));
        const int64x2_t srb =
            vdupq_n_s64(-static_cast<int64_t>((bbase & 31u) << 1));
        const int64x2_t slb =
            vdupq_n_s64(static_cast<int64_t>(63u - ((bbase & 31u) << 1)));
        const int64x2_t one = vdupq_n_s64(1);
        while (span - done >= 64) {
            const uint64_t wa = (abase + done) >> 5;
            const uint64_t wb = (bbase + done) >> 5;
            uint64x2_t va = vorrq_u64(
                vshlq_u64(vld1q_u64(a + wa), sra),
                vshlq_u64(vshlq_u64(vld1q_u64(a + wa + 1), one), sla));
            uint64x2_t vb = vorrq_u64(
                vshlq_u64(vld1q_u64(b + wb), srb),
                vshlq_u64(vshlq_u64(vld1q_u64(b + wb + 1), one), slb));
            uint64x2_t x = veorq_u64(va, vb);
            words_compared += 2;
            uint64_t lane0 = vgetq_lane_u64(x, 0);
            uint64_t lane1 = vgetq_lane_u64(x, 1);
            if (lane0 != 0) {
                return done +
                       (static_cast<uint32_t>(std::countr_zero(lane0)) >>
                        1);
            }
            if (lane1 != 0) {
                return done + 32 +
                       (static_cast<uint32_t>(std::countr_zero(lane1)) >>
                        1);
            }
            done += 64;
        }
    }
    return done + matchRunPacked(a, abase + done, b, bbase + done,
                                 span - done, words_compared);
}

#endif // MG_SIMD_NEON

CpuFeatures
probeCpu()
{
    CpuFeatures f;
#if defined(MG_SIMD_X86)
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.avx512bw = __builtin_cpu_supports("avx512f") != 0 &&
                 __builtin_cpu_supports("avx512bw") != 0;
#elif defined(MG_SIMD_NEON)
#if defined(__linux__) && defined(HWCAP_ASIMD)
    f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
    f.neon = true; // ASIMD is architecturally baseline on AArch64
#endif
#endif
    return f;
}

} // namespace

const char*
kernelVariantName(KernelVariant variant)
{
    switch (variant) {
      case KernelVariant::Scalar: return "scalar";
      case KernelVariant::Swar: return "swar";
      case KernelVariant::Simd: return "simd";
      case KernelVariant::Auto: return "auto";
    }
    return "?";
}

bool
parseKernelVariant(std::string_view name, KernelVariant& out)
{
    for (KernelVariant v : { KernelVariant::Scalar, KernelVariant::Swar,
                             KernelVariant::Simd, KernelVariant::Auto }) {
        if (name == kernelVariantName(v)) {
            out = v;
            return true;
        }
    }
    return false;
}

const char*
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::None: return "none";
      case SimdLevel::Neon: return "neon";
      case SimdLevel::Avx2: return "avx2";
      case SimdLevel::Avx512bw: return "avx512bw";
    }
    return "?";
}

std::string
CpuFeatures::summary() const
{
    std::string out;
    auto append = [&](const char* name) {
        if (!out.empty()) {
            out += '+';
        }
        out += name;
    };
    if (avx2) {
        append("avx2");
    }
    if (avx512bw) {
        append("avx512bw");
    }
    if (neon) {
        append("neon");
    }
    if (out.empty()) {
        out = "swar64"; // no wide ISA: the 64-bit SWAR kernel is the top
    }
    return out;
}

const CpuFeatures&
cpuFeatures()
{
    static const CpuFeatures features = probeCpu();
    return features;
}

SimdLevel
bestSimdLevel()
{
    const CpuFeatures& f = cpuFeatures();
    if (f.avx512bw) {
        return SimdLevel::Avx512bw;
    }
    if (f.avx2) {
        return SimdLevel::Avx2;
    }
    if (f.neon) {
        return SimdLevel::Neon;
    }
    return SimdLevel::None;
}

MatchRunFn
matchRunForLevel(SimdLevel level)
{
    switch (level) {
      case SimdLevel::None:
        return &runSwar;
      case SimdLevel::Neon:
#if defined(MG_SIMD_NEON)
        return &runNeon;
#else
        return nullptr;
#endif
      case SimdLevel::Avx2:
#if defined(MG_SIMD_X86)
        return &runAvx2;
#else
        return nullptr;
#endif
      case SimdLevel::Avx512bw:
#if defined(MG_SIMD_X86)
        return &runAvx512;
#else
        return nullptr;
#endif
    }
    return nullptr;
}

ResolvedKernel
resolveKernel(KernelVariant requested)
{
    ResolvedKernel r;
    r.requested = requested;
    switch (requested) {
      case KernelVariant::Scalar:
        r.effective = KernelVariant::Scalar;
        r.fn = &runScalar;
        return r;
      case KernelVariant::Swar:
        r.effective = KernelVariant::Swar;
        r.fn = &runSwar;
        return r;
      case KernelVariant::Simd:
      case KernelVariant::Auto:
        break;
    }
    const SimdLevel level = bestSimdLevel();
    MatchRunFn fn =
        level == SimdLevel::None ? nullptr : matchRunForLevel(level);
    if (fn == nullptr) {
        // No wide ISA on this CPU (or no implementation in this build):
        // degrade to SWAR.  An explicit Simd request earns one warning per
        // process; Auto degrades silently — that is its contract.
        if (requested == KernelVariant::Simd) {
            static std::once_flag warned;
            std::call_once(warned, [] {
                std::fprintf(stderr,
                             "mg: kernel 'simd' requested but no wide "
                             "SIMD ISA is available (cpu: %s); falling "
                             "back to 'swar'\n",
                             cpuFeatures().summary().c_str());
            });
        }
        r.effective = KernelVariant::Swar;
        r.level = SimdLevel::None;
        r.fn = &runSwar;
        return r;
    }
    r.effective = KernelVariant::Simd;
    r.level = level;
    r.fn = fn;
    return r;
}

} // namespace mg::util
