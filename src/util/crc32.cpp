#include "util/crc32.h"

#include <array>

namespace mg::util {

namespace {

constexpr std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = makeCrcTable();

} // namespace

void
Crc32::update(const void* data, size_t size)
{
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    uint32_t c = state_;
    for (size_t i = 0; i < size; ++i) {
        c = kCrcTable[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    }
    state_ = c;
}

uint32_t
crc32(const void* data, size_t size)
{
    Crc32 crc;
    crc.update(data, size);
    return crc.value();
}

} // namespace mg::util
