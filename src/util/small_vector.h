/**
 * @file
 * SmallVector<T, N>: a vector with N elements of inline storage that spills
 * to the heap only when it grows past N.  Built for the extension kernel's
 * per-walk state (paths, mismatch offsets), where typical sizes are a
 * handful of elements and the paper shows heap traffic dominating the hot
 * loop: with inline storage the DFS branch copies become plain memcpys and
 * the steady-state extend loop performs zero allocations.
 *
 * Restricted to trivially copyable element types — exactly what the mapping
 * kernel stores (Handle, uint32_t) — which keeps copies/moves memcpy-fast
 * and the implementation small enough to audit.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <vector>

#include "util/common.h"

namespace mg::util {

template <typename T, size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector is restricted to trivially copyable types");
    static_assert(N > 0, "inline capacity must be non-zero");

  public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    SmallVector() = default;

    SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

    SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

    SmallVector(SmallVector&& other) noexcept { moveFrom(std::move(other)); }

    SmallVector&
    operator=(const SmallVector& other)
    {
        if (this != &other) {
            assign(other.begin(), other.end());
        }
        return *this;
    }

    SmallVector&
    operator=(SmallVector&& other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            moveFrom(std::move(other));
        }
        return *this;
    }

    SmallVector&
    operator=(std::initializer_list<T> init)
    {
        assign(init.begin(), init.end());
        return *this;
    }

    ~SmallVector() { releaseHeap(); }

    size_t size() const { return size_; }
    size_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }
    /** True while elements live in the inline buffer (diagnostics/tests). */
    bool inlined() const { return data_ == inlineData(); }

    T* data() { return data_; }
    const T* data() const { return data_; }
    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T& operator[](size_t i) { return data_[i]; }
    const T& operator[](size_t i) const { return data_[i]; }
    T& front() { return data_[0]; }
    const T& front() const { return data_[0]; }
    T& back() { return data_[size_ - 1]; }
    const T& back() const { return data_[size_ - 1]; }

    void
    push_back(const T& value)
    {
        if (size_ == capacity_) {
            grow(capacity_ * 2);
        }
        data_[size_++] = value;
    }

    void pop_back() { --size_; }

    /** Drop all elements; keeps the current (possibly heap) capacity. */
    void clear() { size_ = 0; }

    void
    reserve(size_t capacity)
    {
        if (capacity > capacity_) {
            grow(capacity);
        }
    }

    /** Shrink (no-op past size); never default-constructs garbage reads. */
    void
    resize(size_t size)
    {
        if (size > size_) {
            reserve(size);
            std::memset(static_cast<void*>(data_ + size_), 0,
                        (size - size_) * sizeof(T));
        }
        size_ = size;
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        size_ = 0;
        append(first, last);
    }

    template <typename It>
    void
    append(It first, It last)
    {
        size_t count = static_cast<size_t>(std::distance(first, last));
        reserve(size_ + count);
        for (; first != last; ++first) {
            data_[size_++] = *first;
        }
    }

    /** vector-style insert, supported at the end only (the kernel's use). */
    template <typename It>
    void
    insert(const_iterator pos, It first, It last)
    {
        MG_ASSERT(pos == end());
        append(first, last);
    }

    friend bool
    operator==(const SmallVector& a, const SmallVector& b)
    {
        return a.size_ == b.size_ &&
               std::equal(a.begin(), a.end(), b.begin());
    }

    friend bool
    operator!=(const SmallVector& a, const SmallVector& b)
    {
        return !(a == b);
    }

    friend bool
    operator<(const SmallVector& a, const SmallVector& b)
    {
        return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                            b.end());
    }

  private:
    T* inlineData() { return reinterpret_cast<T*>(inline_); }
    const T* inlineData() const
    {
        return reinterpret_cast<const T*>(inline_);
    }

    void
    releaseHeap()
    {
        if (data_ != inlineData()) {
            delete[] reinterpret_cast<std::byte*>(data_);
            data_ = inlineData();
            capacity_ = N;
        }
    }

    void
    moveFrom(SmallVector&& other) noexcept
    {
        if (other.data_ != other.inlineData()) {
            // Steal the heap buffer: O(1), iterators into it stay valid.
            data_ = other.data_;
            capacity_ = other.capacity_;
            size_ = other.size_;
            other.data_ = other.inlineData();
            other.capacity_ = N;
            other.size_ = 0;
        } else {
            data_ = inlineData();
            capacity_ = N;
            size_ = other.size_;
            std::memcpy(static_cast<void*>(data_), other.data_,
                        size_ * sizeof(T));
            other.size_ = 0;
        }
    }

    void
    grow(size_t capacity)
    {
        capacity = std::max(capacity, size_ + 1);
        T* fresh = reinterpret_cast<T*>(new std::byte[capacity * sizeof(T)]);
        std::memcpy(static_cast<void*>(fresh), data_, size_ * sizeof(T));
        releaseHeap();
        data_ = fresh;
        capacity_ = capacity;
    }

    alignas(T) std::byte inline_[N * sizeof(T)];
    T* data_ = inlineData();
    size_t size_ = 0;
    size_t capacity_ = N;
};

/** Mixed comparisons with std::vector (tests and call sites interoperate). */
template <typename T, size_t N>
bool
operator==(const SmallVector<T, N>& a, const std::vector<T>& b)
{
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

template <typename T, size_t N>
bool
operator==(const std::vector<T>& a, const SmallVector<T, N>& b)
{
    return b == a;
}

} // namespace mg::util
