#include "util/status.h"

namespace mg::util {

const char*
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::InvalidArgument:
        return "invalid-argument";
      case StatusCode::Truncated:
        return "truncated";
      case StatusCode::Corrupt:
        return "corrupt";
      case StatusCode::ChecksumMismatch:
        return "checksum-mismatch";
      case StatusCode::IoError:
        return "io-error";
      case StatusCode::FaultInjected:
        return "fault-injected";
      case StatusCode::ResourceExhausted:
        return "resource-exhausted";
      case StatusCode::Internal:
        return "internal";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    std::string out = statusCodeName(code);
    out += ": ";
    out += message;
    if (!file.empty() || !section.empty()) {
        out += " [";
        bool first = true;
        if (!file.empty()) {
            out += "file=";
            out += file;
            first = false;
        }
        if (!section.empty()) {
            out += first ? "section=" : " section=";
            out += section;
            first = false;
        }
        out += first ? "offset=" : " offset=";
        out += std::to_string(offset);
        out += "]";
    }
    return out;
}

StatusError::StatusError(Status status)
    : Error(status.toString()), status_(std::move(status))
{}

void
throwStatus(Status status)
{
    MG_ASSERT(!status.ok());
    throw StatusError(std::move(status));
}

} // namespace mg::util
