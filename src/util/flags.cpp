#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/str.h"

namespace mg::util {

Flags&
Flags::define(const std::string& name, const std::string& default_value,
              const std::string& help)
{
    MG_ASSERT(!entries_.count(name));
    entries_[name] = Entry{default_value, default_value, help};
    order_.push_back(name);
    return *this;
}

bool
Flags::parse(int argc, const char* const* argv)
{
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            name = body;
            auto it = entries_.find(name);
            require(it != entries_.end(), program_, ": unknown flag --",
                    name);
            // Boolean-style flags may omit the value; others consume the
            // next argument.
            if (it->second.defaultValue == "true" ||
                it->second.defaultValue == "false") {
                value = "true";
            } else {
                require(i + 1 < argc, program_, ": flag --", name,
                        " needs a value");
                value = argv[++i];
            }
        }
        auto it = entries_.find(name);
        require(it != entries_.end(), program_, ": unknown flag --", name);
        it->second.value = value;
    }
    return true;
}

const Flags::Entry&
Flags::entry(const std::string& name) const
{
    auto it = entries_.find(name);
    MG_ASSERT(it != entries_.end());
    return it->second;
}

const std::string&
Flags::str(const std::string& name) const
{
    return entry(name).value;
}

int64_t
Flags::integer(const std::string& name) const
{
    const std::string& v = entry(name).value;
    char* end = nullptr;
    int64_t out = std::strtoll(v.c_str(), &end, 10);
    require(end && *end == '\0' && !v.empty(), program_, ": flag --", name,
            " expects an integer, got '", v, "'");
    return out;
}

double
Flags::real(const std::string& name) const
{
    const std::string& v = entry(name).value;
    char* end = nullptr;
    double out = std::strtod(v.c_str(), &end);
    require(end && *end == '\0' && !v.empty(), program_, ": flag --", name,
            " expects a number, got '", v, "'");
    return out;
}

bool
Flags::boolean(const std::string& name) const
{
    const std::string& v = entry(name).value;
    if (v == "true" || v == "1") {
        return true;
    }
    if (v == "false" || v == "0") {
        return false;
    }
    throw Error(cat(program_, ": flag --", name,
                    " expects true/false, got '", v, "'"));
}

std::string
Flags::usage() const
{
    std::string out = "usage: " + program_ + " [flags]\n";
    for (const auto& name : order_) {
        const Entry& e = entries_.at(name);
        out += "  --" + padRight(name + " (default: " + e.defaultValue + ")",
                                 40) + " " + e.help + "\n";
    }
    return out;
}

} // namespace mg::util
