/**
 * @file
 * Small string helpers used by the CLI flag parser, the CSV writer, and the
 * benchmark harness table printers.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mg::util {

/** Split s on the given delimiter; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Join parts with the given separator. */
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/** True iff s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Strip leading/trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Format a double with the given number of decimal places. */
std::string fixed(double value, int decimals);

/** Right-pad or left-pad a string to a column width. */
std::string padRight(std::string_view s, size_t width);
std::string padLeft(std::string_view s, size_t width);

/** Human-readable count, e.g. 1.2e6 -> "1.20e+06" style scientific. */
std::string sci(double value, int decimals = 2);

} // namespace mg::util
