#include "util/dna.h"

#include <algorithm>
#include <cctype>

#include "util/common.h"

namespace mg::util {

namespace {

constexpr char kBases[kDnaAlphabetSize] = { 'A', 'C', 'G', 'T' };

constexpr uint8_t kBadCode = 0xff;

struct CodeTable
{
    uint8_t table[256];
    constexpr CodeTable() : table()
    {
        for (int i = 0; i < 256; ++i) {
            table[i] = kBadCode;
        }
        table['A'] = 0;
        table['C'] = 1;
        table['G'] = 2;
        table['T'] = 3;
    }
};

constexpr CodeTable kCodeTable;

/** acgtACGT -> code, everything else -> 0 ('A'): the canonicalization. */
struct CanonCodeTable
{
    uint8_t table[256];
    constexpr CanonCodeTable() : table()
    {
        for (int i = 0; i < 256; ++i) {
            table[i] = 0;
        }
        table['A'] = table['a'] = 0;
        table['C'] = table['c'] = 1;
        table['G'] = table['g'] = 2;
        table['T'] = table['t'] = 3;
    }
};

constexpr CanonCodeTable kCanonCodeTable;

/** True iff the character packs losslessly (case-insensitive ACGT). */
constexpr bool
isStrictBase(char c)
{
    return c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'a' ||
           c == 'c' || c == 'g' || c == 't';
}

} // namespace

uint8_t
baseCode(char base)
{
    return kCodeTable.table[static_cast<uint8_t>(base)];
}

char
codeBase(uint8_t code)
{
    MG_ASSERT(code < kDnaAlphabetSize);
    return kBases[code];
}

char
complementBase(char base)
{
    uint8_t code = baseCode(base);
    MG_ASSERT(code != kBadCode);
    return kBases[3 - code];
}

bool
isDna(std::string_view seq)
{
    return std::all_of(seq.begin(), seq.end(), [](char c) {
        return baseCode(c) != kBadCode;
    });
}

std::string
reverseComplement(std::string_view seq)
{
    std::string out;
    reverseComplementInto(seq, out);
    return out;
}

void
reverseComplementInto(std::string_view seq, std::string& out)
{
    out.resize(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        out[i] = complementBase(seq[seq.size() - 1 - i]);
    }
}

uint8_t
canonicalCode(char base)
{
    return kCanonCodeTable.table[static_cast<uint8_t>(base)];
}

SanitizeCounts
sanitizeDna(std::string& seq)
{
    SanitizeCounts counts;
    for (char& c : seq) {
        if (isStrictBase(c)) {
            c = kBases[kCanonCodeTable.table[static_cast<uint8_t>(c)]];
        } else if (std::isalpha(static_cast<unsigned char>(c))) {
            c = 'A';
            ++counts.ambiguous;
        } else {
            c = 'A';
            ++counts.invalid;
        }
    }
    return counts;
}

size_t
packAsciiInto(std::string_view seq, uint64_t* dst, uint64_t p)
{
    size_t sanitized = 0;
    uint64_t chunk = 0;
    uint32_t filled = 0;
    uint64_t at = p;
    for (char c : seq) {
        if (!isStrictBase(c)) {
            ++sanitized;
        }
        chunk |= static_cast<uint64_t>(
                     kCanonCodeTable.table[static_cast<uint8_t>(c)])
                 << (2 * filled);
        if (++filled == kBasesPerWord) {
            writeChunk(dst, at, chunk, kBasesPerWord);
            at += kBasesPerWord;
            chunk = 0;
            filled = 0;
        }
    }
    if (filled > 0) {
        writeChunk(dst, at, chunk, filled);
    }
    return sanitized;
}

void
reverseComplementPacked(const uint64_t* src, uint64_t len, uint64_t* dst)
{
    if (len == 0) {
        return;
    }
    const uint64_t W = packedDataWords(len);
    // The reversed stream starts with the complement of the tail word's
    // zero padding ('T' runs); dropping exactly that phase aligns base 0.
    const uint32_t sh =
        2 * ((kBasesPerWord - (static_cast<uint32_t>(len) & 31u)) & 31u);
    auto reversed = [&](uint64_t i) {
        return i < W ? rcWord(src[W - 1 - i]) : uint64_t{0};
    };
    for (uint64_t j = 0; j < W; ++j) {
        uint64_t w = reversed(j) >> sh;
        if (sh != 0) {
            w |= reversed(j + 1) << (64 - sh);
        }
        dst[j] = w;
    }
}

void
copyPackedInto(uint64_t* dst, uint64_t dstBase, const uint64_t* src,
               uint64_t len)
{
    for (uint64_t done = 0; done < len; done += kBasesPerWord) {
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(kBasesPerWord, len - done));
        writeChunk(dst, dstBase + done, src[done >> 5], n);
    }
}

std::string
unpackPacked(const uint64_t* words, uint64_t p, uint64_t len)
{
    std::string out;
    out.resize(len);
    uint64_t i = 0;
    while (i < len) {
        uint64_t chunk = chunk32(words, p + i);
        uint64_t n = std::min<uint64_t>(kBasesPerWord, len - i);
        for (uint64_t j = 0; j < n; ++j) {
            out[i + j] = kBases[chunk & 3];
            chunk >>= 2;
        }
        i += n;
    }
    return out;
}

uint64_t
hash64(uint64_t key)
{
    // SplitMix64 finalizer: bijective, well mixed, cheap.
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
}

uint64_t
packKmer(std::string_view seq, int k)
{
    MG_ASSERT(k >= 1 && k <= 32);
    MG_ASSERT(static_cast<int>(seq.size()) >= k);
    uint64_t packed = 0;
    for (int i = 0; i < k; ++i) {
        uint8_t code = baseCode(seq[i]);
        MG_ASSERT(code != kBadCode);
        packed = (packed << 2) | code;
    }
    return packed;
}

std::string
unpackKmer(uint64_t kmer, int k)
{
    MG_ASSERT(k >= 1 && k <= 32);
    std::string out(k, 'A');
    for (int i = k - 1; i >= 0; --i) {
        out[i] = kBases[kmer & 3];
        kmer >>= 2;
    }
    return out;
}

uint64_t
reverseComplementKmer(uint64_t kmer, int k)
{
    uint64_t out = 0;
    for (int i = 0; i < k; ++i) {
        out = (out << 2) | (3 - (kmer & 3));
        kmer >>= 2;
    }
    return out;
}

} // namespace mg::util
