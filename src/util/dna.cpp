#include "util/dna.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstring>

#include "util/common.h"

namespace mg::util {

namespace {

constexpr char kBases[kDnaAlphabetSize] = { 'A', 'C', 'G', 'T' };

constexpr uint8_t kBadCode = 0xff;

struct CodeTable
{
    uint8_t table[256];
    constexpr CodeTable() : table()
    {
        for (int i = 0; i < 256; ++i) {
            table[i] = kBadCode;
        }
        table['A'] = 0;
        table['C'] = 1;
        table['G'] = 2;
        table['T'] = 3;
    }
};

constexpr CodeTable kCodeTable;

/** acgtACGT -> code, everything else -> 0 ('A'): the canonicalization. */
struct CanonCodeTable
{
    uint8_t table[256];
    constexpr CanonCodeTable() : table()
    {
        for (int i = 0; i < 256; ++i) {
            table[i] = 0;
        }
        table['A'] = table['a'] = 0;
        table['C'] = table['c'] = 1;
        table['G'] = table['g'] = 2;
        table['T'] = table['t'] = 3;
    }
};

constexpr CanonCodeTable kCanonCodeTable;

/** True iff the character packs losslessly (case-insensitive ACGT). */
constexpr bool
isStrictBase(char c)
{
    return c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'a' ||
           c == 'c' || c == 'g' || c == 't';
}

constexpr uint64_t kLoBytes = 0x0101010101010101ull;
constexpr uint64_t kHiBytes = 0x8080808080808080ull;

/**
 * 0x80 in every byte of `w` equal to `c`, 0 elsewhere.  Exact per-byte
 * equality: forcing bit 7 before the decrement keeps each byte's borrow
 * local, unlike the classic `(t - lo) & ~t & hi` zero test whose borrow
 * ripples across a zero byte and misclassifies a neighbouring 0x01
 * (e.g. 'b' right after a genuine 'c' match).
 */
inline uint64_t
eqBytes(uint64_t w, char c)
{
    const uint64_t t = w ^ (kLoBytes * static_cast<uint8_t>(c));
    return ~((t | kHiBytes) - kLoBytes) & ~t & kHiBytes;
}

} // namespace

uint8_t
baseCode(char base)
{
    return kCodeTable.table[static_cast<uint8_t>(base)];
}

char
codeBase(uint8_t code)
{
    MG_ASSERT(code < kDnaAlphabetSize);
    return kBases[code];
}

char
complementBase(char base)
{
    uint8_t code = baseCode(base);
    MG_ASSERT(code != kBadCode);
    return kBases[3 - code];
}

bool
isDna(std::string_view seq)
{
    return std::all_of(seq.begin(), seq.end(), [](char c) {
        return baseCode(c) != kBadCode;
    });
}

std::string
reverseComplement(std::string_view seq)
{
    std::string out;
    reverseComplementInto(seq, out);
    return out;
}

void
reverseComplementInto(std::string_view seq, std::string& out)
{
    out.resize(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        out[i] = complementBase(seq[seq.size() - 1 - i]);
    }
}

uint8_t
canonicalCode(char base)
{
    return kCanonCodeTable.table[static_cast<uint8_t>(base)];
}

SanitizeCounts
sanitizeDna(std::string& seq)
{
    SanitizeCounts counts;
    for (char& c : seq) {
        if (isStrictBase(c)) {
            c = kBases[kCanonCodeTable.table[static_cast<uint8_t>(c)]];
        } else if (std::isalpha(static_cast<unsigned char>(c))) {
            c = 'A';
            ++counts.ambiguous;
        } else {
            c = 'A';
            ++counts.invalid;
        }
    }
    return counts;
}

size_t
packAsciiInto(std::string_view seq, uint64_t* dst, uint64_t p)
{
    // SWAR bulk pack: classify eight ASCII bases per 64-bit step instead
    // of one table lookup + validity chain per character.  Fold to
    // lowercase (only 'A'..'a' etc. collide, by construction of ASCII),
    // build per-byte equality masks, derive the 2-bit code directly —
    // low bit set for C/T, high bit set for G/T, everything non-ACGT
    // canonicalized to A exactly like the table — then compact the
    // byte-spaced codes into 16 contiguous bits with three shift/mask
    // steps.  Four groups fill one 32-base packed word per writeChunk.
    const char* s = seq.data();
    size_t n = seq.size();
    size_t sanitized = 0;
    uint64_t at = p;
    while (n >= kBasesPerWord) {
        uint64_t chunk = 0;
        for (uint32_t g = 0; g < 4; ++g) {
            uint64_t w;
            std::memcpy(&w, s + 8 * g, 8);
            w |= kLoBytes * 0x20u; // lowercase fold
            const uint64_t is_c = eqBytes(w, 'c');
            const uint64_t is_g = eqBytes(w, 'g');
            const uint64_t is_t = eqBytes(w, 't');
            const uint64_t valid = eqBytes(w, 'a') | is_c | is_g | is_t;
            sanitized += 8 - static_cast<size_t>(std::popcount(valid));
            uint64_t codes = ((is_c | is_t) >> 7) | ((is_g | is_t) >> 6);
            codes = (codes | (codes >> 6)) & 0x000F000F000F000Full;
            codes = (codes | (codes >> 12)) & 0x000000FF000000FFull;
            codes = (codes | (codes >> 24)) & 0xFFFFull;
            chunk |= codes << (16 * g);
        }
        writeChunk(dst, at, chunk, kBasesPerWord);
        at += kBasesPerWord;
        s += kBasesPerWord;
        n -= kBasesPerWord;
    }
    // Sub-word tail: the original per-character table path.
    uint64_t chunk = 0;
    uint32_t filled = 0;
    for (size_t i = 0; i < n; ++i) {
        const char c = s[i];
        if (!isStrictBase(c)) {
            ++sanitized;
        }
        chunk |= static_cast<uint64_t>(
                     kCanonCodeTable.table[static_cast<uint8_t>(c)])
                 << (2 * filled);
        ++filled;
    }
    if (filled > 0) {
        writeChunk(dst, at, chunk, filled);
    }
    return sanitized;
}

void
reverseComplementPacked(const uint64_t* src, uint64_t len, uint64_t* dst)
{
    if (len == 0) {
        return;
    }
    const uint64_t W = packedDataWords(len);
    // The reversed stream starts with the complement of the tail word's
    // zero padding ('T' runs); dropping exactly that phase aligns base 0.
    const uint32_t sh =
        2 * ((kBasesPerWord - (static_cast<uint32_t>(len) & 31u)) & 31u);
    auto reversed = [&](uint64_t i) {
        return i < W ? rcWord(src[W - 1 - i]) : uint64_t{0};
    };
    for (uint64_t j = 0; j < W; ++j) {
        uint64_t w = reversed(j) >> sh;
        if (sh != 0) {
            w |= reversed(j + 1) << (64 - sh);
        }
        dst[j] = w;
    }
}

void
copyPackedInto(uint64_t* dst, uint64_t dstBase, const uint64_t* src,
               uint64_t len)
{
    for (uint64_t done = 0; done < len; done += kBasesPerWord) {
        uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(kBasesPerWord, len - done));
        writeChunk(dst, dstBase + done, src[done >> 5], n);
    }
}

std::string
unpackPacked(const uint64_t* words, uint64_t p, uint64_t len)
{
    std::string out;
    out.resize(len);
    uint64_t i = 0;
    while (i < len) {
        uint64_t chunk = chunk32(words, p + i);
        uint64_t n = std::min<uint64_t>(kBasesPerWord, len - i);
        for (uint64_t j = 0; j < n; ++j) {
            out[i + j] = kBases[chunk & 3];
            chunk >>= 2;
        }
        i += n;
    }
    return out;
}

uint64_t
packKmer(std::string_view seq, int k)
{
    MG_ASSERT(k >= 1 && k <= 32);
    MG_ASSERT(static_cast<int>(seq.size()) >= k);
    uint64_t packed = 0;
    for (int i = 0; i < k; ++i) {
        uint8_t code = baseCode(seq[i]);
        MG_ASSERT(code != kBadCode);
        packed = (packed << 2) | code;
    }
    return packed;
}

std::string
unpackKmer(uint64_t kmer, int k)
{
    MG_ASSERT(k >= 1 && k <= 32);
    std::string out(k, 'A');
    for (int i = k - 1; i >= 0; --i) {
        out[i] = kBases[kmer & 3];
        kmer >>= 2;
    }
    return out;
}

uint64_t
reverseComplementKmer(uint64_t kmer, int k)
{
    uint64_t out = 0;
    for (int i = 0; i < k; ++i) {
        out = (out << 2) | (3 - (kmer & 3));
        kmer >>= 2;
    }
    return out;
}

} // namespace mg::util
