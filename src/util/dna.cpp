#include "util/dna.h"

#include <algorithm>

#include "util/common.h"

namespace mg::util {

namespace {

constexpr char kBases[kDnaAlphabetSize] = { 'A', 'C', 'G', 'T' };

constexpr uint8_t kBadCode = 0xff;

struct CodeTable
{
    uint8_t table[256];
    constexpr CodeTable() : table()
    {
        for (int i = 0; i < 256; ++i) {
            table[i] = kBadCode;
        }
        table['A'] = 0;
        table['C'] = 1;
        table['G'] = 2;
        table['T'] = 3;
    }
};

constexpr CodeTable kCodeTable;

} // namespace

uint8_t
baseCode(char base)
{
    return kCodeTable.table[static_cast<uint8_t>(base)];
}

char
codeBase(uint8_t code)
{
    MG_ASSERT(code < kDnaAlphabetSize);
    return kBases[code];
}

char
complementBase(char base)
{
    uint8_t code = baseCode(base);
    MG_ASSERT(code != kBadCode);
    return kBases[3 - code];
}

bool
isDna(std::string_view seq)
{
    return std::all_of(seq.begin(), seq.end(), [](char c) {
        return baseCode(c) != kBadCode;
    });
}

std::string
reverseComplement(std::string_view seq)
{
    std::string out;
    reverseComplementInto(seq, out);
    return out;
}

void
reverseComplementInto(std::string_view seq, std::string& out)
{
    out.resize(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
        out[i] = complementBase(seq[seq.size() - 1 - i]);
    }
}

uint64_t
hash64(uint64_t key)
{
    // SplitMix64 finalizer: bijective, well mixed, cheap.
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
}

uint64_t
packKmer(std::string_view seq, int k)
{
    MG_ASSERT(k >= 1 && k <= 32);
    MG_ASSERT(static_cast<int>(seq.size()) >= k);
    uint64_t packed = 0;
    for (int i = 0; i < k; ++i) {
        uint8_t code = baseCode(seq[i]);
        MG_ASSERT(code != kBadCode);
        packed = (packed << 2) | code;
    }
    return packed;
}

std::string
unpackKmer(uint64_t kmer, int k)
{
    MG_ASSERT(k >= 1 && k <= 32);
    std::string out(k, 'A');
    for (int i = k - 1; i >= 0; --i) {
        out[i] = kBases[kmer & 3];
        kmer >>= 2;
    }
    return out;
}

uint64_t
reverseComplementKmer(uint64_t kmer, int k)
{
    uint64_t out = 0;
    for (int i = 0; i < k; ++i) {
        out = (out << 2) | (3 - (kmer & 3));
        kmer >>= 2;
    }
    return out;
}

} // namespace mg::util
