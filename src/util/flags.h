/**
 * @file
 * Minimal command-line flag parser for the examples and benchmark
 * harnesses.  Flags are registered with a name, default value, and help
 * text, then parse() consumes "--name value" / "--name=value" pairs and
 * leaves positional arguments behind.  Unknown flags are a user error.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/common.h"

namespace mg::util {

/** Registry of typed command-line flags plus positional arguments. */
class Flags
{
  public:
    /** @param program Name used in the usage banner. */
    explicit Flags(std::string program) : program_(std::move(program)) {}

    /** Register a flag with a default; returns *this for chaining. */
    Flags& define(const std::string& name, const std::string& default_value,
                  const std::string& help);

    /**
     * Parse argv (excluding argv[0]).  Throws mg::util::Error on unknown
     * flags or missing values.  Recognizes --help by printing usage and
     * returning false.
     */
    bool parse(int argc, const char* const* argv);

    /** Typed accessors for a registered flag's value. */
    const std::string& str(const std::string& name) const;
    int64_t integer(const std::string& name) const;
    double real(const std::string& name) const;
    bool boolean(const std::string& name) const;

    /** Positional arguments left after flag parsing. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** Usage text listing all registered flags. */
    std::string usage() const;

  private:
    struct Entry
    {
        std::string value;
        std::string defaultValue;
        std::string help;
    };

    const Entry& entry(const std::string& name) const;

    std::string program_;
    std::map<std::string, Entry> entries_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace mg::util
