/**
 * @file
 * CSV emission.  The paper's artifact stores every experiment result as a
 * .csv consumed by R scripts; our benchmark harnesses keep that convention
 * (stdout tables for humans, optional CSV files for scripting).
 */
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/common.h"

namespace mg::util {

/** Streaming CSV writer with header enforcement. */
class CsvWriter
{
  public:
    /** Open path for writing; throws on failure. */
    CsvWriter(const std::string& path,
              const std::vector<std::string>& header);

    /** Append a row; must match the header width. */
    void row(const std::vector<std::string>& fields);

    /** Flush and close; implicit in the destructor. */
    void close();

  private:
    static std::string escape(const std::string& field);

    std::ofstream out_;
    size_t width_;
};

} // namespace mg::util
