/**
 * @file
 * Runtime-dispatched wide match primitives over the 2-bit packed substrate
 * (util/dna.h).  The extension kernel's innermost operation — "length of
 * the common prefix of two packed base ranges" — exists in four variants:
 *
 *   Scalar  one code compare per base (the property-test oracle)
 *   Swar    64-bit XOR + countr_zero, 32 bases per step (PR 3's kernel)
 *   Simd    AVX-512BW / AVX2 / NEON wide compare, 256 / 128 / 64 bases per
 *           step, falling back to the SWAR loop for the tail
 *   Auto    the best variant this CPU supports (Simd when any wide ISA is
 *           present, Swar otherwise)
 *
 * Every variant returns bit-identical match lengths; only throughput and
 * the `words_compared` instrumentation granularity differ.  The SIMD
 * implementations are compiled with per-function target attributes, so the
 * binary always builds and the choice happens once at runtime via a cached
 * CPU feature probe (`__builtin_cpu_supports` on x86, the architecture
 * baseline on aarch64).  Forcing a variant the machine cannot run degrades
 * to the best available one with a one-time stderr warning — never a
 * crash — so one config file can serve a heterogeneous fleet.
 *
 * Safety contract of the wide loops: both input ranges obey the pad-word
 * invariant (one zero word past the data), and a vector step is taken only
 * while at least a full vector of bases remains, which keeps every lane's
 * shift-carry pair inside data+pad (proof in simd.cpp).
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mg::util {

/** Selectable match-kernel variants (ExtendParams::kernel). */
enum class KernelVariant : uint8_t
{
    Scalar = 0, ///< per-base reference loop (oracle, not a production mode)
    Swar = 1,   ///< 64-bit XOR/countr_zero loop (always available)
    Simd = 2,   ///< widest available vector ISA, SWAR tail
    Auto = 3,   ///< resolve to Simd when available, else Swar
};

/** Stable lower-case name ("scalar", "swar", "simd", "auto"). */
const char* kernelVariantName(KernelVariant variant);

/** Parse a variant name (case-sensitive, the names above). */
bool parseKernelVariant(std::string_view name, KernelVariant& out);

/** Vector ISA levels the Simd variant can resolve to. */
enum class SimdLevel : uint8_t
{
    None = 0,     ///< no wide ISA; Simd degrades to Swar
    Neon = 1,     ///< aarch64 ASIMD, 64 bases per step
    Avx2 = 2,     ///< x86 AVX2, 128 bases per step
    Avx512bw = 3, ///< x86 AVX-512BW, 256 bases per step
};

/** Stable name ("none", "neon", "avx2", "avx512bw"). */
const char* simdLevelName(SimdLevel level);

/** CPU SIMD feature set, probed once per process and cached. */
struct CpuFeatures
{
    bool avx2 = false;
    bool avx512bw = false;
    bool neon = false;

    /** Compact summary for run records: "avx2+avx512bw", "neon", or
     *  "swar64" when no wide ISA is available. */
    std::string summary() const;
};

/** The cached feature probe (first call probes, later calls are free). */
const CpuFeatures& cpuFeatures();

/** Widest level the running CPU supports (None when scalar-64 only). */
SimdLevel bestSimdLevel();

/**
 * Match-run function signature shared by every variant: common-prefix
 * length (up to span) of the packed ranges at a[abase] and b[bbase].
 * `words_compared` counts 32-base chunks examined (vector variants count
 * each lane of a wide compare, so totals stay comparable across kernels).
 */
using MatchRunFn = uint32_t (*)(const uint64_t* a, uint64_t abase,
                                const uint64_t* b, uint64_t bbase,
                                uint32_t span, uint64_t& words_compared);

/**
 * The kernel for one specific ISA level; None returns the SWAR kernel.
 * Returns nullptr when this binary has no implementation for the level
 * (e.g. NEON on an x86 build) — callers fall back down the ladder.
 * Availability on the *running* CPU is the caller's concern (resolveKernel
 * checks it); invoking an unsupported level's kernel is undefined.
 */
MatchRunFn matchRunForLevel(SimdLevel level);

/** A requested kernel choice resolved against the running CPU. */
struct ResolvedKernel
{
    KernelVariant requested = KernelVariant::Auto;
    /** What will actually run (never Auto; Simd only when available). */
    KernelVariant effective = KernelVariant::Swar;
    /** ISA level of the Simd kernel (None unless effective == Simd). */
    SimdLevel level = SimdLevel::None;
    MatchRunFn fn = nullptr;
};

/**
 * Resolve a requested variant to a runnable kernel.  Auto picks Simd when
 * any wide ISA is present, otherwise Swar.  Requesting Simd on a machine
 * with no wide ISA degrades to Swar and warns once per process on stderr;
 * the returned record always names what actually runs.
 */
ResolvedKernel resolveKernel(KernelVariant requested);

} // namespace mg::util
