#include "util/rng.h"

#include <cmath>
#include <string>

#include "util/dna.h"

namespace mg::util {

namespace {

uint64_t
splitMix64(uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitMix64(sm);
    }
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::uniform(uint64_t bound)
{
    MG_ASSERT(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
        uint64_t threshold = (0 - bound) % bound;
        while (low < threshold) {
            m = static_cast<__uint128_t>(next()) * bound;
            low = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    MG_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(
        uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::geometric(double p)
{
    MG_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0) {
        return 0;
    }
    double u = uniformReal();
    // Guard against log(0); uniformReal() < 1 so 1-u > 0.
    return static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
}

char
Rng::randomBase()
{
    return codeBase(static_cast<uint8_t>(uniform(kDnaAlphabetSize)));
}

char
Rng::differentBase(char base)
{
    uint8_t code = baseCode(base);
    MG_ASSERT(code < kDnaAlphabetSize);
    uint8_t other = static_cast<uint8_t>(uniform(kDnaAlphabetSize - 1));
    if (other >= code) {
        ++other;
    }
    return codeBase(other);
}

std::string
Rng::randomDna(size_t length)
{
    std::string seq(length, 'A');
    for (auto& c : seq) {
        c = randomBase();
    }
    return seq;
}

size_t
Rng::weightedIndex(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        MG_ASSERT(w >= 0.0);
        total += w;
    }
    MG_ASSERT(total > 0.0);
    double target = uniformReal() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc) {
            return i;
        }
    }
    return weights.size() - 1;
}

} // namespace mg::util
