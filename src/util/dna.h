/**
 * @file
 * DNA alphabet utilities shared by the graph, indexing, and simulation
 * layers: 2-bit base codes, complementation, reverse complements, and
 * validation.  Bases are the four nucleotides ACGT; the packed code order
 * (A=0, C=1, G=2, T=3) makes complement a simple "3 - code".
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mg::util {

/** Number of distinct DNA bases. */
inline constexpr int kDnaAlphabetSize = 4;

/** Map a base character (upper case ACGT) to its 2-bit code; 0xff if bad. */
uint8_t baseCode(char base);

/** Map a 2-bit code back to its base character. */
char codeBase(uint8_t code);

/** Complement of a single base character (A<->T, C<->G). */
char complementBase(char base);

/** True iff every character of seq is one of ACGT (upper case). */
bool isDna(std::string_view seq);

/** Reverse complement of a DNA string. */
std::string reverseComplement(std::string_view seq);

/**
 * Reverse complement written into a caller-owned buffer (replacing its
 * contents).  The mapping hot path reuses one buffer per thread so the
 * per-read reverse complement costs no allocation once capacity is warm.
 * `seq` must not alias `out`.
 */
void reverseComplementInto(std::string_view seq, std::string& out);

/**
 * Invertible hash over 64-bit keys (Thomas Wang / murmur-style finalizer).
 * Used to order k-mers for minimizer selection so that the lexicographically
 * boring poly-A k-mers do not dominate the index, mirroring the hashed
 * ordering used by real minimizer indexes.
 */
uint64_t hash64(uint64_t key);

/**
 * Pack the k leading bases of seq into a 2-bit integer (k <= 32).
 * Precondition: seq has at least k valid DNA characters.
 */
uint64_t packKmer(std::string_view seq, int k);

/** Unpack a 2-bit packed k-mer back into a string. */
std::string unpackKmer(uint64_t kmer, int k);

/** Reverse complement of a packed k-mer. */
uint64_t reverseComplementKmer(uint64_t kmer, int k);

} // namespace mg::util
