/**
 * @file
 * DNA alphabet utilities shared by the graph, indexing, and simulation
 * layers: 2-bit base codes, complementation, reverse complements,
 * validation, and the packed-word substrate used by the hot kernels.
 * Bases are the four nucleotides ACGT; the packed code order
 * (A=0, C=1, G=2, T=3) makes complement a simple "3 - code".
 *
 * Packed-word layout (the sequence substrate of the mapping kernel):
 * 32 bases per 64-bit word, LSB-first — base i of a word occupies bits
 * [2i, 2i+2).  Unused tail bits of the last word of a sequence are zero
 * ('A' codes); every packed buffer carries one extra zero *padding word*
 * past its data so `chunk32` can read a shift-carry pair at any offset
 * without bounds checks.
 *
 * Non-ACGT canonicalization policy (applied at every ingest boundary —
 * SequenceStore::addNode, FASTQ parsing, minimizer construction, query
 * packing): case-insensitive A/C/G/T map to their upper-case base; every
 * other *letter* (IUPAC ambiguity codes such as N, R, Y, plus U) maps to
 * 'A', and ingest records how many bases were canonicalized this way;
 * non-letter characters are invalid and rejected by ingest.  Hot paths may
 * assume post-ingest sequences are pure ACGT, so a 2-bit code can never
 * silently alias an ambiguous base.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace mg::util {

/** Number of distinct DNA bases. */
inline constexpr int kDnaAlphabetSize = 4;

/** Bases stored per 64-bit packed word. */
inline constexpr uint32_t kBasesPerWord = 32;

/** Map a base character (upper case ACGT) to its 2-bit code; 0xff if bad. */
uint8_t baseCode(char base);

/** Map a 2-bit code back to its base character. */
char codeBase(uint8_t code);

/** Complement of a single base character (A<->T, C<->G). */
char complementBase(char base);

/** True iff every character of seq is one of ACGT (upper case). */
bool isDna(std::string_view seq);

/** Reverse complement of a DNA string. */
std::string reverseComplement(std::string_view seq);

/**
 * Reverse complement written into a caller-owned buffer (replacing its
 * contents).  The mapping hot path reuses one buffer per thread so the
 * per-read reverse complement costs no allocation once capacity is warm.
 * `seq` must not alias `out`.
 */
void reverseComplementInto(std::string_view seq, std::string& out);

// ---------------------------------------------------------------------
// Canonicalization (the non-ACGT policy; see the file comment).

/**
 * Canonical 2-bit code of any character under the sanitization policy:
 * acgtACGT map to their code, everything else (ambiguity letters AND
 * invalid bytes) maps to 0 ('A').  Branch-free table lookup for hot loops
 * that run after ingest validated/counted the input.
 */
uint8_t canonicalCode(char base);

/** Counts reported by sanitizeDna. */
struct SanitizeCounts
{
    /** Letters outside acgtACGT replaced by 'A' (N, IUPAC codes, U...). */
    size_t ambiguous = 0;
    /** Non-letter characters replaced by 'A' (ingest should reject). */
    size_t invalid = 0;
};

/**
 * Canonicalize a sequence in place: lower-case acgt upper-cased (not
 * counted), ambiguous letters replaced by 'A' (counted), non-letters
 * replaced by 'A' (counted separately so callers can reject).
 */
SanitizeCounts sanitizeDna(std::string& seq);

// ---------------------------------------------------------------------
// Packed-word primitives.

/** Data words needed for `bases` packed bases (excludes the pad word). */
inline uint64_t
packedDataWords(uint64_t bases)
{
    return (bases + kBasesPerWord - 1) / kBasesPerWord;
}

/** Words a self-contained packed buffer needs: data plus one pad word. */
inline uint64_t
packedBufferWords(uint64_t bases)
{
    return packedDataWords(bases) + 1;
}

/** 2-bit code stored at base offset `p` of a packed word array. */
inline uint8_t
packedCode(const uint64_t* words, uint64_t p)
{
    return static_cast<uint8_t>(
        (words[p >> 5] >> ((static_cast<uint32_t>(p) & 31u) << 1)) & 3u);
}

/**
 * 32 consecutive bases starting at base offset `p`, LSB-first.  Reads the
 * shift-carry word at index (p>>5)+1, so the array must extend one word
 * past the last data word (the pad-word invariant).
 */
inline uint64_t
chunk32(const uint64_t* words, uint64_t p)
{
    uint64_t wi = p >> 5;
    uint32_t sh = (static_cast<uint32_t>(p) & 31u) << 1;
    // Branchless shift-carry: (hi << 1) << (63 - sh) equals hi << (64 - sh)
    // for sh > 0 and vanishes for sh == 0 (a 64-bit total shift), avoiding
    // both the undefined 64-bit shift and a poorly predicted branch in the
    // innermost kernel.
    return (words[wi] >> sh) | ((words[wi + 1] << 1) << (63 - sh));
}

/** Mask covering the low 2*n bits (n <= 32 bases). */
inline uint64_t
basesMask(uint32_t n)
{
    return n >= kBasesPerWord ? ~uint64_t{0}
                              : (uint64_t{1} << (2 * n)) - 1;
}

/**
 * Write n <= 32 bases (LSB-first in `chunk`) at base offset `p`.  The
 * destination range must be zero (freshly grown buffer); bits are OR-ed
 * in across the word boundary.
 */
inline void
writeChunk(uint64_t* words, uint64_t p, uint64_t chunk, uint32_t n)
{
    chunk &= basesMask(n);
    uint64_t wi = p >> 5;
    uint32_t sh = (static_cast<uint32_t>(p) & 31u) << 1;
    words[wi] |= chunk << sh;
    if (sh != 0) {
        words[wi + 1] |= chunk >> (64 - sh);
    }
}

/**
 * Reverse complement of one full 32-base word: word-wise complement (the
 * 2-bit complement is 3 - code == ~code & 3, so one NOT complements all 32
 * bases) followed by a 2-bit-group reversal (pair swaps + byte swap).
 */
inline uint64_t
rcWord(uint64_t w)
{
    w = ~w;
    w = ((w >> 2) & 0x3333333333333333ull) |
        ((w & 0x3333333333333333ull) << 2);
    w = ((w >> 4) & 0x0f0f0f0f0f0f0f0full) |
        ((w & 0x0f0f0f0f0f0f0f0full) << 4);
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap64(w);
#else
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
        out = (out << 8) | ((w >> (8 * i)) & 0xffu);
    }
    return out;
#endif
}

/**
 * Pack an ASCII sequence into `dst` starting at base offset `p`,
 * canonicalizing as it goes (see the policy above).  The destination
 * range must be zero.  Returns the number of non-acgtACGT characters
 * canonicalized to 'A'.
 */
size_t packAsciiInto(std::string_view seq, uint64_t* dst, uint64_t p);

/**
 * Reverse complement `len` packed bases (starting at base 0 of src) into
 * dst, which must hold packedDataWords(len) words.  src's tail bits
 * beyond len must be zero; dst's will be.  Entirely word-wise: rcWord per
 * word, reversed word order, one shift-carry pass for the tail phase.
 * src and dst must not alias.
 */
void reverseComplementPacked(const uint64_t* src, uint64_t len,
                             uint64_t* dst);

/**
 * Blit `len` packed bases from src (starting at its base 0) into dst at
 * base offset dstBase.  The destination range must be zero.
 */
void copyPackedInto(uint64_t* dst, uint64_t dstBase, const uint64_t* src,
                    uint64_t len);

/** Decode `len` packed bases starting at base offset `p` into a string. */
std::string unpackPacked(const uint64_t* words, uint64_t p, uint64_t len);

/**
 * A borrowed range of packed bases: word array + base offset of element 0
 * + length.  The backing array must satisfy the pad-word invariant.
 */
struct PackedSpan
{
    const uint64_t* words = nullptr;
    uint64_t first = 0;
    uint32_t size = 0;

    uint8_t code(uint32_t i) const { return packedCode(words, first + i); }
    char at(uint32_t i) const { return codeBase(code(i)); }
    std::string str() const { return unpackPacked(words, first, size); }
};

/**
 * SWAR match run: length of the common prefix (up to `span` bases) of the
 * packed ranges starting at a[abase] and b[bbase].  XORs 32-base chunks;
 * equal bases give a zero 2-bit group, so the first mismatching base is
 * countr_zero of the XOR divided by 2.  `words_compared` counts chunk
 * comparisons (bench instrumentation; one add per 32 bases).
 */
inline uint32_t
matchRunPacked(const uint64_t* a, uint64_t abase, const uint64_t* b,
               uint64_t bbase, uint32_t span, uint64_t& words_compared)
{
    uint32_t done = 0;
    while (done < span) {
        uint64_t x = chunk32(a, abase + done) ^ chunk32(b, bbase + done);
        ++words_compared;
        uint32_t lim = span - done;
        if (lim > kBasesPerWord) {
            lim = kBasesPerWord;
        }
        uint32_t diff =
            x != 0 ? static_cast<uint32_t>(std::countr_zero(x)) >> 1
                   : kBasesPerWord;
        if (diff < lim) {
            return done + diff;
        }
        done += lim;
    }
    return span;
}

/**
 * Reference scalar match run over the same packed ranges: one code compare
 * per base.  Bit-identical to matchRunPacked by construction; kept as the
 * property-test oracle and the A/B baseline for the SWAR speedup metric.
 */
inline uint32_t
matchRunScalar(const uint64_t* a, uint64_t abase, const uint64_t* b,
               uint64_t bbase, uint32_t span)
{
    uint32_t i = 0;
    while (i < span &&
           packedCode(a, abase + i) == packedCode(b, bbase + i)) {
        ++i;
    }
    return i;
}

// ---------------------------------------------------------------------
// k-mer packing (MSB-first; independent of the arena layout above).

/**
 * Invertible hash over 64-bit keys (Thomas Wang / murmur-style finalizer).
 * Used to order k-mers for minimizer selection so that the lexicographically
 * boring poly-A k-mers do not dominate the index, mirroring the hashed
 * ordering used by real minimizer indexes — and by the GBWT record cache,
 * which hashes a node handle on every probe of the extension walk (inline
 * so the five arithmetic ops don't hide behind a call).
 */
inline uint64_t
hash64(uint64_t key)
{
    // SplitMix64 finalizer: bijective, well mixed, cheap.
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
}

/**
 * Pack the k leading bases of seq into a 2-bit integer (k <= 32).
 * Precondition: seq has at least k valid DNA characters.
 */
uint64_t packKmer(std::string_view seq, int k);

/** Unpack a 2-bit packed k-mer back into a string. */
std::string unpackKmer(uint64_t kmer, int k);

/** Reverse complement of a packed k-mer. */
uint64_t reverseComplementKmer(uint64_t kmer, int k);

} // namespace mg::util
