/**
 * @file
 * Memory-access tracing interface.  Data-structure hot paths (CachedGBWT
 * probes, record decodes, seed buffers, extension scratch) optionally report
 * the addresses they touch through this interface; the machine-model
 * substrate implements it with a cache-hierarchy simulator to produce the
 * hardware-counter style metrics the paper collects with perf/VTune
 * (Tables IV and V).  A null tracer pointer costs one predictable branch.
 */
#pragma once

#include <cstdint>

namespace mg::util {

/** Receiver of memory-access events from instrumented hot paths. */
class MemTracer
{
  public:
    virtual ~MemTracer() = default;

    /**
     * One logical access of `bytes` bytes starting at `addr`.
     * Implementations split it into cache-line accesses as needed.
     */
    virtual void onAccess(const void* addr, uint32_t bytes, bool write) = 0;

    /** One unit of non-memory work (ALU/branch), for instruction counts. */
    virtual void onWork(uint64_t ops) = 0;
};

/** Convenience guard: trace only when a tracer is attached. */
inline void
traceAccess(MemTracer* tracer, const void* addr, uint32_t bytes,
            bool write = false)
{
    if (tracer) {
        tracer->onAccess(addr, bytes, write);
    }
}

inline void
traceWork(MemTracer* tracer, uint64_t ops)
{
    if (tracer) {
        tracer->onWork(ops);
    }
}

} // namespace mg::util
