#include "util/varint.h"

#include <cstring>

namespace mg::util {

void
putVarint(std::vector<uint8_t>& out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

void
ByteReader::fail(StatusCode code, std::string what) const
{
    Status status;
    status.code = code;
    status.message = std::move(what);
    status.file = std::string(ctxFile_);
    status.section = ctxSection_ ? ctxSection_ : "";
    status.offset = pos_;
    throwStatus(std::move(status));
}

uint64_t
ByteReader::getVarint()
{
    uint64_t value = 0;
    int shift = 0;
    while (true) {
        if (pos_ >= size_) {
            fail(StatusCode::Truncated,
                 cat("varint truncated at offset ", pos_));
        }
        uint8_t byte = data_[pos_++];
        if (shift >= 64) {
            fail(StatusCode::Corrupt,
                 cat("varint too long at offset ", pos_));
        }
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            break;
        }
        shift += 7;
    }
    return value;
}

uint8_t
ByteReader::getByte()
{
    if (pos_ >= size_) {
        fail(StatusCode::Truncated,
             cat("byte read past end at offset ", pos_));
    }
    return data_[pos_++];
}

void
ByteReader::getBytes(void* dst, size_t n)
{
    if (n > size_ - pos_) {
        fail(StatusCode::Truncated,
             cat("raw read of ", n, " bytes past end at offset ", pos_));
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
}

std::string
ByteReader::getString()
{
    uint64_t len = getVarint();
    if (len > size_ - pos_) {
        fail(StatusCode::Truncated,
             cat("string of length ", len, " truncated at offset ", pos_));
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
}

void
ByteReader::seek(size_t pos)
{
    if (pos > size_) {
        fail(StatusCode::InvalidArgument,
             cat("seek past end: ", pos, " > ", size_));
    }
    pos_ = pos;
}

void
ByteWriter::putBytes(const void* src, size_t n)
{
    const uint8_t* p = static_cast<const uint8_t*>(src);
    bytes_.insert(bytes_.end(), p, p + n);
}

void
ByteWriter::putString(const std::string& s)
{
    putVarint(s.size());
    putBytes(s.data(), s.size());
}

} // namespace mg::util
