/**
 * @file
 * Software prefetch helpers for the mapping hot path.  The probe/extend
 * loop's next memory targets (the hashed cache slot, the successor node's
 * compressed record) are computable one step ahead of their use; issuing a
 * prefetch there overlaps the DRAM latency the paper measures as the
 * kernel's bottleneck with the compare work still in flight.  Compiles to
 * nothing on toolchains without the builtin.
 */
#pragma once

#include <cstddef>

namespace mg::util {

/** Read-intent prefetch into all cache levels; safe on any address. */
inline void
prefetchRead(const void* addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, 0, 3);
#else
    (void)addr;
#endif
}

/** Prefetch `bytes` starting at addr, one line per 64 bytes. */
inline void
prefetchSpan(const void* addr, size_t bytes)
{
    const char* p = static_cast<const char*>(addr);
    for (size_t off = 0; off < bytes; off += 64) {
        prefetchRead(p + off);
    }
}

} // namespace mg::util
