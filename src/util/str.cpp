#include "util/str.h"

#include <cctype>
#include <cstdio>

namespace mg::util {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            parts.emplace_back(s.substr(start));
            return parts;
        }
        parts.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string_view
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

std::string
fixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
padRight(std::string_view s, size_t width)
{
    std::string out(s);
    if (out.size() < width) {
        out.append(width - out.size(), ' ');
    }
    return out;
}

std::string
padLeft(std::string_view s, size_t width)
{
    std::string out;
    if (s.size() < width) {
        out.append(width - s.size(), ' ');
    }
    out += s;
    return out;
}

std::string
sci(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", decimals, value);
    return buf;
}

} // namespace mg::util
