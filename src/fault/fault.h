/**
 * @file
 * Deterministic, seedable fault injection (the repo's failure-model test
 * harness).  Production code declares *fault points* — named sites such as
 * "io.mgz.decode" or "sched.worker" — and tests (or a CLI flag) *arm*
 * those sites with a Spec describing what should go wrong and when:
 *
 *     mg::fault::arm("sched.worker", {.kind = mg::fault::Kind::Throw,
 *                                     .after = 3, .limit = 2, .seed = 42});
 *     ... run the pipeline; batches 4 and 5 throw, the scheduler
 *     ... quarantines and retries them, the run completes.
 *     mg::fault::disarmAll();
 *
 * Firing is deterministic for a given (spec, hit index): the decision is a
 * pure function of the spec's seed and the site's hit counter, so a
 * single-threaded decode replays identically across runs.
 *
 * Cost model: when nothing is armed, every fault point is a single relaxed
 * atomic load.  Configuring with -DMG_FAULT_INJECTION=OFF compiles the
 * whole API down to constant no-ops, removing even that load.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mg::fault {

/** What an armed site does when it fires. */
enum class Kind : uint8_t
{
    /** Throw StatusError(FaultInjected) — a poisoned work item or a
     *  worker dying mid-batch. */
    Throw,
    /** Buffer sites: decode a truncated copy of the input. */
    Truncate,
    /** Buffer sites: decode a copy with deterministic byte flips. */
    Corrupt,
    /** Throw std::bad_alloc — allocation failure. */
    AllocFail,
    /** Sleep stallMillis — a stalled worker or slow device. */
    Stall,
    /** Kill the process with SIGKILL — a crash at exactly this point.
     *  Used by the crash-matrix tests: a forked child runs with a Crash
     *  armed, the parent resumes from the last durable checkpoint. */
    Crash,
    /**
     * Write sites: persist only a prefix of the buffer (a torn write at
     * power loss).  The durable-write path uses this to exercise its
     * detection story — a torn shard fails its CRC on load and is simply
     * re-mapped.
     */
    TornWrite,
};

/** Short stable name ("throw", "truncate", ...). */
const char* kindName(Kind kind);

/** How an armed site decides to fire. */
struct Spec
{
    Kind kind = Kind::Throw;
    /** Per-hit firing probability (1.0 = every eligible hit), decided by
     *  a pure function of (seed, hit index). */
    double probability = 1.0;
    uint64_t seed = 0;
    /** Skip the first `after` hits of the site. */
    uint64_t after = 0;
    /** Stop firing after this many fires (the site keeps counting hits). */
    uint64_t limit = UINT64_MAX;
    /** Stall duration for Kind::Stall. */
    uint64_t stallMillis = 5;
};

/** Hit/fire counters of one site. */
struct SiteStats
{
    uint64_t hits = 0;
    uint64_t fires = 0;
};

#if defined(MG_FAULT_DISABLED)

// Compiled out: every fault point is a constant no-op the optimizer
// deletes entirely.
inline constexpr bool kCompiledIn = false;
inline bool anyArmed() { return false; }
inline void arm(const std::string&, const Spec&) {}
inline void disarm(const std::string&) {}
inline void disarmAll() {}
inline void armFromText(const std::string&) {}
inline SiteStats stats(const std::string&) { return {}; }
inline std::vector<std::pair<std::string, SiteStats>> allStats()
{
    return {};
}
inline std::optional<Kind> fire(std::string_view) { return std::nullopt; }
inline void inject(std::string_view) {}
inline std::optional<std::vector<uint8_t>>
corrupted(std::string_view, const std::vector<uint8_t>&)
{
    return std::nullopt;
}

#else

inline constexpr bool kCompiledIn = true;

namespace detail {
/** Number of currently armed sites; fault points early-out on zero. */
extern std::atomic<int> armedSites;
std::optional<Kind> fireSlow(std::string_view site);
void injectSlow(std::string_view site);
std::optional<std::vector<uint8_t>>
corruptedSlow(std::string_view site, const std::vector<uint8_t>& bytes);
} // namespace detail

/** True if any site is armed (one relaxed load). */
inline bool
anyArmed()
{
    return detail::armedSites.load(std::memory_order_relaxed) > 0;
}

/** Arm a site; replaces any existing spec and resets its counters. */
void arm(const std::string& site, const Spec& spec);

/** Disarm one site (keeps nothing; unknown sites are ignored). */
void disarm(const std::string& site);

/** Disarm everything — call from test teardown. */
void disarmAll();

/**
 * Arm sites from a config string (the CLI surface):
 *     "site=kind[,p=0.5][,seed=7][,after=3][,limit=2][,stall=10]"
 * Multiple clauses separated by ';'.  Throws mg::util::Error on bad
 * syntax or unknown kind names.
 */
void armFromText(const std::string& text);

/** Counters of one site (zeros if never hit). */
SiteStats stats(const std::string& site);

/** All sites with at least one hit or an armed spec. */
std::vector<std::pair<std::string, SiteStats>> allStats();

/**
 * Fault-point primitive: count a hit at `site` and return the armed Kind
 * if the spec decides this hit fires, nullopt otherwise.  Use inject() or
 * corrupted() unless the call site applies its own fault semantics.
 */
inline std::optional<Kind>
fire(std::string_view site)
{
    if (!anyArmed()) {
        return std::nullopt;
    }
    return detail::fireSlow(site);
}

/**
 * Throwing fault point for code sites (schedulers, mappers): Throw,
 * Truncate, and Corrupt throw StatusError(FaultInjected); AllocFail
 * throws std::bad_alloc; Stall sleeps and returns.
 */
inline void
inject(std::string_view site)
{
    if (anyArmed()) {
        detail::injectSlow(site);
    }
}

/**
 * Buffer fault point for decode sites: if a Truncate/Corrupt fault fires,
 * returns a deterministically mutated copy of `bytes` for the caller to
 * decode instead; other kinds behave as inject().  Returns nullopt when
 * nothing fires.
 */
inline std::optional<std::vector<uint8_t>>
corrupted(std::string_view site, const std::vector<uint8_t>& bytes)
{
    if (!anyArmed()) {
        return std::nullopt;
    }
    return detail::corruptedSlow(site, bytes);
}

#endif // MG_FAULT_DISABLED

} // namespace mg::fault
