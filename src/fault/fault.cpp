#include "fault/fault.h"

#include <chrono>
#include <csignal>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#include "util/common.h"
#include "util/status.h"
#include "util/str.h"

namespace mg::fault {

const char*
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Throw:
        return "throw";
      case Kind::Truncate:
        return "truncate";
      case Kind::Corrupt:
        return "corrupt";
      case Kind::AllocFail:
        return "alloc-fail";
      case Kind::Stall:
        return "stall";
      case Kind::Crash:
        return "crash";
      case Kind::TornWrite:
        return "torn-write";
    }
    return "unknown";
}

#if !defined(MG_FAULT_DISABLED)

namespace detail {

std::atomic<int> armedSites{0};

namespace {

/** SplitMix64 — the per-hit decision must be a pure function of
 *  (seed, hit index) so replays are deterministic. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

struct Site
{
    bool armed = false;
    Spec spec;
    SiteStats stats;
};

std::mutex g_mutex;
std::map<std::string, Site, std::less<>>& // NOLINT
registry()
{
    static std::map<std::string, Site, std::less<>> sites;
    return sites;
}

/** Decide and account one hit; returns the Kind when the hit fires. */
std::optional<Kind>
decide(std::string_view site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = registry().find(site);
    if (it == registry().end() || !it->second.armed) {
        return std::nullopt;
    }
    Site& entry = it->second;
    uint64_t hit = entry.stats.hits++;
    if (hit < entry.spec.after || entry.stats.fires >= entry.spec.limit) {
        return std::nullopt;
    }
    if (entry.spec.probability < 1.0) {
        // Top 53 bits -> uniform double in [0, 1).
        double draw = static_cast<double>(
                          mix(entry.spec.seed ^ (hit * 0x2545f4914f6cdd1dull))
                          >> 11) *
                      (1.0 / 9007199254740992.0);
        if (draw >= entry.spec.probability) {
            return std::nullopt;
        }
    }
    ++entry.stats.fires;
    return entry.spec.kind;
}

/** Spec and fire index for buffer mutation (post-decision). */
std::pair<Spec, uint64_t>
siteSpec(std::string_view site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = registry().find(site);
    MG_ASSERT(it != registry().end());
    return {it->second.spec, it->second.stats.fires};
}

[[noreturn]] void
throwInjected(std::string_view site, Kind kind)
{
    util::Status status;
    status.code = util::StatusCode::FaultInjected;
    status.message =
        util::cat("injected ", kindName(kind), " fault at site ", site);
    status.section = std::string(site);
    util::throwStatus(std::move(status));
}

void
act(std::string_view site, Kind kind, const Spec& spec)
{
    switch (kind) {
      case Kind::AllocFail:
        throw std::bad_alloc();
      case Kind::Stall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec.stallMillis));
        return;
      case Kind::Crash:
        // SIGKILL, not abort(): no atexit handlers, no stack unwinding,
        // no buffered-stream flush — the closest in-process stand-in for
        // power loss the crash-matrix tests can arrange.
        std::raise(SIGKILL);
        return; // unreachable
      case Kind::Throw:
      case Kind::Truncate:
      case Kind::Corrupt:
      case Kind::TornWrite:
        // TornWrite at a non-buffer site degrades to a thrown fault; the
        // durable-write path intercepts it via fire() before this.
        throwInjected(site, kind);
    }
}

} // namespace

std::optional<Kind>
fireSlow(std::string_view site)
{
    return decide(site);
}

void
injectSlow(std::string_view site)
{
    std::optional<Kind> kind = decide(site);
    if (!kind) {
        return;
    }
    act(site, *kind, siteSpec(site).first);
}

std::optional<std::vector<uint8_t>>
corruptedSlow(std::string_view site, const std::vector<uint8_t>& bytes)
{
    std::optional<Kind> kind = decide(site);
    if (!kind) {
        return std::nullopt;
    }
    auto [spec, fires] = siteSpec(site);
    // Mutation offsets are a pure function of (seed, fire index, size).
    uint64_t nonce = mix(spec.seed ^ fires);
    switch (*kind) {
      case Kind::Truncate:
      case Kind::TornWrite: {
        // TornWrite at a buffer site: the caller persists only this
        // deterministic prefix (a torn write at power loss).
        std::vector<uint8_t> cut(bytes);
        cut.resize(bytes.empty() ? 0 : nonce % bytes.size());
        return cut;
      }
      case Kind::Corrupt: {
        std::vector<uint8_t> bad(bytes);
        if (!bad.empty()) {
            uint64_t flips = 1 + nonce % 4;
            for (uint64_t f = 0; f < flips; ++f) {
                uint64_t r = mix(nonce ^ (f + 1));
                bad[r % bad.size()] ^=
                    static_cast<uint8_t>(1 + (r >> 32) % 255);
            }
        }
        return bad;
      }
      default:
        act(site, *kind, spec);
        return std::nullopt;
    }
}

} // namespace detail

void
arm(const std::string& site, const Spec& spec)
{
    MG_CHECK(!site.empty(), "fault site name must not be empty");
    MG_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0,
             "fault probability must be in [0, 1]");
    std::lock_guard<std::mutex> lock(detail::g_mutex);
    detail::Site& entry = detail::registry()[site];
    if (!entry.armed) {
        detail::armedSites.fetch_add(1, std::memory_order_relaxed);
    }
    entry.armed = true;
    entry.spec = spec;
    entry.stats = SiteStats{};
}

void
disarm(const std::string& site)
{
    std::lock_guard<std::mutex> lock(detail::g_mutex);
    auto it = detail::registry().find(site);
    if (it != detail::registry().end() && it->second.armed) {
        it->second.armed = false;
        detail::armedSites.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
disarmAll()
{
    std::lock_guard<std::mutex> lock(detail::g_mutex);
    for (auto& [site, entry] : detail::registry()) {
        entry.armed = false;
    }
    detail::armedSites.store(0, std::memory_order_relaxed);
}

SiteStats
stats(const std::string& site)
{
    std::lock_guard<std::mutex> lock(detail::g_mutex);
    auto it = detail::registry().find(site);
    return it == detail::registry().end() ? SiteStats{} : it->second.stats;
}

std::vector<std::pair<std::string, SiteStats>>
allStats()
{
    std::lock_guard<std::mutex> lock(detail::g_mutex);
    std::vector<std::pair<std::string, SiteStats>> out;
    out.reserve(detail::registry().size());
    for (const auto& [site, entry] : detail::registry()) {
        if (entry.armed || entry.stats.hits > 0) {
            out.emplace_back(site, entry.stats);
        }
    }
    return out;
}

void
armFromText(const std::string& text)
{
    for (const std::string& clause : util::split(text, ';')) {
        std::string trimmed(util::trim(clause));
        if (trimmed.empty()) {
            continue;
        }
        size_t eq = trimmed.find('=');
        util::require(eq != std::string::npos && eq > 0,
                      "fault spec must look like site=kind[,key=value...]: ",
                      trimmed);
        std::string site = trimmed.substr(0, eq);
        std::vector<std::string> parts =
            util::split(trimmed.substr(eq + 1), ',');
        util::require(!parts.empty(), "missing fault kind in: ", trimmed);
        Spec spec;
        if (parts[0] == "throw") {
            spec.kind = Kind::Throw;
        } else if (parts[0] == "truncate") {
            spec.kind = Kind::Truncate;
        } else if (parts[0] == "corrupt") {
            spec.kind = Kind::Corrupt;
        } else if (parts[0] == "alloc-fail") {
            spec.kind = Kind::AllocFail;
        } else if (parts[0] == "stall") {
            spec.kind = Kind::Stall;
        } else if (parts[0] == "crash") {
            spec.kind = Kind::Crash;
        } else if (parts[0] == "torn-write") {
            spec.kind = Kind::TornWrite;
        } else {
            throw util::Error(util::cat(
                "unknown fault kind '", parts[0],
                "' (valid: throw, truncate, corrupt, alloc-fail, stall, ",
                "crash, torn-write)"));
        }
        for (size_t i = 1; i < parts.size(); ++i) {
            size_t keq = parts[i].find('=');
            util::require(keq != std::string::npos,
                          "bad fault option (want key=value): ", parts[i]);
            std::string key = parts[i].substr(0, keq);
            std::string value = parts[i].substr(keq + 1);
            if (key == "p") {
                spec.probability = std::stod(value);
            } else if (key == "seed") {
                spec.seed = std::stoull(value);
            } else if (key == "after") {
                spec.after = std::stoull(value);
            } else if (key == "limit") {
                spec.limit = std::stoull(value);
            } else if (key == "stall") {
                spec.stallMillis = std::stoull(value);
            } else {
                throw util::Error(util::cat(
                    "unknown fault option '", key,
                    "' (valid: p, seed, after, limit, stall)"));
            }
        }
        arm(site, spec);
    }
}

#endif // !MG_FAULT_DISABLED

} // namespace mg::fault
