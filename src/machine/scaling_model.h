/**
 * @file
 * Analytic strong-scaling and makespan model.  Given a single-thread cost
 * profile of the mapping kernel (from the cost model over a real trace),
 * predicts the wall-clock time at T threads on a Table II machine,
 * accounting for:
 *   - physical core / SMT / cross-socket throughput (Figure 5's plateaus),
 *   - a shared DRAM bandwidth ceiling fed by the traced LLC miss volume,
 *   - per-batch scheduler dispatch overhead (policy dependent), and
 *   - tail imbalance from the batch granularity.
 * This supplies the cross-machine behaviour this single-core container
 * cannot measure directly; the substitution is documented in DESIGN.md.
 */
#pragma once

#include <cstdint>

#include "machine/cost_model.h"

namespace mg::machine {

/** Scheduler-dependent overhead knobs for the makespan model. */
struct SchedulerCost
{
    /** Per-batch dispatch cost in microseconds on the scheduling path. */
    double dispatchMicros = 0.0;
    /** Per-thread one-time setup cost in microseconds. */
    double threadSetupMicros = 0.0;
    /**
     * Extra per-batch cost in microseconds *per participating thread*,
     * modelling contention on the shared dispatch state (the cache-line
     * ping-pong of a dynamic-schedule counter).  This is what makes small
     * batches expensive at high thread counts and moves the optimal batch
     * size around between machines, as in the paper's Table VIII.
     */
    double contentionMicrosPerThread = 0.0;
    /** Whether the dispatch cost serializes on one thread (VG style). */
    bool serialDispatch = false;
    /**
     * Fraction of one batch's work expected to sit in the end-of-run tail
     * per thread.  Dynamic dealing leaves ~half a batch (0.5); stealing
     * redistributes the tail and leaves much less.
     */
    double imbalanceFactor = 0.5;
};

/** One workload's inputs to the makespan model. */
struct WorkloadShape
{
    /** Number of reads (work items). */
    uint64_t numReads = 0;
    /** Batch size used by the scheduler. */
    uint64_t batchSize = 512;
    /** Bytes of DRAM traffic (llcMisses * line). */
    double dramBytes = 0.0;
};

/**
 * Effective parallelism of T software threads on the machine: physical
 * cores first (remote sockets discounted), then SMT contexts at marginal
 * efficiency.  More threads than contexts just oversubscribe (capped).
 */
double effectiveParallelism(const MachineConfig& machine, size_t threads);

/**
 * Predicted wall-clock seconds of a kernel whose single-thread modelled
 * time is `cost.seconds`, run with `threads` threads.
 */
double predictedTime(const MachineConfig& machine, const CostProfile& cost,
                     const WorkloadShape& shape, const SchedulerCost& sched,
                     size_t threads);

/** Speedup curve over a list of thread counts (relative to 1 thread). */
std::vector<double> speedupCurve(const MachineConfig& machine,
                                 const CostProfile& cost,
                                 const WorkloadShape& shape,
                                 const SchedulerCost& sched,
                                 const std::vector<size_t>& thread_counts);

} // namespace mg::machine
