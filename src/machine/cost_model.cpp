#include "machine/cost_model.h"

#include "util/common.h"

namespace mg::machine {

CostProfile
modelCost(const MachineConfig& machine, const WorkCounters& work,
          const CacheCounters& counters)
{
    CostProfile profile;
    profile.instructions = work.instructions;

    // Misses satisfied at each level.
    uint64_t l2_hits = counters.l1Misses - counters.l2Misses;
    uint64_t l3_hits = counters.l2Misses - counters.llcMisses;
    uint64_t dram = counters.llcMisses;

    double mlp = machine.memoryLevelParallelism;
    MG_ASSERT(mlp >= 1.0);
    profile.l2StallCycles = static_cast<double>(l2_hits) *
                            machine.l2.latencyCycles / mlp;
    profile.l3StallCycles = static_cast<double>(l3_hits) *
                            machine.l3PerSocket.latencyCycles / mlp;
    profile.dramStallCycles = static_cast<double>(dram) *
                              machine.dramLatencyCycles / mlp;

    double busy = static_cast<double>(work.instructions) * machine.baseCpi;
    double memory_stall = profile.l2StallCycles + profile.l3StallCycles +
                          profile.dramStallCycles;
    // Front-end and speculation stalls scale the busy portion.
    double overhead = busy * (machine.frontEndStallFraction +
                              machine.badSpeculationFraction);
    profile.cycles = busy + memory_stall + overhead;
    profile.ipc = profile.cycles > 0.0
                      ? static_cast<double>(work.instructions) /
                            profile.cycles
                      : 0.0;
    profile.seconds = profile.cycles / (machine.frequencyGhz * 1e9);
    return profile;
}

TopDownProfile
modelTopDown(const MachineConfig& machine, const CostProfile& cost)
{
    TopDownProfile td;
    if (cost.cycles <= 0.0) {
        return td;
    }
    double busy = static_cast<double>(cost.instructions) * machine.baseCpi;
    double memory = cost.l2StallCycles + cost.l3StallCycles +
                    cost.dramStallCycles;
    double front = busy * machine.frontEndStallFraction;
    double bad = busy * machine.badSpeculationFraction;
    // Back-end = memory stalls plus the non-retiring share of busy cycles
    // attributable to core-bound dependencies (folded into baseCpi above
    // the ideal 0.25 CPI of a 4-wide machine).
    double ideal = static_cast<double>(cost.instructions) * 0.25;
    double core_bound = busy > ideal ? busy - ideal : 0.0;
    double retiring = cost.cycles - memory - front - bad - core_bound;
    if (retiring < 0.0) {
        retiring = 0.0;
    }
    double total = retiring + memory + core_bound + front + bad;
    td.retiringPct = 100.0 * retiring / total;
    td.frontEndPct = 100.0 * front / total;
    td.backEndPct = 100.0 * (memory + core_bound) / total;
    td.badSpeculationPct = 100.0 * bad / total;
    td.memoryBoundPct = 100.0 * memory / total;
    td.frontEndLatencyPct = td.frontEndPct * 0.46; // latency share (paper
                                                   // reports 10.9 of 23.5)
    return td;
}

} // namespace mg::machine
