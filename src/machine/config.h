/**
 * @file
 * Machine descriptions for the four evaluation servers of the paper's
 * Table II.  This container has a single core, so the cross-machine
 * experiments (Figures 5, 7, 8; Tables VII, VIII) run on a machine-model
 * substrate: memory traces recorded from the *real* mapping kernel drive a
 * per-machine cache-hierarchy simulator, and an analytic strong-scaling
 * model supplies the socket/SMT behaviour.  DESIGN.md documents the
 * substitution.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::machine {

/** One cache level's geometry and access latency. */
struct CacheLevelConfig
{
    size_t sizeBytes = 0;
    size_t lineBytes = 64;
    size_t associativity = 8;
    /** Load-to-use latency in core cycles when satisfied at this level. */
    uint32_t latencyCycles = 4;
};

/** A full machine description (Table II plus model parameters). */
struct MachineConfig
{
    std::string name;
    std::string vendor;
    std::string processor;

    size_t sockets = 1;
    size_t coresPerSocket = 1;
    size_t threadsPerCore = 1;
    double frequencyGhz = 2.0;

    CacheLevelConfig l1d;
    CacheLevelConfig l2;
    /** LLC is per socket (the paper reports L3/socket). */
    CacheLevelConfig l3PerSocket;

    size_t dramGb = 64;
    uint32_t dramLatencyCycles = 220;
    /** Sustained DRAM bandwidth per socket, GB/s. */
    double memBandwidthGBs = 80.0;

    // --- Analytic scaling-model parameters ---
    /** Base cycles per instruction with all loads hitting L1. */
    double baseCpi = 0.55;
    /** Marginal throughput of the second SMT context on a busy core. */
    double smtEfficiency = 0.25;
    /** Relative throughput of cores on a remote socket (NUMA penalty). */
    double crossSocketEfficiency = 0.80;
    /** Memory-level parallelism: overlapped outstanding misses. */
    double memoryLevelParallelism = 4.0;
    /** Front-end stall fraction of cycles (top-down modelling). */
    double frontEndStallFraction = 0.20;
    /** Bad-speculation fraction of cycles (top-down modelling). */
    double badSpeculationFraction = 0.10;
    /**
     * Install line N+1 on an L1 miss (next-line hardware prefetcher).
     * Off by default so counter experiments stay directly comparable;
     * the ablation bench can toggle it per hierarchy.
     */
    bool nextLinePrefetcher = false;

    size_t physicalCores() const { return sockets * coresPerSocket; }
    size_t threadContexts() const { return physicalCores() * threadsPerCore; }
};

/**
 * The four Table II machines: local-intel (2S Xeon 8260), local-amd
 * (1S EPYC 9554), chi-arm (2S ThunderX2), chi-intel (2S Xeon 8380).
 */
std::vector<MachineConfig> paperMachines();

/** Find a machine by name; throws mg::util::Error if unknown. */
MachineConfig machineByName(const std::string& name);

} // namespace mg::machine
