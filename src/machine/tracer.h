/**
 * @file
 * TraceCounter: the MemTracer implementation that turns instrumented data
 * structure accesses into hardware-counter style measurements.  One access
 * stream can drive several machines' cache hierarchies simultaneously, so
 * a single (expensive) instrumented run yields per-machine counters for
 * the whole Table II fleet.
 */
#pragma once

#include <memory>
#include <vector>

#include "machine/cache_sim.h"
#include "util/mem_tracer.h"

namespace mg::machine {

/** Instruction/access totals accumulated alongside the cache counters. */
struct WorkCounters
{
    uint64_t instructions = 0;
    uint64_t memoryAccesses = 0;
    uint64_t bytesTouched = 0;
};

/**
 * MemTracer feeding one cache hierarchy per registered machine.
 * Not thread-safe: attach one TraceCounter per worker thread.
 */
class TraceCounter : public util::MemTracer
{
  public:
    /** Trace against every machine in `machines`. */
    explicit TraceCounter(const std::vector<MachineConfig>& machines);

    void onAccess(const void* addr, uint32_t bytes, bool write) override;
    void onWork(uint64_t ops) override;

    const WorkCounters& work() const { return work_; }

    size_t numMachines() const { return hierarchies_.size(); }
    const CacheHierarchy& hierarchy(size_t index) const
    {
        return *hierarchies_.at(index);
    }
    const CacheCounters& counters(size_t index) const
    {
        return hierarchies_.at(index)->counters();
    }

    /** Counters of a machine by name; throws if not registered. */
    const CacheCounters& countersFor(const std::string& name) const;

    /** Zero all counters (cache contents stay warm). */
    void resetCounters();

  private:
    std::vector<std::unique_ptr<CacheHierarchy>> hierarchies_;
    WorkCounters work_;
};

} // namespace mg::machine
