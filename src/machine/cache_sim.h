/**
 * @file
 * Trace-driven cache-hierarchy simulator.  A set-associative LRU model of
 * L1D -> L2 -> shared L3 fed with the memory accesses the instrumented
 * data-structure hot paths report (util/mem_tracer.h).  Its counters stand
 * in for the perf/VTune measurements of the paper's Tables IV and V:
 * because proxy and parent are traced through identical hooks, the
 * *comparison* between them (the paper's actual claim) is preserved even
 * though the absolute numbers model a simulated hierarchy.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "machine/config.h"

namespace mg::machine {

/** Counter block matching the paper's Table V columns. */
struct CacheCounters
{
    uint64_t l1Accesses = 0;   // L1DA
    uint64_t l1Misses = 0;     // L1DM
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;
    uint64_t llcAccesses = 0;  // LLDA
    uint64_t llcMisses = 0;
    /** Lines installed by the next-line prefetcher (not demand misses). */
    uint64_t prefetches = 0;

    double
    l1MissRate() const
    {
        return l1Accesses == 0
                   ? 0.0
                   : static_cast<double>(l1Misses) /
                         static_cast<double>(l1Accesses);
    }

    double
    llcMissRate() const
    {
        return llcAccesses == 0
                   ? 0.0
                   : static_cast<double>(llcMisses) /
                         static_cast<double>(llcAccesses);
    }
};

/** One set-associative LRU cache level. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheLevelConfig& config);

    /** Probe a line address; true on hit.  A miss installs the line. */
    bool access(uint64_t line_addr);

    size_t numSets() const { return sets_; }
    size_t associativity() const { return ways_; }

  private:
    size_t sets_;
    size_t ways_;
    // tags_[set * ways_ + way]; 0 means empty.  lru_ holds per-way ages.
    std::vector<uint64_t> tags_;
    std::vector<uint32_t> ages_;
    uint32_t clock_ = 0;
};

/** L1D -> L2 -> L3 hierarchy of one machine (single-threaded view). */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const MachineConfig& config);

    /** Simulate one logical access, splitting across cache lines. */
    void access(uint64_t addr, uint32_t bytes);

    const CacheCounters& counters() const { return counters_; }
    const MachineConfig& config() const { return config_; }

    /** Forget all cached lines but keep counters. */
    void flush();

    /** Zero the counters but keep cache contents (warm-up support). */
    void resetCounters();

  private:
    MachineConfig config_;
    CacheLevel l1_;
    CacheLevel l2_;
    CacheLevel l3_;
    size_t lineBytes_;
    CacheCounters counters_;
};

} // namespace mg::machine
