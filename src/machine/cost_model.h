/**
 * @file
 * Cycle-cost and top-down models.  Converts TraceCounter measurements into
 * modelled cycles, IPC, and the four top-down buckets of the paper's
 * Table IV (Retiring / Front-End / Back-End / Bad Speculation), using the
 * classic miss-latency accounting with a memory-level-parallelism overlap
 * factor.
 */
#pragma once

#include "machine/cache_sim.h"
#include "machine/tracer.h"

namespace mg::machine {

/** Modelled execution profile of a traced kernel on one machine. */
struct CostProfile
{
    uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;
    double seconds = 0.0;
    /** Cycles lost to each cache level / DRAM (post-overlap). */
    double l2StallCycles = 0.0;
    double l3StallCycles = 0.0;
    double dramStallCycles = 0.0;
};

/** Top-down level-1 buckets, as percentages of pipeline slots. */
struct TopDownProfile
{
    double retiringPct = 0.0;
    double frontEndPct = 0.0;
    double backEndPct = 0.0;
    double badSpeculationPct = 0.0;
    /** Second-level detail: memory-bound share of back-end. */
    double memoryBoundPct = 0.0;
    /** Second-level detail: latency share of front-end. */
    double frontEndLatencyPct = 0.0;
};

/** Model cycles/IPC/time of a traced kernel on `machine`. */
CostProfile modelCost(const MachineConfig& machine,
                      const WorkCounters& work,
                      const CacheCounters& counters);

/** Derive Table IV style top-down buckets from a cost profile. */
TopDownProfile modelTopDown(const MachineConfig& machine,
                            const CostProfile& cost);

} // namespace mg::machine
