/**
 * @file
 * The *host* machine's capabilities, as opposed to the modelled Table II
 * machines in config.h.  The mapping kernel dispatches its match loop on
 * the CPU's SIMD feature set at runtime (util/simd.h); every run record
 * (JSON summaries, bench outputs) embeds this description so results from
 * a heterogeneous fleet stay attributable to the ISA that produced them.
 */
#pragma once

#include <string>

#include "util/simd.h"

namespace mg::machine {

/** The host CPU as the dispatcher sees it, probed once per process. */
struct HostCpu
{
    /** Compile-target architecture ("x86_64", "aarch64", "unknown"). */
    std::string arch;
    /** Wide-ISA summary ("avx2+avx512bw", "neon", "swar64"). */
    std::string features;
    /** Widest SIMD level runtime dispatch can select. */
    util::SimdLevel bestLevel = util::SimdLevel::None;
};

/** The cached probe (first call probes via util::cpuFeatures()). */
const HostCpu& hostCpu();

/** JSON object fragment: {"arch":"...","features":"...","simd":"..."}. */
std::string hostCpuJson();

} // namespace mg::machine
