#include "machine/config.h"

#include "util/common.h"

namespace mg::machine {

std::vector<MachineConfig>
paperMachines()
{
    std::vector<MachineConfig> machines;

    // local-intel: 2-socket Xeon 8260, 24 cores/socket, 2.4 GHz,
    // 35.75 MB L3/socket, 1 MB L2, 32K/32K L1, SMT2, 768 GB.
    {
        MachineConfig m;
        m.name = "local-intel";
        m.vendor = "Intel";
        m.processor = "Xeon 8260";
        m.sockets = 2;
        m.coresPerSocket = 24;
        m.threadsPerCore = 2;
        m.frequencyGhz = 2.4;
        m.l1d = {32 * 1024, 64, 8, 5};
        m.l2 = {1024 * 1024, 64, 16, 14};
        m.l3PerSocket = {35750ull * 1024, 64, 11, 50};
        m.dramGb = 768;
        m.dramLatencyCycles = 230;
        m.memBandwidthGBs = 110.0;
        m.baseCpi = 0.33;
        m.smtEfficiency = 0.22;
        m.crossSocketEfficiency = 0.75;
        m.memoryLevelParallelism = 7.0;
        m.frontEndStallFraction = 0.38;
        m.badSpeculationFraction = 0.165;
        machines.push_back(m);
    }

    // local-amd: 1-socket EPYC 9554, 64 cores, 3.1 GHz, 256 MB L3,
    // 1 MB L2, SMT2, 768 GB.  The paper's fastest machine.
    {
        MachineConfig m;
        m.name = "local-amd";
        m.vendor = "AMD";
        m.processor = "EPYC 9554";
        m.sockets = 1;
        m.coresPerSocket = 64;
        m.threadsPerCore = 2;
        m.frequencyGhz = 3.1;
        m.l1d = {32 * 1024, 64, 8, 4};
        m.l2 = {1024 * 1024, 64, 8, 13};
        m.l3PerSocket = {256ull * 1024 * 1024, 64, 16, 46};
        m.dramGb = 768;
        m.dramLatencyCycles = 210;
        m.memBandwidthGBs = 380.0;
        m.baseCpi = 0.45;
        m.smtEfficiency = 0.35;
        m.crossSocketEfficiency = 1.0; // single socket
        m.frontEndStallFraction = 0.18;
        m.badSpeculationFraction = 0.09;
        machines.push_back(m);
    }

    // chi-arm: 2-socket Cavium ThunderX2 99xx, 32 cores/socket, 2.5 GHz,
    // 64 MB L3/socket (shared), small 256 KB L2, no SMT in the paper's
    // configuration (1 thread/core), 256 GB.  Slowest absolute times but
    // near-linear scaling.
    {
        MachineConfig m;
        m.name = "chi-arm";
        m.vendor = "Cavium";
        m.processor = "ThunderX2 99xx";
        m.sockets = 2;
        m.coresPerSocket = 32;
        m.threadsPerCore = 1;
        m.frequencyGhz = 2.5;
        m.l1d = {32 * 1024, 64, 8, 5};
        m.l2 = {256 * 1024, 64, 8, 12};
        m.l3PerSocket = {64ull * 1024 * 1024, 64, 16, 60};
        m.dramGb = 256;
        m.dramLatencyCycles = 260;
        m.memBandwidthGBs = 120.0;
        // In-order-ish issue behaviour on this workload: the paper sees
        // >4x slower absolute times than local-amd.
        m.baseCpi = 1.45;
        m.smtEfficiency = 0.0;
        m.crossSocketEfficiency = 0.92;
        m.memoryLevelParallelism = 2.5;
        m.frontEndStallFraction = 0.27;
        m.badSpeculationFraction = 0.08;
        machines.push_back(m);
    }

    // chi-intel: 2-socket Xeon 8380, 40 cores/socket, 2.3 GHz,
    // 60 MB L3/socket, 1.25 MB L2, 48 KB L1D, SMT2, 256 GB.
    {
        MachineConfig m;
        m.name = "chi-intel";
        m.vendor = "Intel";
        m.processor = "Xeon 8380";
        m.sockets = 2;
        m.coresPerSocket = 40;
        m.threadsPerCore = 2;
        m.frequencyGhz = 2.3;
        m.l1d = {48 * 1024, 64, 12, 5};
        m.l2 = {1280 * 1024, 64, 20, 14};
        m.l3PerSocket = {60ull * 1024 * 1024, 64, 12, 52};
        m.dramGb = 256;
        m.dramLatencyCycles = 225;
        m.memBandwidthGBs = 180.0;
        m.baseCpi = 0.50;
        m.smtEfficiency = 0.22;
        m.crossSocketEfficiency = 0.78;
        m.frontEndStallFraction = 0.22;
        m.badSpeculationFraction = 0.10;
        machines.push_back(m);
    }
    return machines;
}

MachineConfig
machineByName(const std::string& name)
{
    for (const MachineConfig& machine : paperMachines()) {
        if (machine.name == name) {
            return machine;
        }
    }
    throw util::Error("unknown machine: " + name);
}

} // namespace mg::machine
