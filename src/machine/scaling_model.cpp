#include "machine/scaling_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/common.h"

namespace mg::machine {

double
effectiveParallelism(const MachineConfig& machine, size_t threads)
{
    MG_CHECK(threads >= 1, "need at least one thread");
    threads = std::min(threads, machine.threadContexts());

    // Threads fill physical cores first: the local socket, then remote
    // sockets at crossSocketEfficiency; leftover threads land on SMT
    // siblings at smtEfficiency.
    size_t cores = machine.physicalCores();
    size_t on_cores = std::min(threads, cores);
    size_t local = std::min(on_cores, machine.coresPerSocket);
    size_t remote = on_cores - local;
    double p = static_cast<double>(local) +
               machine.crossSocketEfficiency * static_cast<double>(remote);

    size_t smt = threads > cores ? threads - cores : 0;
    p += machine.smtEfficiency * static_cast<double>(smt);
    return std::max(p, 1.0);
}

double
predictedTime(const MachineConfig& machine, const CostProfile& cost,
              const WorkloadShape& shape, const SchedulerCost& sched,
              size_t threads)
{
    MG_CHECK(shape.batchSize >= 1, "batch size must be positive");
    double parallel =
        cost.seconds / effectiveParallelism(machine, threads);

    // Shared bandwidth ceiling: all sockets' memory controllers serve the
    // combined DRAM traffic; the run can never finish faster than the
    // traffic drains.
    double bandwidth =
        machine.memBandwidthGBs * 1e9 * static_cast<double>(machine.sockets);
    double memory_floor = shape.dramBytes / bandwidth;

    // Scheduler overhead: per-batch dispatch, amortized over threads for
    // distributed policies, serialized for a VG-style main dispatcher.
    double batches = shape.numReads == 0
        ? 0.0
        : std::ceil(static_cast<double>(shape.numReads) /
                    static_cast<double>(shape.batchSize));
    double per_batch_micros =
        sched.dispatchMicros +
        sched.contentionMicrosPerThread * static_cast<double>(threads);
    double dispatch_seconds = batches * per_batch_micros * 1e-6;
    if (!sched.serialDispatch) {
        dispatch_seconds /= static_cast<double>(std::max<size_t>(threads, 1));
    }
    double setup_seconds =
        static_cast<double>(threads) * sched.threadSetupMicros * 1e-6;

    // Tail imbalance: the last wave of batches leaves up to one batch per
    // thread idle-waiting; expected cost is half a batch's work.
    double per_read_seconds =
        shape.numReads == 0 ? 0.0
                            : cost.seconds /
                                  static_cast<double>(shape.numReads);
    double imbalance = 0.0;
    if (threads > 1 && shape.numReads > 0) {
        double tail_reads =
            sched.imbalanceFactor * static_cast<double>(shape.batchSize) *
            (1.0 - 1.0 / static_cast<double>(threads));
        tail_reads = std::min(tail_reads,
                              static_cast<double>(shape.numReads));
        imbalance = tail_reads * per_read_seconds;
    }

    return std::max(parallel, memory_floor) + dispatch_seconds +
           setup_seconds + imbalance;
}

std::vector<double>
speedupCurve(const MachineConfig& machine, const CostProfile& cost,
             const WorkloadShape& shape, const SchedulerCost& sched,
             const std::vector<size_t>& thread_counts)
{
    double base = predictedTime(machine, cost, shape, sched, 1);
    std::vector<double> speedups;
    speedups.reserve(thread_counts.size());
    for (size_t threads : thread_counts) {
        speedups.push_back(
            base / predictedTime(machine, cost, shape, sched, threads));
    }
    return speedups;
}

} // namespace mg::machine
