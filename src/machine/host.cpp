#include "machine/host.h"

namespace mg::machine {

const HostCpu&
hostCpu()
{
    static const HostCpu host = [] {
        HostCpu h;
#if defined(__x86_64__) || defined(_M_X64)
        h.arch = "x86_64";
#elif defined(__aarch64__)
        h.arch = "aarch64";
#else
        h.arch = "unknown";
#endif
        h.features = util::cpuFeatures().summary();
        h.bestLevel = util::bestSimdLevel();
        return h;
    }();
    return host;
}

std::string
hostCpuJson()
{
    const HostCpu& h = hostCpu();
    std::string json = "{\"arch\":\"";
    json += h.arch;
    json += "\",\"features\":\"";
    json += h.features;
    json += "\",\"simd\":\"";
    json += util::simdLevelName(h.bestLevel);
    json += "\"}";
    return json;
}

} // namespace mg::machine
