#include "machine/tracer.h"

#include "util/common.h"

namespace mg::machine {

TraceCounter::TraceCounter(const std::vector<MachineConfig>& machines)
{
    MG_CHECK(!machines.empty(), "TraceCounter needs at least one machine");
    hierarchies_.reserve(machines.size());
    for (const MachineConfig& machine : machines) {
        hierarchies_.push_back(std::make_unique<CacheHierarchy>(machine));
    }
}

void
TraceCounter::onAccess(const void* addr, uint32_t bytes, bool write)
{
    (void)write; // the model does not distinguish read/write latency
    // One memory instruction per line touched (approximated as one per
    // access plus per-line accounting inside the hierarchy).
    ++work_.memoryAccesses;
    ++work_.instructions;
    work_.bytesTouched += bytes;
    uint64_t address = reinterpret_cast<uint64_t>(addr);
    for (auto& hierarchy : hierarchies_) {
        hierarchy->access(address, bytes);
    }
}

void
TraceCounter::onWork(uint64_t ops)
{
    work_.instructions += ops;
}

const CacheCounters&
TraceCounter::countersFor(const std::string& name) const
{
    for (const auto& hierarchy : hierarchies_) {
        if (hierarchy->config().name == name) {
            return hierarchy->counters();
        }
    }
    throw util::Error("machine not traced: " + name);
}

void
TraceCounter::resetCounters()
{
    work_ = WorkCounters();
    for (auto& hierarchy : hierarchies_) {
        hierarchy->resetCounters();
    }
}

} // namespace mg::machine
