#include "machine/cache_sim.h"

#include <bit>

#include "util/common.h"

namespace mg::machine {

namespace {

size_t
pow2Floor(size_t n)
{
    return n < 1 ? 1 : std::bit_floor(n);
}

} // namespace

CacheLevel::CacheLevel(const CacheLevelConfig& config)
{
    MG_CHECK(config.sizeBytes >= config.lineBytes,
             "cache smaller than one line");
    ways_ = std::max<size_t>(1, config.associativity);
    size_t lines = config.sizeBytes / config.lineBytes;
    sets_ = pow2Floor(std::max<size_t>(1, lines / ways_));
    tags_.assign(sets_ * ways_, 0);
    ages_.assign(sets_ * ways_, 0);
}

bool
CacheLevel::access(uint64_t line_addr)
{
    // Tag 0 marks empty ways; keep real tags non-zero.
    uint64_t tag = line_addr | (uint64_t{1} << 63);
    size_t set = static_cast<size_t>(line_addr) & (sets_ - 1);
    uint64_t* tags = &tags_[set * ways_];
    uint32_t* ages = &ages_[set * ways_];
    ++clock_;

    size_t victim = 0;
    uint32_t oldest = UINT32_MAX;
    for (size_t way = 0; way < ways_; ++way) {
        if (tags[way] == tag) {
            ages[way] = clock_;
            return true;
        }
        // Empty ways (age 0 and tag 0) are preferred victims.
        uint32_t age = tags[way] == 0 ? 0 : ages[way];
        if (age < oldest) {
            oldest = age;
            victim = way;
        }
    }
    tags[victim] = tag;
    ages[victim] = clock_;
    return false;
}

CacheHierarchy::CacheHierarchy(const MachineConfig& config)
    : config_(config), l1_(config.l1d), l2_(config.l2),
      l3_(config.l3PerSocket), lineBytes_(config.l1d.lineBytes)
{}

void
CacheHierarchy::access(uint64_t addr, uint32_t bytes)
{
    if (bytes == 0) {
        bytes = 1;
    }
    uint64_t first_line = addr / lineBytes_;
    uint64_t last_line = (addr + bytes - 1) / lineBytes_;
    for (uint64_t line = first_line; line <= last_line; ++line) {
        ++counters_.l1Accesses;
        if (l1_.access(line)) {
            continue;
        }
        ++counters_.l1Misses;
        // Next-line prefetch: a demand miss silently pulls line+1 into
        // every level (no demand counters, just the prefetch tally).
        if (config_.nextLinePrefetcher && line + 1 > last_line) {
            ++counters_.prefetches;
            l1_.access(line + 1);
            l2_.access(line + 1);
            l3_.access(line + 1);
        }
        ++counters_.l2Accesses;
        if (l2_.access(line)) {
            continue;
        }
        ++counters_.l2Misses;
        ++counters_.llcAccesses;
        if (!l3_.access(line)) {
            ++counters_.llcMisses;
        }
    }
}

void
CacheHierarchy::flush()
{
    l1_ = CacheLevel(config_.l1d);
    l2_ = CacheLevel(config_.l2);
    l3_ = CacheLevel(config_.l3PerSocket);
}

void
CacheHierarchy::resetCounters()
{
    counters_ = CacheCounters();
}

} // namespace mg::machine
