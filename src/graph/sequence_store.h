/**
 * @file
 * SequenceStore: the flattened node-sequence arena of the hot-path memory
 * overhaul.  Every node's forward sequence AND its reverse complement are
 * concatenated into one contiguous byte arena with an offset table indexed
 * by handle.packed(), the layout vg's GBWTGraph uses so that the extension
 * kernel reads graph bases as one `std::string_view` span per oriented node
 * — no per-base orientation branch, no complement call, no per-node string
 * object scattered across the heap.
 *
 * Storing both orientations doubles the sequence bytes (2 bytes/base) but
 * turns the kernel's innermost loop into a linear scan over one arena the
 * prefetcher streams, which is exactly the trade the paper's memory-bound
 * analysis motivates.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/handle.h"

namespace mg::graph {

/** Contiguous forward + reverse-complement sequence arena. */
class SequenceStore
{
  public:
    /** Append one node (ids are dense, so node k is the k-th call). */
    void addNode(std::string_view forward_sequence);

    size_t numNodes() const { return numNodes_; }

    /** Total forward bases stored (arena holds twice this). */
    size_t totalBases() const { return arena_.size() / 2; }

    /** Length of a node's sequence. */
    size_t
    length(NodeId id) const
    {
        size_t slot = slotOf(Handle(id, false));
        return offsets_[slot + 1] - offsets_[slot];
    }

    /** Forward-strand sequence of a node. */
    std::string_view
    forwardView(NodeId id) const
    {
        return view(Handle(id, false));
    }

    /**
     * Sequence of an oriented handle as read in that orientation — the
     * reverse complement is materialized in the arena, so both strands are
     * equally cheap.  Views stay valid until the next addNode().
     */
    std::string_view
    view(Handle handle) const
    {
        size_t slot = slotOf(handle);
        return std::string_view(arena_.data() + offsets_[slot],
                                offsets_[slot + 1] - offsets_[slot]);
    }

    /** Single base of an oriented handle (bounds unchecked, hot path). */
    char
    base(Handle handle, size_t offset) const
    {
        return arena_[offsets_[slotOf(handle)] + offset];
    }

    /** Resident bytes (arena + offset table). */
    size_t
    footprintBytes() const
    {
        return arena_.capacity() +
               offsets_.capacity() * sizeof(uint64_t);
    }

    /** Pre-size the arena for an expected total of forward bases. */
    void
    reserveBases(size_t forward_bases)
    {
        arena_.reserve(2 * forward_bases);
    }

  private:
    /** Handles pack to 2*id(+1) and ids start at 1: slot = packed - 2. */
    static size_t slotOf(Handle handle) { return handle.packed() - 2; }

    std::string arena_;              // fwd(1) rc(1) fwd(2) rc(2) ...
    std::vector<uint64_t> offsets_;  // slot -> arena begin; 2n+1 entries
    size_t numNodes_ = 0;
};

} // namespace mg::graph
