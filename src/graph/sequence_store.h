/**
 * @file
 * SequenceStore: the 2-bit packed node-sequence arena of the mapping hot
 * path.  Every node's forward sequence AND its reverse complement are
 * packed 32 bases per 64-bit word into one contiguous word arena, with a
 * base-offset table indexed by handle.packed().  The extension kernel
 * reads graph bases as word-aligned SWAR chunks (util::chunk32 shift-carry
 * from any base offset), so the innermost compare loop XORs 32 bases at a
 * time instead of branching per byte.
 *
 * Storing both orientations doubles the packed bases, but at 2 bits/base
 * the arena still shrinks ~4x against the previous 2-bytes/base byte
 * layout — one quarter the bandwidth through the cache hierarchy for the
 * same walk, which is the trade the paper's memory-bound analysis
 * motivates.  The reverse complement is derived at ingest by word-wise
 * complement + 2-bit-group reversal (util::reverseComplementPacked), not
 * per-base calls.
 *
 * Ingest applies the non-ACGT canonicalization policy (util/dna.h):
 * ambiguity letters become 'A' and are counted in sanitizedBases();
 * non-letter characters are rejected.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/handle.h"
#include "mem/arena.h"
#include "util/dna.h"

namespace mg::graph {

/** Contiguous packed forward + reverse-complement sequence arena. */
class SequenceStore
{
  public:
    /** Append one node (ids are dense, so node k is the k-th call). */
    void addNode(std::string_view forward_sequence);

    size_t numNodes() const { return numNodes_; }

    /** Total forward bases stored (arena holds twice this, packed). */
    size_t
    totalBases() const
    {
        return offsets_.empty() ? 0 : offsets_.back() / 2;
    }

    /** Length of a node's sequence. */
    size_t
    length(NodeId id) const
    {
        size_t slot = slotOf(Handle(id, false));
        return offsets_[slot + 1] - offsets_[slot];
    }

    /** Forward-strand sequence of a node, decoded from the arena. */
    std::string
    forwardSequence(NodeId id) const
    {
        return sequence(Handle(id, false));
    }

    /** Sequence of an oriented handle, decoded from the arena. */
    std::string
    sequence(Handle handle) const
    {
        size_t slot = slotOf(handle);
        return util::unpackPacked(words_.data(), offsets_[slot],
                                  offsets_[slot + 1] - offsets_[slot]);
    }

    /**
     * Packed view of an oriented handle's sequence — the hot-path access.
     * Both strands are pre-materialized, so either orientation is one
     * word-aligned span.  Views stay valid until the next addNode().
     */
    util::PackedSpan
    packedView(Handle handle) const
    {
        size_t slot = slotOf(handle);
        return util::PackedSpan{
            words_.data(), offsets_[slot],
            static_cast<uint32_t>(offsets_[slot + 1] - offsets_[slot])
        };
    }

    /** Single base of an oriented handle (bounds unchecked, hot path). */
    char
    base(Handle handle, size_t offset) const
    {
        return util::codeBase(util::packedCode(
            words_.data(), offsets_[slotOf(handle)] + offset));
    }

    /** Bases canonicalized from ambiguity letters to 'A' at ingest. */
    size_t sanitizedBases() const { return sanitizedBases_; }

    /** Resident bytes of the packed word arena (incl. the pad word). */
    size_t arenaBytes() const { return words_.size() * sizeof(uint64_t); }

    /** Resident bytes of the per-orientation offset table. */
    size_t
    offsetTableBytes() const
    {
        return offsets_.size() * sizeof(uint64_t);
    }

    /** Resident bytes actually holding data (arena + offset table). */
    size_t
    footprintBytes() const
    {
        return arenaBytes() + offsetTableBytes();
    }

    /** Reserved bytes including over-grown vector capacity. */
    size_t
    reservedBytes() const
    {
        return words_.reservedBytes() + offsets_.reservedBytes();
    }

    /** Pre-size the arena for an expected total of forward bases. */
    void
    reserveBases(size_t forward_bases)
    {
        words_.owned().reserve(util::packedBufferWords(2 * forward_bases));
    }

    /** True when the arenas are mmap-backed (MGZ v3 load). */
    bool isMapped() const { return words_.isMapped(); }

    /** Raw word arena (v3 serialization). */
    const mem::ArenaView<uint64_t>& words() const { return words_; }

    /** Raw offset table, 2*numNodes+1 entries (v3 serialization). */
    const mem::ArenaView<uint64_t>& offsets() const { return offsets_; }

    /**
     * Rebind the store onto arenas living inside a mapped MGZ v3
     * container.  The caller validated sizes/alignment; this performs the
     * cheap structural scans (offset monotonicity, word-count match) that
     * keep "never crash on corrupt input" true, then replaces any heap
     * state.  Throws util::Error on inconsistency.
     */
    void bindMapped(std::shared_ptr<mem::MappedFile> file,
                    const uint64_t* words, size_t num_words,
                    const uint64_t* offsets, size_t num_offsets,
                    size_t num_nodes, size_t sanitized_bases);

  private:
    /** Handles pack to 2*id(+1) and ids start at 1: slot = packed - 2. */
    static size_t slotOf(Handle handle) { return handle.packed() - 2; }

    mem::ArenaView<uint64_t> words_;    // fwd(1) rc(1) fwd(2) ... + pad word
    mem::ArenaView<uint64_t> offsets_;  // slot -> arena base offset; 2n+1
    size_t numNodes_ = 0;
    size_t sanitizedBases_ = 0;

    // Ingest scratch (capacity persists across addNode calls).
    std::string sanitizeScratch_;
    std::vector<uint64_t> packScratch_;
    std::vector<uint64_t> rcScratch_;
};

} // namespace mg::graph
