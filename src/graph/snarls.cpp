#include "graph/snarls.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/common.h"

namespace mg::graph {

namespace {

/** Saturating add/multiply for walk counting. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    constexpr uint64_t kCap = 1ull << 62;
    uint64_t sum = a + b;
    return sum > kCap || sum < a ? kCap : sum;
}

/**
 * Try to grow the minimal superbubble starting at `source` using the
 * advancing-frontier validator (Onodera et al.): push a node once all of
 * its predecessors are inside; succeed when the frontier collapses to a
 * single node with nothing else pending.
 */
bool
detectFrom(const VariationGraph& graph, NodeId source, Snarl& out)
{
    constexpr size_t kMaxRegion = 100000;

    std::unordered_set<NodeId> seen;     // discovered (incl. frontier)
    std::unordered_set<NodeId> visited;  // fully processed
    std::vector<NodeId> stack = {source};
    seen.insert(source);

    while (!stack.empty()) {
        NodeId v = stack.back();
        stack.pop_back();
        visited.insert(v);
        if (visited.size() > kMaxRegion) {
            return false;
        }

        const auto& successors = graph.successors(Handle(v, false));
        if (successors.empty()) {
            return false; // walk can leave through a tip
        }
        for (Handle succ_handle : successors) {
            NodeId u = succ_handle.id();
            if (u == source) {
                return false; // cycle back to the entrance
            }
            seen.insert(u);
            // u becomes pushable once every predecessor is processed.
            bool ready = true;
            for (Handle pred : graph.predecessors(Handle(u, false))) {
                if (!visited.count(pred.id())) {
                    ready = false;
                    break;
                }
            }
            if (ready && u != source) {
                stack.push_back(u);
            }
        }

        // Exit test: exactly one discovered-but-unprocessed node left and
        // nothing pending on the stack beyond it.
        if (stack.size() == 1 && seen.size() == visited.size() + 1 &&
            stack.front() != source) {
            NodeId sink = stack.front();
            if (visited.size() < 2) {
                return false; // no interior: a plain edge, not a snarl
            }
            out.source = source;
            out.sink = sink;
            out.interior.clear();
            for (NodeId node : visited) {
                if (node != source) {
                    out.interior.push_back(node);
                }
            }
            std::sort(out.interior.begin(), out.interior.end());
            return true;
        }
    }
    return false;
}

/** Walk-count and walk-length DP over one snarl's interior. */
void
analyzeWalks(const VariationGraph& graph, Snarl& snarl,
             const std::vector<size_t>& topo_rank)
{
    // Order source + interior topologically; DP forward to the sink.
    std::vector<NodeId> order = snarl.interior;
    order.push_back(snarl.source);
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return topo_rank[a] < topo_rank[b];
    });

    std::unordered_map<NodeId, uint64_t> walks;
    std::unordered_map<NodeId, uint64_t> min_bases;
    std::unordered_map<NodeId, uint64_t> max_bases;
    walks[snarl.source] = 1;
    min_bases[snarl.source] = 0;
    max_bases[snarl.source] = 0;

    std::unordered_set<NodeId> inside(snarl.interior.begin(),
                                      snarl.interior.end());

    uint64_t sink_walks = 0;
    uint64_t sink_min = UINT64_MAX;
    uint64_t sink_max = 0;
    for (NodeId v : order) {
        uint64_t v_walks = walks[v];
        if (v_walks == 0) {
            continue;
        }
        uint64_t exit_min = min_bases[v];
        uint64_t exit_max = max_bases[v];
        if (v != snarl.source) {
            exit_min += graph.length(v);
            exit_max += graph.length(v);
        }
        for (Handle succ : graph.successors(Handle(v, false))) {
            NodeId u = succ.id();
            if (u == snarl.sink) {
                sink_walks = satAdd(sink_walks, v_walks);
                sink_min = std::min(sink_min, exit_min);
                sink_max = std::max(sink_max, exit_max);
            } else if (inside.count(u)) {
                uint64_t& u_walks = walks[u];
                u_walks = satAdd(u_walks, v_walks);
                auto [mit, created] = min_bases.try_emplace(u, exit_min);
                if (!created) {
                    mit->second = std::min(mit->second, exit_min);
                }
                uint64_t& u_max = max_bases[u];
                u_max = std::max(u_max, exit_max);
            }
        }
    }
    snarl.walkCount = sink_walks;
    snarl.minWalkBases = sink_min == UINT64_MAX ? 0 : sink_min;
    snarl.maxWalkBases = sink_max;
}

} // namespace

std::vector<Snarl>
decomposeSnarls(const VariationGraph& graph)
{
    std::vector<NodeId> topo = graph.topologicalOrder();
    std::vector<size_t> topo_rank(graph.numNodes() + 1, 0);
    for (size_t i = 0; i < topo.size(); ++i) {
        topo_rank[topo[i]] = i;
    }

    std::vector<Snarl> snarls;
    for (NodeId source : topo) {
        if (graph.successors(Handle(source, false)).size() < 2) {
            continue; // a snarl entrance must branch
        }
        Snarl snarl;
        if (detectFrom(graph, source, snarl)) {
            analyzeWalks(graph, snarl, topo_rank);
            snarls.push_back(std::move(snarl));
        }
    }
    return snarls;
}

SnarlStats
summarizeSnarls(const std::vector<Snarl>& snarls)
{
    SnarlStats stats;
    stats.snarls = snarls.size();
    size_t interior_total = 0;
    for (const Snarl& snarl : snarls) {
        if (snarl.isSimpleBubble()) {
            ++stats.simpleBubbles;
        }
        stats.maxInterior = std::max(stats.maxInterior,
                                     snarl.interior.size());
        stats.maxWalks = std::max(stats.maxWalks, snarl.walkCount);
        interior_total += snarl.interior.size();
    }
    if (!snarls.empty()) {
        stats.meanInterior = static_cast<double>(interior_total) /
                             static_cast<double>(snarls.size());
    }
    return stats;
}

} // namespace mg::graph
