/**
 * @file
 * Snarl (superbubble) decomposition of the variation graph.  A snarl is a
 * minimal subgraph between a source and a sink node such that every walk
 * entering at the source leaves at the sink — the graph-native notion of
 * a variant site.  vg's distance index and Giraffe's clustering are built
 * on the snarl tree; here the decomposition backs structural statistics
 * (variant-site census, bubble depth) and validation of the generator's
 * bubble-chain claims, using the classic superbubble algorithm for DAGs
 * (candidate exit = the unique common descendant frontier collapse).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/variation_graph.h"

namespace mg::graph {

/** One snarl (superbubble) of the forward DAG. */
struct Snarl
{
    NodeId source = kInvalidNodeId;
    NodeId sink = kInvalidNodeId;
    /** Interior nodes (source/sink excluded). */
    std::vector<NodeId> interior;
    /** Number of distinct source->sink walks through the snarl. */
    uint64_t walkCount = 0;
    /** Minimum and maximum interior walk length in bases. */
    uint64_t minWalkBases = 0;
    uint64_t maxWalkBases = 0;

    /** Simple bubble: exactly two parallel branches (e.g. a SNP site). */
    bool
    isSimpleBubble() const
    {
        return walkCount == 2;
    }
};

/**
 * Find all minimal snarls of the forward DAG.  The graph must be acyclic
 * in forward orientation (as every generated pangenome is); throws
 * mg::util::Error otherwise.  Returned snarls are ordered by topological
 * position of their source and do not overlap except by nesting.
 */
std::vector<Snarl> decomposeSnarls(const VariationGraph& graph);

/** Aggregate statistics over a decomposition. */
struct SnarlStats
{
    size_t snarls = 0;
    size_t simpleBubbles = 0;
    size_t maxInterior = 0;
    uint64_t maxWalks = 0;
    double meanInterior = 0.0;
};

SnarlStats summarizeSnarls(const std::vector<Snarl>& snarls);

} // namespace mg::graph
