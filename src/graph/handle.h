/**
 * @file
 * Oriented node handles and graph positions, following the VG toolkit's
 * handle-graph convention: a handle packs a node id and an orientation into
 * one 64-bit word, so traversals work uniformly on both strands of the
 * pangenome.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mg::graph {

/** Node identifier; ids are dense and 1-based, 0 is invalid. */
using NodeId = uint64_t;

inline constexpr NodeId kInvalidNodeId = 0;

/**
 * An oriented reference to a graph node.  Bit 0 holds the orientation
 * (0 = forward strand, 1 = reverse complement), the remaining bits hold the
 * node id.
 */
class Handle
{
  public:
    Handle() : packed_(0) {}

    Handle(NodeId id, bool is_reverse)
        : packed_((id << 1) | (is_reverse ? 1 : 0))
    {}

    NodeId id() const { return packed_ >> 1; }
    bool isReverse() const { return packed_ & 1; }

    /** The same node in the opposite orientation. */
    Handle flip() const { return Handle::fromPacked(packed_ ^ 1); }

    /** Raw packed value, usable as a dense array index (2*id [+1]). */
    uint64_t packed() const { return packed_; }

    static Handle
    fromPacked(uint64_t packed)
    {
        Handle h;
        h.packed_ = packed;
        return h;
    }

    bool valid() const { return id() != kInvalidNodeId; }

    friend bool operator==(Handle a, Handle b)
    {
        return a.packed_ == b.packed_;
    }
    friend bool operator!=(Handle a, Handle b)
    {
        return a.packed_ != b.packed_;
    }
    friend bool operator<(Handle a, Handle b)
    {
        return a.packed_ < b.packed_;
    }

    /** "12+" / "12-" rendering for logs and tests. */
    std::string str() const;

  private:
    uint64_t packed_;
};

/**
 * A base-level position on the graph: an oriented node plus an offset into
 * that node's sequence as read in the handle's orientation.
 */
struct Position
{
    Handle handle;
    uint32_t offset = 0;

    friend bool operator==(const Position& a, const Position& b)
    {
        return a.handle == b.handle && a.offset == b.offset;
    }
    friend bool operator<(const Position& a, const Position& b)
    {
        if (a.handle != b.handle) {
            return a.handle < b.handle;
        }
        return a.offset < b.offset;
    }

    std::string str() const;
};

} // namespace mg::graph

namespace std {

template <>
struct hash<mg::graph::Handle>
{
    size_t operator()(mg::graph::Handle h) const noexcept
    {
        return std::hash<uint64_t>()(h.packed());
    }
};

} // namespace std
