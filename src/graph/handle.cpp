#include "graph/handle.h"

#include "util/common.h"

namespace mg::graph {

std::string
Handle::str() const
{
    return std::to_string(id()) + (isReverse() ? "-" : "+");
}

std::string
Position::str() const
{
    return handle.str() + ":" + std::to_string(offset);
}

} // namespace mg::graph
