/**
 * @file
 * The variation graph: a bidirected sequence graph whose nodes carry DNA
 * sequences and whose paths record haplotypes (Section II-A of the paper).
 * This is the reference data structure everything else is built on: the
 * GBWT indexes its haplotype paths, the minimizer index is built from those
 * paths, and the mapping kernel walks its edges.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/handle.h"
#include "graph/sequence_store.h"
#include "util/dna.h"

namespace mg::graph {

/** A named haplotype: a walk through the graph. */
struct PathEntry
{
    std::string name;
    std::vector<Handle> steps;
};

/**
 * In-memory variation graph with dense 1-based node ids.
 *
 * Edges connect oriented handles; adding (a -> b) implicitly creates the
 * reverse-strand edge (flip(b) -> flip(a)), so traversal is symmetric on
 * both strands.  The generated pangenomes in this repository are acyclic in
 * forward orientation (bubble chains), which topologicalOrder() exploits;
 * the structure itself does not require acyclicity.
 */
class VariationGraph
{
  public:
    /**
     * Add a node with the given non-empty sequence.  Ambiguity letters
     * (N, IUPAC codes) are canonicalized to 'A' and counted in
     * sanitizedBases(); non-letter characters throw.
     */
    NodeId addNode(std::string sequence);

    /** Add an edge between oriented handles (idempotent). */
    void addEdge(Handle from, Handle to);

    /** Register a named haplotype path; steps must be adjacent via edges. */
    void addPath(std::string name, std::vector<Handle> steps);

    size_t numNodes() const { return store_.numNodes(); }
    size_t numEdges() const { return numEdges_; }
    size_t numPaths() const { return paths_.size(); }

    bool hasNode(NodeId id) const
    {
        return id >= 1 && id <= store_.numNodes();
    }

    /** Length of a node's sequence. */
    size_t length(NodeId id) const { return store_.length(id); }

    /** Forward-strand sequence of a node, decoded from the packed arena. */
    std::string forwardSequence(NodeId id) const;

    /** Sequence of an oriented handle (reverse complemented if needed). */
    std::string sequence(Handle handle) const;

    /**
     * Packed 2-bit view of an oriented handle's sequence (extension hot
     * path): the reverse strand is pre-materialized in the packed arena,
     * so either orientation is one word-aligned span ready for SWAR
     * chunk compares.  The view stays valid until the next addNode().
     */
    util::PackedSpan
    packedView(Handle handle) const
    {
        return store_.packedView(handle);
    }

    /** Single base of an oriented handle at the given offset. */
    char
    base(Handle handle, size_t offset) const
    {
        return store_.base(handle, offset);
    }

    /** The packed sequence arena (footprint reporting, tests). */
    const SequenceStore& sequenceStore() const { return store_; }

    /** Bases canonicalized from ambiguity letters to 'A' at ingest. */
    size_t sanitizedBases() const { return store_.sanitizedBases(); }

    /** Pre-size the sequence arena for an expected base total. */
    void reserveSequence(size_t bases) { store_.reserveBases(bases); }

    /**
     * Bind the packed sequence arenas directly onto a mapped MGZ v3
     * container (mem::ArenaView zero-copy path).  Must be called on a
     * graph with no nodes; edges and paths are still added through the
     * normal mutators afterwards.  Throws util::Error on inconsistent
     * tables.
     */
    void bindMappedSequences(std::shared_ptr<mem::MappedFile> file,
                             const uint64_t* words, size_t num_words,
                             const uint64_t* offsets, size_t num_offsets,
                             size_t num_nodes, size_t sanitized_bases);

    /**
     * Register a path without per-step edge checks — the MGZ v3 load
     * path, where the container's section CRCs (and mg_verify) vouch for
     * consistency and the O(steps * degree) hasEdge scan of addPath()
     * would dominate an otherwise near-instant map.  Steps must still
     * reference existing nodes (bounds are always enforced).
     */
    void addPathUnchecked(std::string name, std::vector<Handle> steps);

    /** Outgoing neighbors of an oriented handle. */
    const std::vector<Handle>& successors(Handle handle) const;

    /** Incoming neighbors (== successors of the flipped handle, flipped). */
    std::vector<Handle> predecessors(Handle handle) const;

    /** True iff the edge (from -> to) exists. */
    bool hasEdge(Handle from, Handle to) const;

    const std::vector<PathEntry>& paths() const { return paths_; }
    const PathEntry& path(size_t index) const { return paths_.at(index); }

    /** Concatenated sequence spelled by a sequence of handles. */
    std::string pathSequence(const std::vector<Handle>& steps) const;

    /** Total bases across all nodes. */
    size_t totalSequenceLength() const { return totalSequence_; }

    /**
     * Topological order of node ids considering forward-strand edges only.
     * Throws mg::util::Error if the forward graph has a cycle.
     */
    std::vector<NodeId> topologicalOrder() const;

    /**
     * Structural validation: edges reference existing nodes, paths follow
     * edges, sequences are non-empty DNA.  Throws on violation.
     */
    void validate() const;

  private:
    SequenceStore store_;                          // packed fwd+rc arena
    std::vector<std::vector<Handle>> adjacency_;   // handle.packed() -> succ
    std::vector<PathEntry> paths_;
    size_t numEdges_ = 0;
    size_t totalSequence_ = 0;
};

} // namespace mg::graph
