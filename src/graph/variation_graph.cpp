#include "graph/variation_graph.h"

#include <algorithm>

#include "util/common.h"

namespace mg::graph {

namespace {

/** Empty adjacency list returned for handles with no successors. */
const std::vector<Handle> kNoNeighbors;

} // namespace

NodeId
VariationGraph::addNode(std::string sequence)
{
    MG_CHECK(!sequence.empty(), "node sequences must be non-empty");
    // Canonicalization (ambiguity letters -> 'A', counted) and rejection
    // of non-letter characters happen inside the packed store.
    totalSequence_ += sequence.size();
    store_.addNode(sequence);
    return static_cast<NodeId>(store_.numNodes());
}

void
VariationGraph::addEdge(Handle from, Handle to)
{
    // Message formatting is eager in MG_CHECK; this runs per container
    // edge on load, so only pay for str() when the check actually fails.
    if (!(hasNode(from.id()) && hasNode(to.id()))) {
        MG_CHECK(false, "edge references unknown node: ", from.str(),
                 " -> ", to.str());
    }
    uint64_t max_packed = std::max(from.packed(), to.flip().packed());
    if (adjacency_.size() <= max_packed) {
        adjacency_.resize(max_packed + 1);
    }
    auto& fwd = adjacency_[from.packed()];
    if (std::find(fwd.begin(), fwd.end(), to) != fwd.end()) {
        return; // already present
    }
    fwd.push_back(to);
    // The reverse-strand twin: flip(to) -> flip(from).  For a self-loop on
    // a palindromic orientation the twin may coincide with the original.
    if (!(to.flip() == from && from.flip() == to)) {
        auto& rev = adjacency_[to.flip().packed()];
        if (std::find(rev.begin(), rev.end(), from.flip()) == rev.end()) {
            rev.push_back(from.flip());
        }
    }
    ++numEdges_;
}

void
VariationGraph::addPath(std::string name, std::vector<Handle> steps)
{
    MG_CHECK(!steps.empty(), "paths must have at least one step");
    for (Handle step : steps) {
        MG_CHECK(hasNode(step.id()), "path '", name,
                 "' references unknown node ", step.str());
    }
    for (size_t i = 0; i + 1 < steps.size(); ++i) {
        MG_CHECK(hasEdge(steps[i], steps[i + 1]),
                 "path '", name, "' uses missing edge ", steps[i].str(),
                 " -> ", steps[i + 1].str());
    }
    paths_.push_back(PathEntry{std::move(name), std::move(steps)});
}

void
VariationGraph::bindMappedSequences(std::shared_ptr<mem::MappedFile> file,
                                    const uint64_t* words, size_t num_words,
                                    const uint64_t* offsets,
                                    size_t num_offsets, size_t num_nodes,
                                    size_t sanitized_bases)
{
    MG_CHECK(numNodes() == 0,
             "bindMappedSequences requires an empty graph");
    store_.bindMapped(std::move(file), words, num_words, offsets,
                      num_offsets, num_nodes, sanitized_bases);
    totalSequence_ = store_.totalBases();
}

void
VariationGraph::addPathUnchecked(std::string name,
                                 std::vector<Handle> steps)
{
    MG_CHECK(!steps.empty(), "paths must have at least one step");
    // MG_CHECK builds its message eagerly, so keep the hot per-step scan
    // branch-only and format details on the failure path alone — this
    // loop runs for every step of every haplotype on v3 container loads.
    for (Handle step : steps) {
        if (!hasNode(step.id())) {
            MG_CHECK(false, "path '", name, "' references unknown node ",
                     step.str());
        }
    }
    paths_.push_back(PathEntry{std::move(name), std::move(steps)});
}

std::string
VariationGraph::forwardSequence(NodeId id) const
{
    MG_ASSERT(hasNode(id));
    return store_.forwardSequence(id);
}

std::string
VariationGraph::sequence(Handle handle) const
{
    MG_ASSERT(hasNode(handle.id()));
    // Both orientations live in the packed arena; no reverse complement
    // is computed here, only a decode.
    return store_.sequence(handle);
}

const std::vector<Handle>&
VariationGraph::successors(Handle handle) const
{
    MG_ASSERT(hasNode(handle.id()));
    if (handle.packed() >= adjacency_.size()) {
        return kNoNeighbors;
    }
    return adjacency_[handle.packed()];
}

std::vector<Handle>
VariationGraph::predecessors(Handle handle) const
{
    std::vector<Handle> preds;
    for (Handle succ : successors(handle.flip())) {
        preds.push_back(succ.flip());
    }
    return preds;
}

bool
VariationGraph::hasEdge(Handle from, Handle to) const
{
    const auto& succ = successors(from);
    return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::string
VariationGraph::pathSequence(const std::vector<Handle>& steps) const
{
    std::string out;
    for (Handle step : steps) {
        out += sequence(step);
    }
    return out;
}

std::vector<NodeId>
VariationGraph::topologicalOrder() const
{
    // Kahn's algorithm over forward-strand edges (forward handles only).
    std::vector<size_t> in_degree(numNodes() + 1, 0);
    for (NodeId id = 1; id <= numNodes(); ++id) {
        for (Handle succ : successors(Handle(id, false))) {
            MG_CHECK(!succ.isReverse(),
                     "topologicalOrder requires forward-only edges, found ",
                     Handle(id, false).str(), " -> ", succ.str());
            ++in_degree[succ.id()];
        }
    }
    std::vector<NodeId> frontier;
    for (NodeId id = 1; id <= numNodes(); ++id) {
        if (in_degree[id] == 0) {
            frontier.push_back(id);
        }
    }
    std::vector<NodeId> order;
    order.reserve(numNodes());
    while (!frontier.empty()) {
        NodeId id = frontier.back();
        frontier.pop_back();
        order.push_back(id);
        for (Handle succ : successors(Handle(id, false))) {
            if (--in_degree[succ.id()] == 0) {
                frontier.push_back(succ.id());
            }
        }
    }
    MG_CHECK(order.size() == numNodes(),
             "forward graph has a cycle; topological order impossible");
    return order;
}

void
VariationGraph::validate() const
{
    for (NodeId id = 1; id <= numNodes(); ++id) {
        std::string seq = forwardSequence(id);
        MG_CHECK(!seq.empty(), "empty sequence at node ", id);
        MG_CHECK(util::isDna(seq), "non-DNA sequence at node ", id);
        for (bool reverse : {false, true}) {
            Handle handle(id, reverse);
            for (Handle succ : successors(handle)) {
                MG_CHECK(hasNode(succ.id()), "edge to unknown node from ",
                         handle.str());
                MG_CHECK(hasEdge(succ.flip(), handle.flip()),
                         "missing reverse twin of edge ", handle.str(),
                         " -> ", succ.str());
            }
        }
    }
    for (const PathEntry& path : paths_) {
        for (size_t i = 0; i + 1 < path.steps.size(); ++i) {
            MG_CHECK(hasEdge(path.steps[i], path.steps[i + 1]),
                     "path '", path.name, "' step ", i, " has no edge");
        }
    }
}

} // namespace mg::graph
