#include "graph/sequence_store.h"

#include "util/dna.h"

namespace mg::graph {

void
SequenceStore::addNode(std::string_view forward_sequence)
{
    if (offsets_.empty()) {
        offsets_.push_back(0);
    }
    arena_.append(forward_sequence);
    offsets_.push_back(arena_.size());
    for (size_t i = forward_sequence.size(); i-- > 0;) {
        arena_.push_back(util::complementBase(forward_sequence[i]));
    }
    offsets_.push_back(arena_.size());
    ++numNodes_;
}

} // namespace mg::graph
