#include "graph/sequence_store.h"

#include "util/common.h"

namespace mg::graph {

void
SequenceStore::addNode(std::string_view forward_sequence)
{
    if (offsets_.empty()) {
        offsets_.push_back(0);
    }
    // Canonicalize once into scratch: ambiguity letters -> 'A' (counted),
    // non-letters rejected.  Everything downstream assumes pure ACGT.
    sanitizeScratch_.assign(forward_sequence);
    util::SanitizeCounts counts = util::sanitizeDna(sanitizeScratch_);
    MG_CHECK(counts.invalid == 0,
             "node sequence contains non-IUPAC characters (", counts.invalid,
             " invalid bytes)");
    sanitizedBases_ += counts.ambiguous;

    const uint64_t len = sanitizeScratch_.size();
    const uint64_t node_words = util::packedDataWords(len);
    packScratch_.assign(node_words, 0);
    rcScratch_.assign(node_words, 0);
    util::packAsciiInto(sanitizeScratch_, packScratch_.data(), 0);
    util::reverseComplementPacked(packScratch_.data(), len,
                                  rcScratch_.data());

    const uint64_t begin = offsets_.back();
    const uint64_t total = begin + 2 * len;
    // Data words plus the pad word chunk32 needs; new words arrive zeroed,
    // and the old pad word simply becomes a data word to OR into.
    words_.resize(util::packedBufferWords(total), 0);
    util::copyPackedInto(words_.data(), begin, packScratch_.data(), len);
    offsets_.push_back(begin + len);
    util::copyPackedInto(words_.data(), begin + len, rcScratch_.data(), len);
    offsets_.push_back(total);
    ++numNodes_;
}

} // namespace mg::graph
