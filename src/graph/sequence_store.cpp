#include "graph/sequence_store.h"

#include "util/common.h"

namespace mg::graph {

void
SequenceStore::addNode(std::string_view forward_sequence)
{
    auto& words = words_.owned();
    auto& offsets = offsets_.owned();
    if (offsets.empty()) {
        offsets.push_back(0);
    }
    // Canonicalize once into scratch: ambiguity letters -> 'A' (counted),
    // non-letters rejected.  Everything downstream assumes pure ACGT.
    sanitizeScratch_.assign(forward_sequence);
    util::SanitizeCounts counts = util::sanitizeDna(sanitizeScratch_);
    MG_CHECK(counts.invalid == 0,
             "node sequence contains non-IUPAC characters (", counts.invalid,
             " invalid bytes)");
    sanitizedBases_ += counts.ambiguous;

    const uint64_t len = sanitizeScratch_.size();
    const uint64_t node_words = util::packedDataWords(len);
    packScratch_.assign(node_words, 0);
    rcScratch_.assign(node_words, 0);
    util::packAsciiInto(sanitizeScratch_, packScratch_.data(), 0);
    util::reverseComplementPacked(packScratch_.data(), len,
                                  rcScratch_.data());

    const uint64_t begin = offsets.back();
    const uint64_t total = begin + 2 * len;
    // Data words plus the pad word chunk32 needs; new words arrive zeroed,
    // and the old pad word simply becomes a data word to OR into.
    words.resize(util::packedBufferWords(total), 0);
    util::copyPackedInto(words.data(), begin, packScratch_.data(), len);
    offsets.push_back(begin + len);
    util::copyPackedInto(words.data(), begin + len, rcScratch_.data(), len);
    offsets.push_back(total);
    ++numNodes_;
}

void
SequenceStore::bindMapped(std::shared_ptr<mem::MappedFile> file,
                          const uint64_t* words, size_t num_words,
                          const uint64_t* offsets, size_t num_offsets,
                          size_t num_nodes, size_t sanitized_bases)
{
    util::require(num_offsets == 2 * num_nodes + 1,
                  "seq.offsets: expected ", 2 * num_nodes + 1,
                  " entries for ", num_nodes, " nodes, got ", num_offsets);
    uint64_t prev = 0;
    util::require(num_offsets > 0 && offsets[0] == 0,
                  "seq.offsets: table must start at 0");
    for (size_t i = 1; i < num_offsets; ++i) {
        util::require(offsets[i] > prev,
                      "seq.offsets: non-increasing at entry ", i,
                      " (empty node sequences are never written)");
        prev = offsets[i];
    }
    util::require(num_words == util::packedBufferWords(prev),
                  "seq.words: ", num_words, " words inconsistent with ",
                  prev, " packed bases");
    words_ = mem::ArenaView<uint64_t>();
    offsets_ = mem::ArenaView<uint64_t>();
    words_.bind(file, words, num_words);
    offsets_.bind(std::move(file), offsets, num_offsets);
    numNodes_ = num_nodes;
    sanitizedBases_ = sanitized_bases;
}

} // namespace mg::graph
