# Empty compiler generated dependencies file for mg_index.
# This may be replaced when dependencies are built.
