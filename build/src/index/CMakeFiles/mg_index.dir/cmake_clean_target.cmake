file(REMOVE_RECURSE
  "libmg_index.a"
)
