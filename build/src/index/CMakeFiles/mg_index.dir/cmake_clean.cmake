file(REMOVE_RECURSE
  "CMakeFiles/mg_index.dir/distance.cpp.o"
  "CMakeFiles/mg_index.dir/distance.cpp.o.d"
  "CMakeFiles/mg_index.dir/minimizer.cpp.o"
  "CMakeFiles/mg_index.dir/minimizer.cpp.o.d"
  "libmg_index.a"
  "libmg_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
