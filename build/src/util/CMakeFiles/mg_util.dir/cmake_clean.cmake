file(REMOVE_RECURSE
  "CMakeFiles/mg_util.dir/csv.cpp.o"
  "CMakeFiles/mg_util.dir/csv.cpp.o.d"
  "CMakeFiles/mg_util.dir/dna.cpp.o"
  "CMakeFiles/mg_util.dir/dna.cpp.o.d"
  "CMakeFiles/mg_util.dir/flags.cpp.o"
  "CMakeFiles/mg_util.dir/flags.cpp.o.d"
  "CMakeFiles/mg_util.dir/rng.cpp.o"
  "CMakeFiles/mg_util.dir/rng.cpp.o.d"
  "CMakeFiles/mg_util.dir/str.cpp.o"
  "CMakeFiles/mg_util.dir/str.cpp.o.d"
  "CMakeFiles/mg_util.dir/varint.cpp.o"
  "CMakeFiles/mg_util.dir/varint.cpp.o.d"
  "libmg_util.a"
  "libmg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
