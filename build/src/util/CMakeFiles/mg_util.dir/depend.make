# Empty dependencies file for mg_util.
# This may be replaced when dependencies are built.
