file(REMOVE_RECURSE
  "libmg_util.a"
)
