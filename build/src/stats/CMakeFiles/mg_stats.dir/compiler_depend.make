# Empty compiler generated dependencies file for mg_stats.
# This may be replaced when dependencies are built.
