file(REMOVE_RECURSE
  "CMakeFiles/mg_stats.dir/anova.cpp.o"
  "CMakeFiles/mg_stats.dir/anova.cpp.o.d"
  "CMakeFiles/mg_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/mg_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/mg_stats.dir/descriptive.cpp.o"
  "CMakeFiles/mg_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/mg_stats.dir/special.cpp.o"
  "CMakeFiles/mg_stats.dir/special.cpp.o.d"
  "libmg_stats.a"
  "libmg_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
