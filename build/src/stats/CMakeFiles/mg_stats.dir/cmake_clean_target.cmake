file(REMOVE_RECURSE
  "libmg_stats.a"
)
