# Empty compiler generated dependencies file for mg_machine.
# This may be replaced when dependencies are built.
