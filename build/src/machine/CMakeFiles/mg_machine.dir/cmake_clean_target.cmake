file(REMOVE_RECURSE
  "libmg_machine.a"
)
