file(REMOVE_RECURSE
  "CMakeFiles/mg_machine.dir/cache_sim.cpp.o"
  "CMakeFiles/mg_machine.dir/cache_sim.cpp.o.d"
  "CMakeFiles/mg_machine.dir/config.cpp.o"
  "CMakeFiles/mg_machine.dir/config.cpp.o.d"
  "CMakeFiles/mg_machine.dir/cost_model.cpp.o"
  "CMakeFiles/mg_machine.dir/cost_model.cpp.o.d"
  "CMakeFiles/mg_machine.dir/scaling_model.cpp.o"
  "CMakeFiles/mg_machine.dir/scaling_model.cpp.o.d"
  "CMakeFiles/mg_machine.dir/tracer.cpp.o"
  "CMakeFiles/mg_machine.dir/tracer.cpp.o.d"
  "libmg_machine.a"
  "libmg_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
