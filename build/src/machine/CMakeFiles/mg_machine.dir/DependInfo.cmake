
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache_sim.cpp" "src/machine/CMakeFiles/mg_machine.dir/cache_sim.cpp.o" "gcc" "src/machine/CMakeFiles/mg_machine.dir/cache_sim.cpp.o.d"
  "/root/repo/src/machine/config.cpp" "src/machine/CMakeFiles/mg_machine.dir/config.cpp.o" "gcc" "src/machine/CMakeFiles/mg_machine.dir/config.cpp.o.d"
  "/root/repo/src/machine/cost_model.cpp" "src/machine/CMakeFiles/mg_machine.dir/cost_model.cpp.o" "gcc" "src/machine/CMakeFiles/mg_machine.dir/cost_model.cpp.o.d"
  "/root/repo/src/machine/scaling_model.cpp" "src/machine/CMakeFiles/mg_machine.dir/scaling_model.cpp.o" "gcc" "src/machine/CMakeFiles/mg_machine.dir/scaling_model.cpp.o.d"
  "/root/repo/src/machine/tracer.cpp" "src/machine/CMakeFiles/mg_machine.dir/tracer.cpp.o" "gcc" "src/machine/CMakeFiles/mg_machine.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
