
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/extensions_io.cpp" "src/io/CMakeFiles/mg_io.dir/extensions_io.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/extensions_io.cpp.o.d"
  "/root/repo/src/io/fastq.cpp" "src/io/CMakeFiles/mg_io.dir/fastq.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/fastq.cpp.o.d"
  "/root/repo/src/io/file.cpp" "src/io/CMakeFiles/mg_io.dir/file.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/file.cpp.o.d"
  "/root/repo/src/io/gaf.cpp" "src/io/CMakeFiles/mg_io.dir/gaf.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/gaf.cpp.o.d"
  "/root/repo/src/io/gfa.cpp" "src/io/CMakeFiles/mg_io.dir/gfa.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/gfa.cpp.o.d"
  "/root/repo/src/io/mgz.cpp" "src/io/CMakeFiles/mg_io.dir/mgz.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/mgz.cpp.o.d"
  "/root/repo/src/io/reads_bin.cpp" "src/io/CMakeFiles/mg_io.dir/reads_bin.cpp.o" "gcc" "src/io/CMakeFiles/mg_io.dir/reads_bin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gbwt/CMakeFiles/mg_gbwt.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/mg_map.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mg_index.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/mg_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
