# Empty dependencies file for mg_io.
# This may be replaced when dependencies are built.
