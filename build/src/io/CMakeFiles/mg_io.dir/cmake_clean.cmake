file(REMOVE_RECURSE
  "CMakeFiles/mg_io.dir/extensions_io.cpp.o"
  "CMakeFiles/mg_io.dir/extensions_io.cpp.o.d"
  "CMakeFiles/mg_io.dir/fastq.cpp.o"
  "CMakeFiles/mg_io.dir/fastq.cpp.o.d"
  "CMakeFiles/mg_io.dir/file.cpp.o"
  "CMakeFiles/mg_io.dir/file.cpp.o.d"
  "CMakeFiles/mg_io.dir/gaf.cpp.o"
  "CMakeFiles/mg_io.dir/gaf.cpp.o.d"
  "CMakeFiles/mg_io.dir/gfa.cpp.o"
  "CMakeFiles/mg_io.dir/gfa.cpp.o.d"
  "CMakeFiles/mg_io.dir/mgz.cpp.o"
  "CMakeFiles/mg_io.dir/mgz.cpp.o.d"
  "CMakeFiles/mg_io.dir/reads_bin.cpp.o"
  "CMakeFiles/mg_io.dir/reads_bin.cpp.o.d"
  "libmg_io.a"
  "libmg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
