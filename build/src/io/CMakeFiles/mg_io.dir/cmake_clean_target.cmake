file(REMOVE_RECURSE
  "libmg_io.a"
)
