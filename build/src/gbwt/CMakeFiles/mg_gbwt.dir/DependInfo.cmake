
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbwt/builder.cpp" "src/gbwt/CMakeFiles/mg_gbwt.dir/builder.cpp.o" "gcc" "src/gbwt/CMakeFiles/mg_gbwt.dir/builder.cpp.o.d"
  "/root/repo/src/gbwt/cached_gbwt.cpp" "src/gbwt/CMakeFiles/mg_gbwt.dir/cached_gbwt.cpp.o" "gcc" "src/gbwt/CMakeFiles/mg_gbwt.dir/cached_gbwt.cpp.o.d"
  "/root/repo/src/gbwt/gbwt.cpp" "src/gbwt/CMakeFiles/mg_gbwt.dir/gbwt.cpp.o" "gcc" "src/gbwt/CMakeFiles/mg_gbwt.dir/gbwt.cpp.o.d"
  "/root/repo/src/gbwt/record.cpp" "src/gbwt/CMakeFiles/mg_gbwt.dir/record.cpp.o" "gcc" "src/gbwt/CMakeFiles/mg_gbwt.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
