file(REMOVE_RECURSE
  "libmg_gbwt.a"
)
