file(REMOVE_RECURSE
  "CMakeFiles/mg_gbwt.dir/builder.cpp.o"
  "CMakeFiles/mg_gbwt.dir/builder.cpp.o.d"
  "CMakeFiles/mg_gbwt.dir/cached_gbwt.cpp.o"
  "CMakeFiles/mg_gbwt.dir/cached_gbwt.cpp.o.d"
  "CMakeFiles/mg_gbwt.dir/gbwt.cpp.o"
  "CMakeFiles/mg_gbwt.dir/gbwt.cpp.o.d"
  "CMakeFiles/mg_gbwt.dir/record.cpp.o"
  "CMakeFiles/mg_gbwt.dir/record.cpp.o.d"
  "libmg_gbwt.a"
  "libmg_gbwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_gbwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
