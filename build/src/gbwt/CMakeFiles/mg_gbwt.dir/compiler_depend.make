# Empty compiler generated dependencies file for mg_gbwt.
# This may be replaced when dependencies are built.
