# Empty dependencies file for mg_sched.
# This may be replaced when dependencies are built.
