file(REMOVE_RECURSE
  "CMakeFiles/mg_sched.dir/omp_dynamic.cpp.o"
  "CMakeFiles/mg_sched.dir/omp_dynamic.cpp.o.d"
  "CMakeFiles/mg_sched.dir/scheduler.cpp.o"
  "CMakeFiles/mg_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/mg_sched.dir/static_sched.cpp.o"
  "CMakeFiles/mg_sched.dir/static_sched.cpp.o.d"
  "CMakeFiles/mg_sched.dir/vg_batch.cpp.o"
  "CMakeFiles/mg_sched.dir/vg_batch.cpp.o.d"
  "CMakeFiles/mg_sched.dir/work_stealing.cpp.o"
  "CMakeFiles/mg_sched.dir/work_stealing.cpp.o.d"
  "libmg_sched.a"
  "libmg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
