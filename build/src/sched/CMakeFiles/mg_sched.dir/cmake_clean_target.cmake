file(REMOVE_RECURSE
  "libmg_sched.a"
)
