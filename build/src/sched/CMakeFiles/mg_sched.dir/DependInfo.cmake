
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/omp_dynamic.cpp" "src/sched/CMakeFiles/mg_sched.dir/omp_dynamic.cpp.o" "gcc" "src/sched/CMakeFiles/mg_sched.dir/omp_dynamic.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/mg_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mg_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/static_sched.cpp" "src/sched/CMakeFiles/mg_sched.dir/static_sched.cpp.o" "gcc" "src/sched/CMakeFiles/mg_sched.dir/static_sched.cpp.o.d"
  "/root/repo/src/sched/vg_batch.cpp" "src/sched/CMakeFiles/mg_sched.dir/vg_batch.cpp.o" "gcc" "src/sched/CMakeFiles/mg_sched.dir/vg_batch.cpp.o.d"
  "/root/repo/src/sched/work_stealing.cpp" "src/sched/CMakeFiles/mg_sched.dir/work_stealing.cpp.o" "gcc" "src/sched/CMakeFiles/mg_sched.dir/work_stealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
