file(REMOVE_RECURSE
  "CMakeFiles/mg_sim.dir/input_sets.cpp.o"
  "CMakeFiles/mg_sim.dir/input_sets.cpp.o.d"
  "CMakeFiles/mg_sim.dir/pangenome_gen.cpp.o"
  "CMakeFiles/mg_sim.dir/pangenome_gen.cpp.o.d"
  "CMakeFiles/mg_sim.dir/read_sim.cpp.o"
  "CMakeFiles/mg_sim.dir/read_sim.cpp.o.d"
  "libmg_sim.a"
  "libmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
