# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("perf")
subdirs("graph")
subdirs("gbwt")
subdirs("index")
subdirs("sched")
subdirs("machine")
subdirs("map")
subdirs("io")
subdirs("sim")
subdirs("giraffe")
subdirs("tune")
