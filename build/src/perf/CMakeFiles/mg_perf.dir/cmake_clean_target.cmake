file(REMOVE_RECURSE
  "libmg_perf.a"
)
