# Empty dependencies file for mg_perf.
# This may be replaced when dependencies are built.
