file(REMOVE_RECURSE
  "CMakeFiles/mg_perf.dir/profiler.cpp.o"
  "CMakeFiles/mg_perf.dir/profiler.cpp.o.d"
  "libmg_perf.a"
  "libmg_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
