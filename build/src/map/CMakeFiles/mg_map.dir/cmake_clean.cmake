file(REMOVE_RECURSE
  "CMakeFiles/mg_map.dir/cluster.cpp.o"
  "CMakeFiles/mg_map.dir/cluster.cpp.o.d"
  "CMakeFiles/mg_map.dir/extender.cpp.o"
  "CMakeFiles/mg_map.dir/extender.cpp.o.d"
  "CMakeFiles/mg_map.dir/extension.cpp.o"
  "CMakeFiles/mg_map.dir/extension.cpp.o.d"
  "CMakeFiles/mg_map.dir/mapper.cpp.o"
  "CMakeFiles/mg_map.dir/mapper.cpp.o.d"
  "CMakeFiles/mg_map.dir/seeding.cpp.o"
  "CMakeFiles/mg_map.dir/seeding.cpp.o.d"
  "libmg_map.a"
  "libmg_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
