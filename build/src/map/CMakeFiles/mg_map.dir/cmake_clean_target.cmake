file(REMOVE_RECURSE
  "libmg_map.a"
)
