
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/cluster.cpp" "src/map/CMakeFiles/mg_map.dir/cluster.cpp.o" "gcc" "src/map/CMakeFiles/mg_map.dir/cluster.cpp.o.d"
  "/root/repo/src/map/extender.cpp" "src/map/CMakeFiles/mg_map.dir/extender.cpp.o" "gcc" "src/map/CMakeFiles/mg_map.dir/extender.cpp.o.d"
  "/root/repo/src/map/extension.cpp" "src/map/CMakeFiles/mg_map.dir/extension.cpp.o" "gcc" "src/map/CMakeFiles/mg_map.dir/extension.cpp.o.d"
  "/root/repo/src/map/mapper.cpp" "src/map/CMakeFiles/mg_map.dir/mapper.cpp.o" "gcc" "src/map/CMakeFiles/mg_map.dir/mapper.cpp.o.d"
  "/root/repo/src/map/seeding.cpp" "src/map/CMakeFiles/mg_map.dir/seeding.cpp.o" "gcc" "src/map/CMakeFiles/mg_map.dir/seeding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gbwt/CMakeFiles/mg_gbwt.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mg_index.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/mg_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
