# Empty compiler generated dependencies file for mg_map.
# This may be replaced when dependencies are built.
