file(REMOVE_RECURSE
  "CMakeFiles/mg_giraffe.dir/alignment.cpp.o"
  "CMakeFiles/mg_giraffe.dir/alignment.cpp.o.d"
  "CMakeFiles/mg_giraffe.dir/pairing.cpp.o"
  "CMakeFiles/mg_giraffe.dir/pairing.cpp.o.d"
  "CMakeFiles/mg_giraffe.dir/parent.cpp.o"
  "CMakeFiles/mg_giraffe.dir/parent.cpp.o.d"
  "CMakeFiles/mg_giraffe.dir/proxy.cpp.o"
  "CMakeFiles/mg_giraffe.dir/proxy.cpp.o.d"
  "CMakeFiles/mg_giraffe.dir/rescue.cpp.o"
  "CMakeFiles/mg_giraffe.dir/rescue.cpp.o.d"
  "libmg_giraffe.a"
  "libmg_giraffe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_giraffe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
