file(REMOVE_RECURSE
  "libmg_giraffe.a"
)
