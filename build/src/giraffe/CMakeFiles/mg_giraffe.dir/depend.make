# Empty dependencies file for mg_giraffe.
# This may be replaced when dependencies are built.
