file(REMOVE_RECURSE
  "CMakeFiles/mg_graph.dir/handle.cpp.o"
  "CMakeFiles/mg_graph.dir/handle.cpp.o.d"
  "CMakeFiles/mg_graph.dir/snarls.cpp.o"
  "CMakeFiles/mg_graph.dir/snarls.cpp.o.d"
  "CMakeFiles/mg_graph.dir/variation_graph.cpp.o"
  "CMakeFiles/mg_graph.dir/variation_graph.cpp.o.d"
  "libmg_graph.a"
  "libmg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
