file(REMOVE_RECURSE
  "libmg_graph.a"
)
