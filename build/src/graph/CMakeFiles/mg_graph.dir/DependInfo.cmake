
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/handle.cpp" "src/graph/CMakeFiles/mg_graph.dir/handle.cpp.o" "gcc" "src/graph/CMakeFiles/mg_graph.dir/handle.cpp.o.d"
  "/root/repo/src/graph/snarls.cpp" "src/graph/CMakeFiles/mg_graph.dir/snarls.cpp.o" "gcc" "src/graph/CMakeFiles/mg_graph.dir/snarls.cpp.o.d"
  "/root/repo/src/graph/variation_graph.cpp" "src/graph/CMakeFiles/mg_graph.dir/variation_graph.cpp.o" "gcc" "src/graph/CMakeFiles/mg_graph.dir/variation_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
