# Empty compiler generated dependencies file for mg_graph.
# This may be replaced when dependencies are built.
