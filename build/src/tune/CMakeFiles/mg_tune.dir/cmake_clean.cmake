file(REMOVE_RECURSE
  "CMakeFiles/mg_tune.dir/autotuner.cpp.o"
  "CMakeFiles/mg_tune.dir/autotuner.cpp.o.d"
  "libmg_tune.a"
  "libmg_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
