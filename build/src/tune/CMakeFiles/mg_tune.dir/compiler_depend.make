# Empty compiler generated dependencies file for mg_tune.
# This may be replaced when dependencies are built.
