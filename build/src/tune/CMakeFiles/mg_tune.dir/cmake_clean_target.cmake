file(REMOVE_RECURSE
  "libmg_tune.a"
)
