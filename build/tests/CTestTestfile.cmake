# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/gbwt_test[1]_include.cmake")
include("/root/repo/build/tests/cached_gbwt_test[1]_include.cmake")
include("/root/repo/build/tests/minimizer_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/map_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/giraffe_test[1]_include.cmake")
include("/root/repo/build/tests/tune_test[1]_include.cmake")
include("/root/repo/build/tests/pairing_test[1]_include.cmake")
include("/root/repo/build/tests/gfa_test[1]_include.cmake")
include("/root/repo/build/tests/snarls_test[1]_include.cmake")
include("/root/repo/build/tests/gaf_test[1]_include.cmake")
include("/root/repo/build/tests/rescue_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/surface_test[1]_include.cmake")
