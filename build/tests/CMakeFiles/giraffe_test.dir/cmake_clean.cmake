file(REMOVE_RECURSE
  "CMakeFiles/giraffe_test.dir/giraffe_test.cpp.o"
  "CMakeFiles/giraffe_test.dir/giraffe_test.cpp.o.d"
  "giraffe_test"
  "giraffe_test.pdb"
  "giraffe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giraffe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
