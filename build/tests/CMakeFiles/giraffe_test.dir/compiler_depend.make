# Empty compiler generated dependencies file for giraffe_test.
# This may be replaced when dependencies are built.
