# Empty dependencies file for giraffe_test.
# This may be replaced when dependencies are built.
