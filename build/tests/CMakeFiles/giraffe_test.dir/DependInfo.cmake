
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/giraffe_test.cpp" "tests/CMakeFiles/giraffe_test.dir/giraffe_test.cpp.o" "gcc" "tests/CMakeFiles/giraffe_test.dir/giraffe_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/giraffe/CMakeFiles/mg_giraffe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mg_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/mg_map.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/mg_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mg_index.dir/DependInfo.cmake"
  "/root/repo/build/src/gbwt/CMakeFiles/mg_gbwt.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
