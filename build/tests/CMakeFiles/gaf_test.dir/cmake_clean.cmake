file(REMOVE_RECURSE
  "CMakeFiles/gaf_test.dir/gaf_test.cpp.o"
  "CMakeFiles/gaf_test.dir/gaf_test.cpp.o.d"
  "gaf_test"
  "gaf_test.pdb"
  "gaf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
