# Empty dependencies file for gaf_test.
# This may be replaced when dependencies are built.
