file(REMOVE_RECURSE
  "CMakeFiles/snarls_test.dir/snarls_test.cpp.o"
  "CMakeFiles/snarls_test.dir/snarls_test.cpp.o.d"
  "snarls_test"
  "snarls_test.pdb"
  "snarls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snarls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
