# Empty compiler generated dependencies file for snarls_test.
# This may be replaced when dependencies are built.
