# Empty dependencies file for cached_gbwt_test.
# This may be replaced when dependencies are built.
