file(REMOVE_RECURSE
  "CMakeFiles/cached_gbwt_test.dir/cached_gbwt_test.cpp.o"
  "CMakeFiles/cached_gbwt_test.dir/cached_gbwt_test.cpp.o.d"
  "cached_gbwt_test"
  "cached_gbwt_test.pdb"
  "cached_gbwt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_gbwt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
