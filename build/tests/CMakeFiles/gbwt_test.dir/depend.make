# Empty dependencies file for gbwt_test.
# This may be replaced when dependencies are built.
