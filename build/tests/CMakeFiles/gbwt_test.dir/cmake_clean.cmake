file(REMOVE_RECURSE
  "CMakeFiles/gbwt_test.dir/gbwt_test.cpp.o"
  "CMakeFiles/gbwt_test.dir/gbwt_test.cpp.o.d"
  "gbwt_test"
  "gbwt_test.pdb"
  "gbwt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbwt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
