file(REMOVE_RECURSE
  "CMakeFiles/rescue_test.dir/rescue_test.cpp.o"
  "CMakeFiles/rescue_test.dir/rescue_test.cpp.o.d"
  "rescue_test"
  "rescue_test.pdb"
  "rescue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rescue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
