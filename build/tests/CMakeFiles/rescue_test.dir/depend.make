# Empty dependencies file for rescue_test.
# This may be replaced when dependencies are built.
