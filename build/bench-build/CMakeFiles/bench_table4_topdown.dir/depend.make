# Empty dependencies file for bench_table4_topdown.
# This may be replaced when dependencies are built.
