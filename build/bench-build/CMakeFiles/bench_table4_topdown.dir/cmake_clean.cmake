file(REMOVE_RECURSE
  "../bench/bench_table4_topdown"
  "../bench/bench_table4_topdown.pdb"
  "CMakeFiles/bench_table4_topdown.dir/bench_table4_topdown.cpp.o"
  "CMakeFiles/bench_table4_topdown.dir/bench_table4_topdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
