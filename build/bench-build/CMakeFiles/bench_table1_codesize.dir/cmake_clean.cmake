file(REMOVE_RECURSE
  "../bench/bench_table1_codesize"
  "../bench/bench_table1_codesize.pdb"
  "CMakeFiles/bench_table1_codesize.dir/bench_table1_codesize.cpp.o"
  "CMakeFiles/bench_table1_codesize.dir/bench_table1_codesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
