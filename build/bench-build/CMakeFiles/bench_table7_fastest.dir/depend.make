# Empty dependencies file for bench_table7_fastest.
# This may be replaced when dependencies are built.
