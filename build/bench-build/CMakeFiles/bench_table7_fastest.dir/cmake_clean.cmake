file(REMOVE_RECURSE
  "../bench/bench_table7_fastest"
  "../bench/bench_table7_fastest.pdb"
  "CMakeFiles/bench_table7_fastest.dir/bench_table7_fastest.cpp.o"
  "CMakeFiles/bench_table7_fastest.dir/bench_table7_fastest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_fastest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
