file(REMOVE_RECURSE
  "../bench/bench_fig7_tuning"
  "../bench/bench_fig7_tuning.pdb"
  "CMakeFiles/bench_fig7_tuning.dir/bench_fig7_tuning.cpp.o"
  "CMakeFiles/bench_fig7_tuning.dir/bench_fig7_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
