file(REMOVE_RECURSE
  "../bench/bench_fig5_systems"
  "../bench/bench_fig5_systems.pdb"
  "CMakeFiles/bench_fig5_systems.dir/bench_fig5_systems.cpp.o"
  "CMakeFiles/bench_fig5_systems.dir/bench_fig5_systems.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
