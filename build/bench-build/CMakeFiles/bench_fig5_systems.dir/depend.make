# Empty dependencies file for bench_fig5_systems.
# This may be replaced when dependencies are built.
