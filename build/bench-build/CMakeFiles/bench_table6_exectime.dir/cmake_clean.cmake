file(REMOVE_RECURSE
  "../bench/bench_table6_exectime"
  "../bench/bench_table6_exectime.pdb"
  "CMakeFiles/bench_table6_exectime.dir/bench_table6_exectime.cpp.o"
  "CMakeFiles/bench_table6_exectime.dir/bench_table6_exectime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
