# Empty dependencies file for bench_table6_exectime.
# This may be replaced when dependencies are built.
