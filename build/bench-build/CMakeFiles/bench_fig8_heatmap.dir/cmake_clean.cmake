file(REMOVE_RECURSE
  "../bench/bench_fig8_heatmap"
  "../bench/bench_fig8_heatmap.pdb"
  "CMakeFiles/bench_fig8_heatmap.dir/bench_fig8_heatmap.cpp.o"
  "CMakeFiles/bench_fig8_heatmap.dir/bench_fig8_heatmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
