file(REMOVE_RECURSE
  "../bench/bench_fig3_regions"
  "../bench/bench_fig3_regions.pdb"
  "CMakeFiles/bench_fig3_regions.dir/bench_fig3_regions.cpp.o"
  "CMakeFiles/bench_fig3_regions.dir/bench_fig3_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
