file(REMOVE_RECURSE
  "../bench/bench_table8_configs"
  "../bench/bench_table8_configs.pdb"
  "CMakeFiles/bench_table8_configs.dir/bench_table8_configs.cpp.o"
  "CMakeFiles/bench_table8_configs.dir/bench_table8_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
