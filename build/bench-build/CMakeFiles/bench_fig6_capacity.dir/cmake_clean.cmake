file(REMOVE_RECURSE
  "../bench/bench_fig6_capacity"
  "../bench/bench_fig6_capacity.pdb"
  "CMakeFiles/bench_fig6_capacity.dir/bench_fig6_capacity.cpp.o"
  "CMakeFiles/bench_fig6_capacity.dir/bench_fig6_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
