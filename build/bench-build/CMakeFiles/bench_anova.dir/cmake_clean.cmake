file(REMOVE_RECURSE
  "../bench/bench_anova"
  "../bench/bench_anova.pdb"
  "CMakeFiles/bench_anova.dir/bench_anova.cpp.o"
  "CMakeFiles/bench_anova.dir/bench_anova.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
