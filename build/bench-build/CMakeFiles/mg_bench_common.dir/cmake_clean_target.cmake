file(REMOVE_RECURSE
  "libmg_bench_common.a"
)
