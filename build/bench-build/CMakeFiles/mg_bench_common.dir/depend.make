# Empty dependencies file for mg_bench_common.
# This may be replaced when dependencies are built.
