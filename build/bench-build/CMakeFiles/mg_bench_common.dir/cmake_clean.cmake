file(REMOVE_RECURSE
  "CMakeFiles/mg_bench_common.dir/common.cpp.o"
  "CMakeFiles/mg_bench_common.dir/common.cpp.o.d"
  "libmg_bench_common.a"
  "libmg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
