# Empty compiler generated dependencies file for validate_proxy.
# This may be replaced when dependencies are built.
