file(REMOVE_RECURSE
  "CMakeFiles/validate_proxy.dir/validate_proxy.cpp.o"
  "CMakeFiles/validate_proxy.dir/validate_proxy.cpp.o.d"
  "validate_proxy"
  "validate_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
