file(REMOVE_RECURSE
  "CMakeFiles/make_inputs.dir/make_inputs.cpp.o"
  "CMakeFiles/make_inputs.dir/make_inputs.cpp.o.d"
  "make_inputs"
  "make_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
