# Empty dependencies file for make_inputs.
# This may be replaced when dependencies are built.
