# Empty dependencies file for haplotype_support.
# This may be replaced when dependencies are built.
