file(REMOVE_RECURSE
  "CMakeFiles/haplotype_support.dir/haplotype_support.cpp.o"
  "CMakeFiles/haplotype_support.dir/haplotype_support.cpp.o.d"
  "haplotype_support"
  "haplotype_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haplotype_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
