# Empty compiler generated dependencies file for inspect_pangenome.
# This may be replaced when dependencies are built.
