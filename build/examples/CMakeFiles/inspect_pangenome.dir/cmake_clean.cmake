file(REMOVE_RECURSE
  "CMakeFiles/inspect_pangenome.dir/inspect_pangenome.cpp.o"
  "CMakeFiles/inspect_pangenome.dir/inspect_pangenome.cpp.o.d"
  "inspect_pangenome"
  "inspect_pangenome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_pangenome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
