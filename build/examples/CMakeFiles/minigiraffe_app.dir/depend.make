# Empty dependencies file for minigiraffe_app.
# This may be replaced when dependencies are built.
