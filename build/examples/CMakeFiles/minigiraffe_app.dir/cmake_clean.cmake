file(REMOVE_RECURSE
  "CMakeFiles/minigiraffe_app.dir/minigiraffe_app.cpp.o"
  "CMakeFiles/minigiraffe_app.dir/minigiraffe_app.cpp.o.d"
  "minigiraffe_app"
  "minigiraffe_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minigiraffe_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
