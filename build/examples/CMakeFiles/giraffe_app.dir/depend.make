# Empty dependencies file for giraffe_app.
# This may be replaced when dependencies are built.
