file(REMOVE_RECURSE
  "CMakeFiles/giraffe_app.dir/giraffe_app.cpp.o"
  "CMakeFiles/giraffe_app.dir/giraffe_app.cpp.o.d"
  "giraffe_app"
  "giraffe_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giraffe_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
